//! Shared helpers for the workspace integration tests; the tests themselves
//! live in `tests/tests/`.

/// Workload length used by most integration tests — small enough to keep
/// the suite fast, long enough to exercise steady-state pipeline behaviour.
pub const TEST_TRACE_LEN: usize = 5_000;
