//! Determinism of the parallel campaign layer: fanning runs out across
//! worker threads under the global thread governor must not change a
//! single byte of any result — logs, sweep curves, and journal contents
//! are identical to a sequential run, and per-run journal files let
//! `--journal`/`--resume` work when runs execute concurrently.

use archexplorer::dse::campaign::{
    run_journal_path, CampaignConfig, CampaignRunner, Method, ParallelConfig, RunSpec,
};
use archexplorer::dse::journal::Journal;
use archexplorer::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn suite() -> Vec<Workload> {
    let mut s: Vec<_> = spec06_suite().into_iter().take(2).collect();
    for w in &mut s {
        w.weight = 0.5;
    }
    s
}

fn cfg(budget: u64) -> CampaignConfig {
    CampaignConfig {
        sim_budget: budget,
        instrs_per_workload: 700,
        seed: 1,
        trace_seed: None,
        threads: 1,
        ..CampaignConfig::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("archx-campaign-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn all_method_specs(seeds: &[u64]) -> Vec<RunSpec> {
    Method::ALL
        .iter()
        .flat_map(|&method| seeds.iter().map(move |&seed| RunSpec { method, seed }))
        .collect()
}

#[test]
fn parallel_campaign_is_byte_identical_to_sequential() {
    // The acceptance campaign: every method x 2 seeds, jobs=4 under a
    // 4-thread governor, compared against the sequential run.
    let suite = suite();
    let cfg = cfg(8);
    let space = DesignSpace::table4();
    let specs = all_method_specs(&[1, 2]);

    let serial = CampaignRunner::new()
        .run_specs(&specs, &space, &suite, &cfg)
        .expect("serial campaign");
    let parallel = CampaignRunner::new()
        .parallel(ParallelConfig {
            jobs: 4,
            total_threads: 4,
        })
        .run_specs(&specs, &space, &suite, &cfg)
        .expect("parallel campaign");

    assert_eq!(serial.len(), specs.len());
    assert_eq!(serial, parallel, "jobs=4 must not change any result");
    // Byte-level check on the full debug rendering, not just PartialEq.
    assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
    // Logs land in spec order regardless of completion order.
    for (spec, log) in specs.iter().zip(&serial) {
        assert_eq!(log.method, spec.method.to_string());
    }
}

#[test]
fn parallel_sweep_matches_sequential_sweep() {
    let suite = suite();
    let cfg = cfg(8);
    let space = DesignSpace::table4();
    let methods = [Method::Random, Method::ArchExplorer];
    let seeds = [1u64, 2, 3];
    let r = RefPoint::default();

    let serial = archexplorer::dse::campaign::sweep(&methods, &space, &suite, &cfg, &seeds, &r, 4)
        .expect("serial sweep");
    let parallel = CampaignRunner::new()
        .parallel(ParallelConfig::with_jobs(3))
        .sweep(&methods, &space, &suite, &cfg, &seeds, &r, 4)
        .expect("parallel sweep");
    assert_eq!(serial, parallel, "sweep curves must not depend on jobs");
    assert_eq!(serial.len(), methods.len());
}

#[test]
fn labelled_progress_attributes_interleaved_events_to_their_run() {
    let suite = suite();
    let cfg = cfg(6);
    let space = DesignSpace::table4();
    let specs = all_method_specs(&[5]);
    let sink = Arc::new(archexplorer::telemetry::CollectingSink::new());
    CampaignRunner::new()
        .parallel(ParallelConfig {
            jobs: 3,
            total_threads: 3,
        })
        .progress_sink(sink.clone())
        .run_specs(&specs, &space, &suite, &cfg)
        .expect("campaign");
    let events = sink.events();
    assert!(!events.is_empty(), "runs must emit progress");
    let labels: std::collections::HashSet<String> =
        events.iter().map(|e| e.source.clone()).collect();
    for spec in &specs {
        assert!(
            labels.contains(&spec.label()),
            "missing events for {}",
            spec.label()
        );
    }
    for label in &labels {
        assert!(
            specs.iter().any(|s| s.label() == *label),
            "event with unknown label {label}"
        );
    }
}

#[test]
fn concurrent_runs_journal_to_distinct_files_and_resume() {
    let dir = temp_dir("journal");
    let suite = suite();
    let cfg = cfg(8);
    let space = DesignSpace::table4();
    let specs = all_method_specs(&[1, 2]);

    let setup = |spec: &RunSpec, evaluator: &Evaluator| -> Result<(), String> {
        let path = run_journal_path(&dir, spec);
        let fp = evaluator.fingerprint(vec![
            ("method".to_string(), spec.method.to_string()),
            ("search_seed".to_string(), spec.seed.to_string()),
        ]);
        let journal = Journal::create(&path, &fp).map_err(|e| e.to_string())?;
        evaluator.set_journal(journal);
        Ok(())
    };
    let logs = CampaignRunner::new()
        .parallel(ParallelConfig {
            jobs: 4,
            total_threads: 4,
        })
        .setup(&setup)
        .run_specs(&specs, &space, &suite, &cfg)
        .expect("journaled campaign");

    // Every run journaled to its own file.
    for spec in &specs {
        let path = run_journal_path(&dir, spec);
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            text.lines().count() >= 2,
            "{} journaled nothing beyond its header",
            path.display()
        );
    }

    // Kill-and-resume per run: truncate every journal to half its records
    // and rerun resuming; each run must replay its own prefix and land on
    // the same frontier while the campaign executes concurrently.
    for spec in &specs {
        let path = run_journal_path(&dir, spec);
        let text = std::fs::read_to_string(&path).expect("journal readable");
        let lines: Vec<&str> = text.lines().collect();
        let keep = 1 + (lines.len() - 1) / 2;
        let mut truncated = lines[..keep].join("\n");
        truncated.push('\n');
        std::fs::write(&path, truncated).expect("truncate journal");
    }
    let resume_setup = |spec: &RunSpec, evaluator: &Evaluator| -> Result<(), String> {
        let path = run_journal_path(&dir, spec);
        let fp = evaluator.fingerprint(vec![
            ("method".to_string(), spec.method.to_string()),
            ("search_seed".to_string(), spec.seed.to_string()),
        ]);
        let (journal, records) = Journal::resume(&path, &fp).map_err(|e| e.to_string())?;
        evaluator.warm_start(records);
        evaluator.set_journal(journal);
        Ok(())
    };
    let resumed = CampaignRunner::new()
        .parallel(ParallelConfig {
            jobs: 4,
            total_threads: 4,
        })
        .setup(&resume_setup)
        .run_specs(&specs, &space, &suite, &cfg)
        .expect("resumed campaign");
    for ((spec, full), res) in specs.iter().zip(&logs).zip(&resumed) {
        assert_eq!(
            full.frontier(),
            res.frontier(),
            "{} must resume to the same frontier",
            spec.label()
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_reports_truncation_and_rejects_misalignment() {
    use archexplorer::dse::campaign::{aggregate_curves, CampaignError};

    // Shared-grid aggregation with dropped-tail accounting.
    let curves = vec![
        vec![(4, 1.0), (8, 2.0), (12, 4.0)],
        vec![(4, 2.0), (8, 3.0)],
    ];
    let agg = aggregate_curves("Random", &curves).expect("aligned prefix");
    assert_eq!(
        agg.points.iter().map(|p| p.0).collect::<Vec<_>>(),
        vec![4, 8],
        "aggregation uses the shared budget grid"
    );
    assert!((agg.points[1].1 - 2.5).abs() < 1e-12);

    // Coordinate disagreement is an error, not a silent bad mean.
    let misaligned = vec![vec![(4, 1.0)], vec![(6, 1.0)]];
    match aggregate_curves("Random", &misaligned) {
        Err(CampaignError::BudgetMisaligned { index, .. }) => assert_eq!(index, 0),
        other => panic!("expected BudgetMisaligned, got {other:?}"),
    }
}
