//! Cross-crate invariant: the induced DEG's critical path length equals
//! the simulated runtime exactly, across workloads and configurations —
//! the headline property of the paper's new formulation.

use archexplorer::deg::prelude::*;
use archexplorer::prelude::*;
use archexplorer::sim::OooCore;

fn assert_exact(arch: MicroArch, instrs: &[archexplorer::sim::Instruction]) {
    let r = OooCore::new(arch).run(instrs).expect("simulates");
    let mut deg = induce(build_deg(&r));
    let path = archexplorer::deg::critical::critical_path(&mut deg);
    assert_eq!(
        path.total_delay, r.trace.cycles,
        "critical path must equal runtime for {arch}"
    );
}

#[test]
fn exact_on_every_spec06_workload() {
    for w in spec06_suite() {
        assert_exact(MicroArch::baseline(), &w.generate(4_000, 1));
    }
}

#[test]
fn exact_on_every_spec17_workload() {
    for w in spec17_suite() {
        assert_exact(MicroArch::baseline(), &w.generate(4_000, 2));
    }
}

#[test]
fn exact_on_extreme_configurations() {
    let w = &spec06_suite()[0];
    let trace = w.generate(5_000, 3);
    // Minimal machine.
    let mut tiny = MicroArch::tiny();
    tiny.width = 1;
    assert_exact(tiny, &trace);
    // Maximal machine.
    let big = MicroArch {
        width: 8,
        fetch_buffer_bytes: 64,
        fetch_queue_uops: 48,
        local_predictor: 2048,
        global_predictor: 8192,
        choice_predictor: 8192,
        ras_entries: 40,
        btb_entries: 4096,
        rob_entries: 256,
        int_rf: 304,
        fp_rf: 304,
        iq_entries: 80,
        lq_entries: 48,
        sq_entries: 48,
        int_alu: 6,
        int_mult_div: 2,
        fp_alu: 2,
        fp_mult_div: 2,
        rd_wr_ports: 2,
        icache_kb: 64,
        icache_assoc: 4,
        dcache_kb: 64,
        dcache_assoc: 4,
        mem_dep: archexplorer::sim::config::MemDepPolicy::Conservative,
        bp_kind: archexplorer::sim::config::BpKind::Tournament,
        replacement: archexplorer::sim::config::ReplPolicy::Lru,
    };
    assert_exact(big, &trace);
}

#[test]
fn exact_on_random_lattice_designs() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let space = DesignSpace::table4();
    let mut rng = StdRng::seed_from_u64(99);
    let trace = spec17_suite()[3].generate(3_000, 7);
    for _ in 0..10 {
        assert_exact(space.random(&mut rng), &trace);
    }
}
