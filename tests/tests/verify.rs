//! The differential verification harness, tested end to end: seeded
//! property sweeps of random designs × workload specs through the
//! `CheckedCore` invariants and the DEG validation oracles, the
//! metamorphic properties the `archx verify` sweep relies on, and the
//! fault-injection path (an intentionally broken invariant must be caught
//! and shrunk to a replayable reproducer).

use archexplorer::deg::prelude::*;
use archexplorer::dse::verify::{run_verify, VerifyConfig};
use archexplorer::prelude::*;
use archexplorer::sim::{trace_gen, CheckConfig, InjectedFault, OooCore, SimError};
use archexplorer::telemetry::JsonValue;
use archexplorer::workloads::{BranchProfile, MemoryProfile, OpMix, WorkloadSpec};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        0.0f64..0.35,
        0.0f64..0.2,
        0.0f64..0.25,
        1.0f64..20.0,
        (64u64..8 << 20),
    )
        .prop_map(|(load, store, branch, dep, footprint)| WorkloadSpec {
            mix: OpMix {
                load,
                store,
                branch,
                call_ret: 0.01,
                fp_alu: 0.05,
                fp_mult: 0.03,
                fp_div: 0.002,
                int_mult: 0.02,
                int_div: 0.002,
            },
            mean_dep_distance: dep,
            branches: BranchProfile {
                biased_fraction: 0.7,
                bias: 0.9,
                patterned_fraction: 0.2,
                pattern_period: 3,
            },
            memory: MemoryProfile {
                footprint_bytes: footprint,
                streaming_fraction: 0.3,
                stride: 8,
                hot_fraction: 0.8,
                hot_bytes: (footprint / 2).max(64),
            },
            code_instrs: 1024,
        })
}

fn arb_design() -> impl Strategy<Value = MicroArch> {
    any::<u64>().prop_map(|seed| {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        DesignSpace::table4().random(&mut StdRng::seed_from_u64(seed))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    // Every healthy (design, workload) pair passes the per-cycle
    // invariant checker and the full DEG oracle chain, and checking does
    // not perturb the simulation.
    #[test]
    fn checked_runs_are_clean_and_unperturbed(
        spec in arb_spec(),
        design in arb_design(),
        trace_seed in 0u64..1_000,
    ) {
        prop_assume!(spec.validate().is_ok());
        let trace = spec.generate(1_200, trace_seed);
        let plain = OooCore::new(design).run(&trace).expect("simulates");
        let checked = OooCore::checked(design)
            .run(&trace)
            .expect("healthy pipelines have no invariant violations");
        prop_assert_eq!(&plain.trace, &checked.trace);
        prop_assert_eq!(&plain.stats, &checked.stats);
        let path = validate_exactness(&checked).expect("DEG oracles hold");
        prop_assert_eq!(path.total_delay, checked.trace.cycles);
    }

    // The windowed oracle holds on arbitrary interior windows: builders
    // agree, validation passes, and the windowed path cannot exceed the
    // full runtime.
    #[test]
    fn windowed_oracle_holds_on_arbitrary_windows(
        design in arb_design(),
        start in 0usize..600,
        len in 100usize..600,
    ) {
        let trace = trace_gen::mixed_workload(1_500, 21);
        let r = OooCore::new(design).run(&trace).expect("simulates");
        let end = (start + len).min(r.trace.events.len());
        let path = validate_exactness_window(&r, start, end).expect("windowed oracles hold");
        prop_assert!(path.total_delay <= r.trace.cycles);
    }

    // Metamorphic: on a compute-bound independent-ALU stream, enlarging
    // the ROB never increases cycles. (On memory-bound streams cache-LRU
    // reordering breaks strict monotonicity, which is why the harness
    // scopes this property the same way.)
    #[test]
    fn rob_enlargement_is_monotone_on_compute_bound_streams(design in arb_design()) {
        let space = DesignSpace::table4();
        let trace = trace_gen::independent_int_ops(2_000);
        let cycles = |d: &MicroArch| OooCore::new(*d).run(&trace).expect("simulates").trace.cycles;
        if let Some(bigger) = space.next_larger(ParamId::Rob, ParamId::Rob.get(&design)) {
            let mut enlarged = design;
            ParamId::Rob.set(&mut enlarged, bigger);
            prop_assume!(enlarged.validate().is_ok());
            prop_assert!(cycles(&enlarged) <= cycles(&design));
        }
    }

    // Metamorphic: trace synthesis is prefix-stable — a shorter window is
    // exactly the prefix of a longer one (the property the evaluator's
    // retry-on-halved-window path depends on).
    #[test]
    fn trace_synthesis_is_prefix_stable(
        spec in arb_spec(),
        trace_seed in 0u64..1_000,
        window in 200usize..2_000,
    ) {
        prop_assume!(spec.validate().is_ok());
        let full = spec.generate(window, trace_seed);
        let half = spec.generate(window / 2, trace_seed);
        prop_assert_eq!(&half[..], &full[..window / 2]);
    }
}

#[test]
fn clean_sweep_finds_no_violations() {
    let report = run_verify(&VerifyConfig {
        designs: 8,
        seed: 7,
        window: 1_000,
        ..VerifyConfig::default()
    });
    assert!(report.ok(), "violations: {:?}", report.violations);
    assert_eq!(report.designs, 8);
}

#[test]
fn injected_fault_is_caught_shrunk_and_reported_as_json() {
    let report = run_verify(&VerifyConfig {
        designs: 2,
        seed: 7,
        window: 1_000,
        fault: Some(InjectedFault::RobCapacityOffByOne),
        metamorphic: false,
        ..VerifyConfig::default()
    });
    assert!(!report.ok(), "the injected fault must surface");
    let v = report
        .violations
        .iter()
        .find(|v| v.check == "occupancy/ROB")
        .expect("the believed ROB capacity must be exceeded");
    let repro = v.shrunk.as_ref().expect("deterministic failures shrink");
    assert!(repro.window <= v.window, "shrinking never grows the window");
    assert!(repro.command.starts_with("archx verify workload="));
    assert!(repro.command.contains("inject=rob-off-by-one"));

    // The machine-readable report round-trips through the JSON parser and
    // carries the repro command.
    let json = JsonValue::parse(&report.to_json()).expect("report is valid JSON");
    assert_eq!(json.get("ok"), Some(&JsonValue::Bool(false)));
    let JsonValue::Arr(violations) = json.get("violations").expect("violations array") else {
        panic!("violations must be an array");
    };
    assert_eq!(violations.len(), report.violations.len());
    let rendered = report.to_json();
    assert!(rendered.contains(&repro.command));
}

#[test]
fn shrunk_repro_replays_to_the_same_violation() {
    let report = run_verify(&VerifyConfig {
        designs: 1,
        seed: 3,
        window: 1_000,
        fault: Some(InjectedFault::RobCapacityOffByOne),
        metamorphic: false,
        ..VerifyConfig::default()
    });
    let v = &report.violations[0];
    let repro = v.shrunk.as_ref().expect("shrinks");
    // Replay the shrunk reproducer the way `archx verify` would: pin the
    // design, window, and trace seed from the repro record.
    let suite = archexplorer::workloads::spec06_suite();
    let workload = suite
        .iter()
        .find(|w| w.id.0 == v.workload)
        .expect("repro names a suite workload");
    let replay = run_verify(&VerifyConfig {
        designs: 1,
        seed: repro.trace_seed,
        window: repro.window,
        workloads: vec![*workload],
        fault: Some(InjectedFault::RobCapacityOffByOne),
        metamorphic: false,
        only_design: Some(repro.design),
    });
    assert!(!replay.ok(), "the shrunk reproducer must still fail");
    assert_eq!(replay.violations[0].check, v.check);
}

#[test]
fn checked_core_error_carries_cycle_and_check() {
    let mut arch = MicroArch::baseline();
    arch.rob_entries = 32;
    arch.iq_entries = 48;
    arch.int_rf = 128;
    let err = OooCore::new(arch)
        .with_invariant_checks(CheckConfig {
            fault: Some(InjectedFault::RobCapacityOffByOne),
        })
        .run(&trace_gen::linear_int_chain(2_000))
        .expect_err("fault trips");
    match err {
        SimError::InvariantViolation { check, cycle, .. } => {
            assert_eq!(check, "occupancy/ROB");
            assert!(cycle > 0);
        }
        other => panic!("expected an invariant violation, got {other}"),
    }
}
