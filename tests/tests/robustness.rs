//! Fault-injection and crash-recovery behaviour of full campaigns:
//! quarantined designs must never abort a search, failed attempts must
//! still consume budget (so budgets always terminate), and a killed
//! journaled campaign must resume to the same frontier without
//! re-simulating journaled designs.

use archexplorer::dse::campaign::{build_evaluator, run_method_on, CampaignConfig};
use archexplorer::dse::journal::{Journal, JournalError};
use archexplorer::prelude::*;
use std::path::PathBuf;

fn suite() -> Vec<Workload> {
    let mut s: Vec<_> = spec06_suite().into_iter().take(2).collect();
    for w in &mut s {
        w.weight = 0.5;
    }
    s
}

fn cfg(budget: u64) -> CampaignConfig {
    CampaignConfig {
        sim_budget: budget,
        instrs_per_workload: 2_000,
        seed: 9,
        trace_seed: None,
        threads: 2,
        ..CampaignConfig::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("archx-robustness-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn all_failing_campaign_still_finishes_its_budget() {
    // A 3-cycle budget makes every simulation fail: the campaign must
    // quarantine everything, charge every attempt against the budget, and
    // terminate instead of spinning or aborting.
    let ev = Evaluator::builder(suite())
        .window(2_000)
        .seed(9)
        .threads(2)
        .limits(SimLimits {
            cycle_budget: Some(3),
            ..SimLimits::default()
        })
        .max_retries(1)
        .build();
    let log = run_method_on(Method::Random, &DesignSpace::table4(), &ev, 12, 9);
    assert!(
        ev.sim_count() >= 12,
        "failed attempts must consume budget, got {}",
        ev.sim_count()
    );
    assert!(ev.quarantine_len() > 0, "failures must be quarantined");
    assert!(
        log.records.is_empty(),
        "no design can commit 2000 instructions in 3 cycles"
    );
    for q in ev.quarantine() {
        assert_eq!(q.error.tag(), "cycle_budget");
        assert_eq!(q.attempts, 2, "one retry on a halved window was allowed");
    }
}

#[test]
fn mixed_campaign_quarantines_failures_and_keeps_searching() {
    // Calibrate a cycle budget that splits real designs: probe a Random
    // run with no limits, recover each design's slowest-workload cycle
    // count from its per-workload IPC, and pick the midpoint.
    let space = DesignSpace::table4();
    let instrs = 2_000u64;
    let probe = build_evaluator(&suite(), &cfg(16));
    let log = run_method_on(Method::Random, &space, &probe, 16, 9);
    let cycles_of = |arch: &MicroArch| -> u64 {
        let e = probe.evaluate(arch).expect("unlimited run succeeds");
        e.per_workload
            .iter()
            .map(|p| (instrs as f64 / p.ipc).round() as u64)
            .max()
            .expect("non-empty suite")
    };
    let cycles: Vec<u64> = log.records.iter().map(|r| cycles_of(&r.arch)).collect();
    let (lo, hi) = (
        *cycles.iter().min().expect("non-empty log"),
        *cycles.iter().max().expect("non-empty log"),
    );
    assert!(lo < hi, "random designs should differ in cycle count");
    let split = lo.midpoint(hi);

    // Re-run the same seeded search under the splitting budget with
    // retries off: slow designs are quarantined, fast ones keep the
    // search fed, and the budget still completes.
    let limited = build_evaluator(
        &suite(),
        &CampaignConfig {
            cycle_budget: Some(split),
            max_retries: 0,
            ..cfg(16)
        },
    );
    let log = run_method_on(Method::Random, &space, &limited, 16, 9);
    assert!(limited.sim_count() >= 16, "budget must complete");
    assert!(limited.quarantine_len() > 0, "slow designs must fail");
    assert!(!log.records.is_empty(), "fast designs must survive");
    for r in &log.records {
        assert!(r.ppa.tradeoff().is_finite());
    }
}

#[test]
fn killed_campaign_resumes_to_the_same_frontier_without_resimulating() {
    let dir = temp_dir("resume");
    let full_path = dir.join("full.jsonl");
    let killed_path = dir.join("killed.jsonl");
    let budget = 24;

    // Reference campaign, journaled to completion.
    let ev_full = build_evaluator(&suite(), &cfg(budget));
    let fp = ev_full.fingerprint(vec![("method".into(), "Random".into())]);
    ev_full.set_journal(Journal::create(&full_path, &fp).expect("create journal"));
    let log_full = run_method_on(Method::Random, &DesignSpace::table4(), &ev_full, budget, 9);
    assert!(ev_full.journal_error().is_none());
    let sims_full = ev_full.sim_count();
    let frontier_full = log_full.frontier();

    // Simulate a mid-campaign kill: keep the header and the first half of
    // the evaluation records.
    let text = std::fs::read_to_string(&full_path).expect("journal readable");
    let lines: Vec<&str> = text.lines().collect();
    let records_written = lines.len() - 1;
    assert!(
        records_written >= 4,
        "campaign should journal several designs"
    );
    let keep = 1 + records_written / 2;
    let mut truncated: String = lines[..keep].join("\n");
    truncated.push('\n');
    std::fs::write(&killed_path, truncated).expect("write truncated journal");

    // Resume: journaled designs replay from the journal (no simulation),
    // the budget picks up where the kill left off, and the deterministic
    // search reaches the same frontier.
    let ev_res = build_evaluator(&suite(), &cfg(budget));
    let (journal, records) = Journal::resume(
        &killed_path,
        &ev_res.fingerprint(vec![("method".into(), "Random".into())]),
    )
    .expect("resume journal");
    assert_eq!(records.len(), keep - 1);
    let warm = ev_res.warm_start(records);
    assert_eq!(warm, (keep as u64 - 1) * 2, "2 sims per journaled design");
    assert!(warm < sims_full, "the kill must leave budget unspent");
    ev_res.set_journal(journal);
    let log_res = run_method_on(Method::Random, &DesignSpace::table4(), &ev_res, budget, 9);
    assert!(ev_res.journal_error().is_none());

    // Same frontier, and the total simulation count matches the
    // uninterrupted run: the replayed prefix cost zero new simulations.
    assert_eq!(log_res.frontier(), frontier_full);
    assert_eq!(ev_res.sim_count(), sims_full);
    let best_full = log_full.best_tradeoff().expect("non-empty").ppa;
    let best_res = log_res.best_tradeoff().expect("non-empty").ppa;
    assert_eq!(best_full, best_res);

    // The resumed journal now covers the whole campaign: resuming it
    // again replays everything and simulates nothing.
    let ev_done = build_evaluator(&suite(), &cfg(budget));
    let (_, records) = Journal::resume(
        &killed_path,
        &ev_done.fingerprint(vec![("method".into(), "Random".into())]),
    )
    .expect("second resume");
    assert_eq!(ev_done.warm_start(records), sims_full);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_rejects_a_mismatched_campaign() {
    let dir = temp_dir("mismatch");
    let path = dir.join("j.jsonl");
    let ev = build_evaluator(&suite(), &cfg(8));
    let fp = ev.fingerprint(vec![]);
    drop(Journal::create(&path, &fp).expect("create"));

    // Different trace seed → different workloads → journaled results are
    // not transferable; resume must refuse rather than corrupt a search.
    let other = Evaluator::builder(suite())
        .window(2_000)
        .seed(1234)
        .threads(1)
        .build();
    let err = Journal::resume(&path, &other.fingerprint(vec![])).expect_err("must mismatch");
    assert!(err.to_string().contains("trace_seed"), "got: {err}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_is_reevaluated_but_interior_corruption_is_fatal() {
    // A `kill -9` mid-append leaves half a JSON record at the end of the
    // journal: resume must drop exactly that record (the evaluation it
    // described is simply redone). The same damage anywhere *earlier*
    // means the file was edited or the disk lied — a hard error.
    let dir = temp_dir("torn");
    let path = dir.join("full.jsonl");
    let budget = 12;
    let ev = build_evaluator(&suite(), &cfg(budget));
    let fp = ev.fingerprint(vec![("method".into(), "Random".into())]);
    ev.set_journal(Journal::create(&path, &fp).expect("create journal"));
    run_method_on(Method::Random, &DesignSpace::table4(), &ev, budget, 9);
    assert!(ev.journal_error().is_none());

    let text = std::fs::read_to_string(&path).expect("journal readable");
    let records_written = text.lines().count() - 1;
    assert!(
        records_written >= 3,
        "campaign should journal several designs"
    );

    // Cut the file mid-way through the final record (byte-level, not at a
    // line boundary).
    let body = text.trim_end();
    let last_line_start = body.rfind('\n').expect("multi-line journal") + 1;
    let cut = last_line_start + (body.len() - last_line_start) / 2;
    let torn_path = dir.join("torn.jsonl");
    std::fs::write(&torn_path, &text[..cut]).expect("write torn journal");

    let ev_torn = build_evaluator(&suite(), &cfg(budget));
    let (_, records) = Journal::resume(
        &torn_path,
        &ev_torn.fingerprint(vec![("method".into(), "Random".into())]),
    )
    .expect("a torn tail is recoverable");
    assert_eq!(
        records.len(),
        records_written - 1,
        "only the torn final record is dropped"
    );

    // The identical half-record damage on an interior line is fatal, and
    // the error names the corrupt line.
    let mut lines: Vec<String> = text.lines().map(String::from).collect();
    let mid = 1 + records_written / 2;
    let keep = lines[mid].len() / 2;
    lines[mid].truncate(keep);
    let corrupt_path = dir.join("corrupt.jsonl");
    std::fs::write(&corrupt_path, lines.join("\n") + "\n").expect("write corrupt journal");

    let ev_corrupt = build_evaluator(&suite(), &cfg(budget));
    let err = Journal::resume(
        &corrupt_path,
        &ev_corrupt.fingerprint(vec![("method".into(), "Random".into())]),
    )
    .expect_err("interior corruption must not be silently dropped");
    match err {
        JournalError::Corrupt { line, .. } => assert_eq!(line, mid + 1),
        other => panic!("expected JournalError::Corrupt, got {other}"),
    }

    let _ = std::fs::remove_dir_all(&dir);
}
