//! Property-based tests over the cross-crate pipeline: arbitrary workload
//! specifications and lattice designs must preserve every structural
//! invariant of the simulator, the DEG, and the Pareto machinery.

use archexplorer::deg::prelude::*;
use archexplorer::power::{PowerModel, PpaResult};
use archexplorer::prelude::*;
use archexplorer::sim::OooCore;
use archexplorer::workloads::{BranchProfile, MemoryProfile, OpMix, WorkloadSpec};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        0.0f64..0.35,
        0.0f64..0.2,
        0.0f64..0.25,
        1.0f64..20.0,
        0.0f64..1.0,
        (64u64..8 << 20),
        64u32..4096,
    )
        .prop_map(
            |(load, store, branch, dep, streaming, footprint, code)| WorkloadSpec {
                mix: OpMix {
                    load,
                    store,
                    branch,
                    call_ret: 0.01,
                    fp_alu: 0.05,
                    fp_mult: 0.03,
                    fp_div: 0.002,
                    int_mult: 0.02,
                    int_div: 0.002,
                },
                mean_dep_distance: dep,
                branches: BranchProfile {
                    biased_fraction: 0.7,
                    bias: 0.9,
                    patterned_fraction: 0.2,
                    pattern_period: 3,
                },
                memory: MemoryProfile {
                    footprint_bytes: footprint,
                    streaming_fraction: streaming,
                    stride: 8,
                    hot_fraction: 0.8,
                    hot_bytes: (footprint / 2).max(64),
                },
                code_instrs: code,
            },
        )
}

fn arb_design() -> impl Strategy<Value = MicroArch> {
    any::<u64>().prop_map(|seed| {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        DesignSpace::table4().random(&mut StdRng::seed_from_u64(seed))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pipeline_invariants_hold_for_arbitrary_specs(spec in arb_spec(), design in arb_design()) {
        prop_assume!(spec.validate().is_ok());
        let trace = spec.generate(1_500, 5);
        let r = OooCore::new(design).run(&trace).expect("simulates");
        prop_assert_eq!(r.stats.committed, 1_500);
        let mut prev_r = 0;
        let mut prev_c = 0;
        for ev in &r.trace.events {
            // Stage ordering per instruction.
            prop_assert!(ev.f1 <= ev.f2 && ev.f2 <= ev.f && ev.f < ev.dc);
            prop_assert!(ev.dc < ev.r && ev.r < ev.dp && ev.dp <= ev.i);
            prop_assert!(ev.i <= ev.m && ev.m < ev.p && ev.p < ev.c);
            // Rename and commit are program-ordered.
            prop_assert!(ev.r >= prev_r);
            prop_assert!(ev.c >= prev_c);
            prev_r = ev.r;
            prev_c = ev.c;
        }
    }

    #[test]
    fn deg_exactness_holds_for_arbitrary_specs(spec in arb_spec(), design in arb_design()) {
        prop_assume!(spec.validate().is_ok());
        let trace = spec.generate(1_200, 9);
        let r = OooCore::new(design).run(&trace).expect("simulates");
        let mut deg = induce(build_deg(&r));
        deg.validate().expect("well-formed induced DEG");
        let path = archexplorer::deg::critical::critical_path(&mut deg);
        prop_assert_eq!(path.total_delay, r.trace.cycles);
        let report = archexplorer::deg::bottleneck::analyze(&deg, &path);
        let total = report.total();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&total));
    }

    #[test]
    fn power_model_is_positive_and_monotone_in_activity(design in arb_design()) {
        let trace = spec06_suite()[0].generate(1_000, 1);
        let r = OooCore::new(design).run(&trace).expect("simulates");
        let ppa = PowerModel::default().evaluate(&design, &r.stats);
        prop_assert!(ppa.power_w > 0.0);
        prop_assert!(ppa.area_mm2 > 0.0);
        prop_assert!(ppa.ipc > 0.0);
    }

    #[test]
    fn hypervolume_is_monotone_under_union(
        xs in proptest::collection::vec((0.1f64..2.0, 0.05f64..1.0, 2.0f64..12.0), 1..20)
    ) {
        let pts: Vec<PpaResult> = xs
            .iter()
            .map(|&(ipc, power_w, area_mm2)| PpaResult { ipc, power_w, area_mm2 })
            .collect();
        let r = RefPoint::default();
        let mut prev = 0.0;
        for k in 1..=pts.len() {
            let hv = hypervolume(&pts[..k], &r);
            prop_assert!(hv >= prev - 1e-12, "hypervolume must grow with points");
            prev = hv;
        }
        // And never exceeds the reference box.
        prop_assert!(prev <= 2.0 * r.power_w * r.area_mm2);
    }

    #[test]
    fn space_index_roundtrip(seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let space = DesignSpace::table4();
        let a = space.random(&mut StdRng::seed_from_u64(seed));
        prop_assert!(a.validate().is_ok());
        prop_assert_eq!(space.design_at(space.index_of(&a)), a);
    }
}
