//! The bottleneck report must *react* to induced pressure: starving a
//! resource raises its contribution, relieving it lowers it — the property
//! the whole DSE loop depends on.

use archexplorer::prelude::*;

fn session() -> Session {
    Session::builder()
        .suite(Suite::Spec06)
        .workload_limit(3)
        .instrs_per_workload(6_000)
        .threads(1)
        .build()
}

#[test]
fn starving_the_rob_raises_its_contribution() {
    let s = session();
    let mut small = MicroArch::baseline();
    small.rob_entries = 32;
    small.int_rf = 300;
    small.fp_rf = 300;
    small.iq_entries = 80;
    let mut big = small;
    big.rob_entries = 256;
    let c_small = s
        .analyze(&small)
        .expect("analysis")
        .contribution(BottleneckSource::Rob);
    let c_big = s
        .analyze(&big)
        .expect("analysis")
        .contribution(BottleneckSource::Rob);
    assert!(
        c_small > c_big,
        "ROB contribution must fall when the ROB grows: {c_small} vs {c_big}"
    );
}

#[test]
fn branch_hostile_code_raises_bpred() {
    // A branch-hostile workload (sjeng-like) must show a larger BPred
    // contribution than a predictable floating-point one (namd-like).
    use archexplorer::dse::eval::{Analysis, Evaluator};
    let suite = spec06_suite();
    let pick = |name: &str| {
        suite
            .iter()
            .copied()
            .find(|w| w.id.0.contains(name))
            .expect("workload present")
    };
    let arch = MicroArch::baseline();
    let bpred_of = |w| {
        Evaluator::builder(vec![w])
            .window(8_000)
            .seed(1)
            .threads(1)
            .build()
            .evaluate_with(&arch, Analysis::NewDeg)
            .expect("evaluates")
            .report
            .expect("analysis requested")
            .contribution(BottleneckSource::BPred)
    };
    let hostile = bpred_of(pick("sjeng"));
    let friendly = bpred_of(pick("namd"));
    assert!(
        hostile > friendly,
        "sjeng-like must expose BPred more than namd-like: {hostile} vs {friendly}"
    );
}

#[test]
fn contribution_guides_growth_usefully() {
    // Growing the top-ranked reassignable resource should help performance
    // more than growing the bottom-ranked one.
    let s = session();
    let space = s.space().clone();
    let arch = space.snap(&MicroArch::tiny());
    let report = s.analyze(&arch).expect("analysis");
    let base_ipc = s.evaluate(&arch).expect("evaluates").ppa.ipc;

    let ranked: Vec<_> = report
        .ranked()
        .into_iter()
        .filter(|(src, _)| src.is_reassignable())
        .collect();
    let top = ranked.first().expect("non-empty ranking").0;
    let grow = |src| {
        let mut a = arch;
        for &p in archexplorer::dse::reassign::params_for(src) {
            if let Some(v) = space.next_larger(p, p.get(&a)) {
                p.set(&mut a, v);
                break;
            }
        }
        s.evaluate(&a).expect("evaluates").ppa.ipc
    };
    let ipc_top = grow(top);
    assert!(
        ipc_top >= base_ipc * 0.999,
        "growing the top bottleneck must not hurt: {ipc_top} vs {base_ipc}"
    );
}
