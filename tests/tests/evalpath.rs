//! The shared-trace-store / evaluation-arena hot path, end to end:
//! a campaign synthesises each `(workload, seed, window)` trace exactly
//! once however many jobs run, retries slice the shared trace instead of
//! regenerating it, and arena reuse never changes an evaluation result.

use archexplorer::dse::campaign::{CampaignConfig, CampaignRunner, ParallelConfig, RunSpec};
use archexplorer::prelude::*;
use archexplorer::workloads::TraceStore;
use std::sync::Arc;

fn suite(n: usize) -> Vec<Workload> {
    let mut s: Vec<_> = spec06_suite().into_iter().take(n).collect();
    let w = 1.0 / s.len() as f64;
    for wl in &mut s {
        wl.weight = w;
    }
    s
}

#[test]
fn campaign_at_jobs_4_synthesises_each_trace_exactly_once() {
    let suite = suite(3);
    let cfg = CampaignConfig {
        sim_budget: 8,
        instrs_per_workload: 600,
        seed: 1,
        trace_seed: None,
        threads: 1,
        ..CampaignConfig::default()
    };
    // 4 concurrent jobs, every run over the same trace seed: the store
    // must miss exactly once per workload — the first-arriving job
    // synthesises, the other three share the Arc.
    let store = Arc::new(TraceStore::new());
    let specs: Vec<RunSpec> = [1u64, 2, 3, 4]
        .iter()
        .map(|&seed| RunSpec {
            method: Method::Random,
            seed,
        })
        .collect();
    let logs = CampaignRunner::new()
        .parallel(ParallelConfig::with_jobs(4))
        .trace_store(Arc::clone(&store))
        .run_specs(&specs, &DesignSpace::table4(), &suite, &cfg)
        .expect("campaign runs");
    assert_eq!(logs.len(), specs.len());
    assert_eq!(
        store.misses(),
        suite.len() as u64,
        "each (workload, seed, window) must be synthesised exactly once"
    );
    assert_eq!(
        store.hits(),
        (specs.len() as u64 - 1) * suite.len() as u64,
        "every other evaluator shares the stored trace"
    );
}

#[test]
fn campaign_store_results_match_per_run_generation() {
    let suite = suite(2);
    let cfg = CampaignConfig {
        sim_budget: 6,
        instrs_per_workload: 500,
        seed: 5,
        trace_seed: None,
        threads: 1,
        ..CampaignConfig::default()
    };
    let specs = [RunSpec {
        method: Method::Random,
        seed: 5,
    }];
    let space = DesignSpace::table4();
    // Two dedicated stores: each campaign synthesises independently, so
    // identical logs prove the store itself adds nothing to the results.
    let a = CampaignRunner::new()
        .trace_store(Arc::new(TraceStore::new()))
        .run_specs(&specs, &space, &suite, &cfg)
        .expect("runs");
    let b = CampaignRunner::new()
        .trace_store(Arc::new(TraceStore::new()))
        .run_specs(&specs, &space, &suite, &cfg)
        .expect("runs");
    assert_eq!(a, b);
}

#[test]
fn arena_reuse_is_byte_identical_to_fresh_allocation() {
    let suite = suite(2);
    let designs = [MicroArch::baseline(), MicroArch::tiny()];
    let build = |arena: bool| {
        Evaluator::builder(suite.clone())
            .window(2_000)
            .seed(1)
            .trace_store(Arc::new(TraceStore::new()))
            .threads(1)
            .arena_reuse(arena)
            .build()
    };
    let cold = build(false);
    let warm = build(true);
    for arch in &designs {
        let a = cold
            .evaluate_with(arch, Analysis::NewDeg)
            .expect("evaluates");
        let b = warm
            .evaluate_with(arch, Analysis::NewDeg)
            .expect("evaluates");
        assert_eq!(a, b, "arena reuse must not change results for {arch}");
    }
}

#[test]
fn retry_window_is_a_prefix_of_the_shared_trace() {
    // The halved-window retry path slices the stored trace; the slice
    // must equal a direct synthesis of the shorter window (the generator
    // is prefix-stable), so retries never regenerate.
    let store = TraceStore::new();
    let w = &suite(1)[0];
    let full = store.get(w, 2_000, 7);
    let half = store.get(w, 1_000, 7);
    assert_eq!(&full[..1_000], &half[..]);
    assert_eq!(store.misses(), 2, "two windows, two syntheses");
    assert_eq!(
        &full[..1_000],
        &w.generate(1_000, 7)[..],
        "sub-slice equals direct generation of the shorter window"
    );
}
