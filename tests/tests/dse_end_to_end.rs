//! End-to-end DSE behaviour: budget accounting, determinism, and
//! ArchExplorer's edge over unguided search at equal budgets.

use archexplorer::dse::campaign::{run_method, CampaignConfig};
use archexplorer::prelude::*;

fn cfg(budget: u64) -> CampaignConfig {
    CampaignConfig {
        sim_budget: budget,
        instrs_per_workload: 4_000,
        seed: 11,
        trace_seed: None,
        threads: 2,
        ..CampaignConfig::default()
    }
}

fn suite() -> Vec<Workload> {
    let mut s: Vec<_> = spec06_suite().into_iter().take(3).collect();
    for w in &mut s {
        w.weight = 1.0 / 3.0;
    }
    s
}

#[test]
fn methods_are_deterministic() {
    let space = DesignSpace::table4();
    for m in [Method::ArchExplorer, Method::Random, Method::BoomExplorer] {
        let a = run_method(m, &space, &suite(), &cfg(24));
        let b = run_method(m, &space, &suite(), &cfg(24));
        assert_eq!(a, b, "{m:?} must be deterministic");
    }
}

#[test]
fn every_method_respects_its_budget() {
    let space = DesignSpace::table4();
    for m in Method::ALL {
        let log = run_method(m, &space, &suite(), &cfg(21));
        let last = log.records.last().expect("non-empty log").sims_after;
        assert!(last >= 21, "{m:?} stopped early at {last}");
        assert!(last <= 21 + 3, "{m:?} overshot to {last}");
    }
}

#[test]
fn archexplorer_beats_random_at_equal_budget() {
    let space = DesignSpace::table4();
    let budget = 90;
    let ax = run_method(Method::ArchExplorer, &space, &suite(), &cfg(budget));
    let rnd = run_method(Method::Random, &space, &suite(), &cfg(budget));
    let best_ax = ax.best_tradeoff().expect("non-empty").ppa.tradeoff();
    let best_rnd = rnd.best_tradeoff().expect("non-empty").ppa.tradeoff();
    assert!(
        best_ax >= best_rnd * 0.95,
        "bottleneck-driven search must at least match random: {best_ax} vs {best_rnd}"
    );
}

#[test]
fn exploration_set_hypervolume_is_monotone_over_the_run() {
    let space = DesignSpace::table4();
    let log = run_method(Method::ArchExplorer, &space, &suite(), &cfg(45));
    let curve = log.hypervolume_curve(&RefPoint::default(), 9);
    assert!(!curve.is_empty());
    for w in curve.windows(2) {
        assert!(w[1].1 >= w[0].1 - 1e-12);
    }
}

#[test]
fn constrained_objective_finds_feasible_designs() {
    use archexplorer::dse::archexplorer::{run_archexplorer, ArchExplorerOptions, Objective};
    use archexplorer::dse::eval::Evaluator;
    let space = DesignSpace::table4();
    let objective = Objective::ConstrainedPerf {
        power_cap: 0.2,
        area_cap: 5.0,
    };
    let ev = Evaluator::builder(suite())
        .window(3_000)
        .seed(1)
        .threads(2)
        .build();
    let opts = ArchExplorerOptions {
        seed: 5,
        objective,
        ..Default::default()
    };
    let log = run_archexplorer(&space, &ev, 60, &opts);
    let feasible = log
        .records
        .iter()
        .filter(|r| objective.feasible(&r.ppa))
        .count();
    assert!(
        feasible > log.records.len() / 4,
        "constrained search must concentrate on feasible designs: {feasible}/{}",
        log.records.len()
    );
    // Scoring sanity: infeasible designs score negative, feasible by IPC.
    let over = archexplorer::power::PpaResult {
        ipc: 3.0,
        power_w: 1.0,
        area_mm2: 20.0,
    };
    assert!(objective.score(&over) < 0.0);
    let ok = archexplorer::power::PpaResult {
        ipc: 0.8,
        power_w: 0.1,
        area_mm2: 4.0,
    };
    assert!((objective.score(&ok) - 0.8).abs() < 1e-12);
}

#[test]
fn frontier_designs_are_mutually_nondominated() {
    let space = DesignSpace::table4();
    let log = run_method(Method::Random, &space, &suite(), &cfg(45));
    let frontier = log.frontier();
    for (i, (_, a)) in frontier.iter().enumerate() {
        for (j, (_, b)) in frontier.iter().enumerate() {
            if i != j {
                assert!(
                    !archexplorer::dse::pareto::dominates(a, b),
                    "frontier contains a dominated point"
                );
            }
        }
    }
}
