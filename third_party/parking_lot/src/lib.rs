//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the `parking_lot` locking API the workspace uses: `lock()`
//! returning a guard directly (no `Result`), with poisoning ignored —
//! matching `parking_lot`'s semantics of never poisoning.

use std::sync::PoisonError;

/// `std`-backed mutual exclusion with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (as `parking_lot` does).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// `std`-backed reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 9;
        assert_eq!(l.into_inner(), 9);
    }
}
