//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) API surface the workspace actually uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_bool`], [`Rng::gen_range`]
//! and the [`rngs::StdRng`] / [`rngs::SmallRng`] generator types.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a
//! high-quality, deterministic PRNG. Streams differ numerically from the
//! real `rand` crate (which uses ChaCha12 for `StdRng`), but every
//! consumer in this workspace only relies on determinism-given-seed and
//! statistical uniformity, both of which hold.

use std::ops::Range;

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        unit_f64(self.next_u64()) < p
    }

    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64(word: u64) -> f64 {
    // 53 uniformly random mantissa bits in [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the negligible
                // bias is irrelevant for simulation seeds and search.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the workspace's deterministic standard generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Small generator: identical engine under this stand-in.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}
