//! Offline stand-in for `serde`.
//!
//! The workspace tags its data types with `#[derive(Serialize,
//! Deserialize)]` for downstream consumers, but nothing in the tree
//! actually serialises (there is no `serde_json` or other format crate).
//! This stand-in keeps those annotations compiling offline: the traits
//! are markers with blanket impls, and the re-exported derives (see the
//! sibling `serde_derive` stub) accept `#[serde(...)]` attributes and
//! expand to nothing.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Deserialisation helpers.
pub mod de {
    /// Marker stand-in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned: Sized {}

    impl<T> DeserializeOwned for T {}
}

pub use serde_derive::{Deserialize, Serialize};
