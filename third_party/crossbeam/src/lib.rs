//! Offline stand-in for `crossbeam`, covering the scoped-thread API the
//! workspace uses (`crossbeam::scope` + `Scope::spawn`), implemented on
//! `std::thread::scope` (stable since Rust 1.63).

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Error type of [`scope`]: the payload of a panicking child thread.
pub type ScopeError = Box<dyn Any + Send + 'static>;

/// A scope handle passed to [`scope`]'s closure and to spawned children.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives the scope handle so
    /// children can spawn further children (crossbeam's signature).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Creates a scope in which threads borrowing from the environment can be
/// spawned; all children are joined before this returns. Returns `Err`
/// with the panic payload when any child panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scoped_threads_share_borrows() {
        let total = AtomicU64::new(0);
        let r = scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| total.fetch_add(1, Ordering::Relaxed));
            }
        });
        assert!(r.is_ok());
        assert_eq!(total.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn child_panic_surfaces_as_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
