//! Offline stand-in for `criterion`.
//!
//! Provides the benchmarking API surface the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, benchmark groups, `iter`,
//! `iter_batched`) with a simple measurement loop: each benchmark warms
//! up once, then runs until ~200 ms or the sample budget is exhausted,
//! and prints the mean wall-clock time per iteration. No statistics,
//! plots, or comparisons — enough to eyeball hot-path regressions and to
//! measure telemetry overhead offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Measurement driver handed to each benchmark function.
#[derive(Debug)]
pub struct Bencher {
    label: String,
    samples: u64,
    budget: Duration,
}

impl Bencher {
    fn new(label: String, samples: u64) -> Self {
        Bencher {
            label,
            samples,
            budget: Duration::from_millis(200),
        }
    }

    fn report(&self, total: Duration, iters: u64) {
        let mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
        println!(
            "bench: {:<44} {mean_ns:>14.0} ns/iter ({iters} iters)",
            self.label
        );
    }

    /// Times a closure, running it repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < self.samples && start.elapsed() < self.budget {
            black_box(f());
            iters += 1;
        }
        self.report(start.elapsed(), iters);
    }

    /// Times a closure over fresh inputs produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut f: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(f(setup())); // warm-up
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        let wall = Instant::now();
        while iters < self.samples && wall.elapsed() < self.budget * 2 {
            let input = setup();
            let t0 = Instant::now();
            black_box(f(input));
            measured += t0.elapsed();
            iters += 1;
        }
        self.report(measured, iters);
    }
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration budget.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n as u64;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Ends the group (restores the default sample size).
    pub fn finish(&mut self) {
        self.criterion.sample_size = Criterion::DEFAULT_SAMPLES;
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: Self::DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    const DEFAULT_SAMPLES: u64 = 30;

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher::new(id.to_string(), self.sample_size);
        f(&mut b);
    }
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
