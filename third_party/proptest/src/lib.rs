//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait over ranges / tuples / `Just` /
//! `prop_map` / `prop_oneof!` / `collection::vec` / `any`, plus the
//! [`proptest!`] test macro with `#![proptest_config(...)]` support and
//! the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest: cases are generated from a fixed
//! per-test seed (fully deterministic across runs) and failing inputs
//! are reported but **not shrunk**.

pub mod strategy;

pub mod test_runner {
    //! Test-runner configuration.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Default configuration with a custom case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic xoshiro256** generator driving input synthesis.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds the generator (SplitMix64 expansion).
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// FNV-1a hash used to derive per-test seeds from test names.
    pub fn name_seed(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, sign-symmetric, wide dynamic range.
            let mag = rng.unit() * (rng.below(64) as f64).exp2();
            if rng.next_u64() & 1 == 1 {
                -mag
            } else {
                mag
            }
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `Vec` strategy with element strategy `elem` and a length range.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The `prop::` module alias real proptest exposes through its prelude.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    //! Everything a property test usually imports.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// (Real proptest retries; this stand-in just moves to the next case.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Picks uniformly among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Defines property tests: each `#[test] fn name(input in strategy, ...)`
/// runs `cases` times over deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $(#[test] fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::test_runner::name_seed(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::test_runner::TestRng::seed_from_u64(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 1.0f64..2.0), n in 5usize..9) {
            prop_assert!(a < 10);
            prop_assert!((1.0..2.0).contains(&b));
            prop_assert!((5..9).contains(&n));
        }

        #[test]
        fn vec_and_oneof(
            xs in prop::collection::vec(any::<bool>(), 1..20),
            pick in prop_oneof![Just(2u32), Just(4u32)],
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(pick == 2 || pick == 4);
        }

        #[test]
        fn map_and_assume(v in (0u64..100).prop_map(|x| x * 3)) {
            prop_assume!(v != 0);
            prop_assert_eq!(v % 3, 0);
            prop_assert_ne!(v, 1);
        }
    }
}
