//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// Object-safe: `prop_oneof!` stores strategies as `Box<dyn Strategy>`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Boxes a strategy as a trait object (used by `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Strategy that always yields a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Wraps a non-empty option list.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
