//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never serialises anything (no `serde_json` or similar is in the tree),
//! so these derives only need to *parse*: they accept the input, accept
//! `#[serde(...)]` helper attributes, and expand to nothing. The stub
//! `serde` crate provides blanket trait impls, so bounds still hold.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
