//! The out-of-order core: a cycle-level pipeline model.
//!
//! Stages (paper Figure 7): `F1`/`F2` I-cache access into the fetch buffer →
//! `F` fetch queue → `DC` decode → `R` rename (all back-end resources
//! granted; the scoreboard records who unblocked each stall) → `DP`
//! dispatch into the issue queue → `I` issue (oldest-ready-first, bounded
//! by issue width and functional units) → `M` memory access → `P`
//! writeback/complete → `C` in-order commit.
//!
//! Misprediction is modelled trace-driven: when a fetched control transfer
//! is mispredicted (wrong direction, BTB miss on a taken branch, or RAS
//! mismatch), fetch stalls at the branch and resumes the cycle after it
//! resolves, so the measured squash latency depends on how long the branch
//! actually took to execute — the dynamic behaviour the paper's DEG needs.

use crate::arena::SimArena;
use crate::bpred::BranchPredictor;
use crate::cache::Hierarchy;
use crate::check::{CheckConfig, InvariantChecker};
use crate::config::{MemDepPolicy, MicroArch};
use crate::error::SimError;
use crate::fu::FuSet;
use crate::isa::{Instruction, OpClass, RegClass};
use crate::resources::Pool;
use crate::stats::SimStats;
use crate::trace::{
    Cycle, FuKind, FuWait, InstrIdx, PipelineTrace, RenameStall, ResourceKind, SimResult, NO_INSTR,
};
use std::cmp::Reverse;

const UNSET: Cycle = Cycle::MAX;

/// Cycles to squash the pipeline and redirect fetch after a resolved
/// misprediction (on top of the dynamic resolution time).
pub const REDIRECT_PENALTY: Cycle = 3;

/// Replay penalty charged to a load's commit after a memory-order
/// violation (store-set speculation only).
pub const MEMDEP_REPLAY: Cycle = 3;

/// Default no-commit interval after which the deadlock watchdog fires.
pub const DEADLOCK_WATCHDOG: Cycle = 1_000_000;

/// Per-instruction bookkeeping that is not part of the public trace.
/// Fields are crate-visible so the invariant checker
/// ([`crate::check`]) can audit them.
#[derive(Debug, Clone)]
pub(crate) struct Aux {
    pub(crate) rob: u32,
    pub(crate) iq: u32,
    pub(crate) lq: u32,
    pub(crate) sq: u32,
    pub(crate) reg: u32,
    pub(crate) reg_class: Option<RegClass>,
    pub(crate) src_producers: [InstrIdx; 2],
    pub(crate) fu_blocked: bool,
    /// Earliest commit cycle gate (memory-order violation replays).
    pub(crate) commit_gate: Cycle,
}

impl Default for Aux {
    fn default() -> Self {
        Aux {
            rob: u32::MAX,
            iq: u32::MAX,
            lq: u32::MAX,
            sq: u32::MAX,
            reg: u32::MAX,
            reg_class: None,
            src_producers: [NO_INSTR; 2],
            fu_blocked: false,
            commit_gate: 0,
        }
    }
}

/// A block of consecutive instructions brought in by one I-cache access.
#[derive(Debug, Clone)]
pub(crate) struct FetchBlock {
    /// Next instruction (index into the trace) to move to the fetch queue.
    next: InstrIdx,
    /// One past the last instruction of the block.
    end: InstrIdx,
    /// Cycle at which the block is available (F2).
    ready_at: Cycle,
}

/// The simulated out-of-order core.
///
/// ```
/// use archx_sim::{MicroArch, OooCore, trace_gen};
/// let result = OooCore::new(MicroArch::baseline())
///     .run(&trace_gen::linear_int_chain(100))
///     .expect("simulates");
/// assert_eq!(result.stats.committed, 100);
/// ```
#[derive(Debug)]
pub struct OooCore {
    arch: MicroArch,
    cycle_budget: Option<Cycle>,
    watchdog: Cycle,
    checks: Option<CheckConfig>,
}

impl OooCore {
    /// Creates a core for the given (validated) configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use [`OooCore::try_new`]
    /// when the configuration comes from untrusted input (e.g. a DSE
    /// search move) and a typed error is needed instead.
    pub fn new(arch: MicroArch) -> Self {
        Self::try_new(arch).expect("invalid microarchitecture")
    }

    /// Creates a core, returning [`SimError::InvalidArch`] when the
    /// configuration fails [`MicroArch::validate`].
    pub fn try_new(arch: MicroArch) -> Result<Self, SimError> {
        arch.validate()?;
        Ok(OooCore {
            arch,
            cycle_budget: None,
            watchdog: DEADLOCK_WATCHDOG,
            checks: None,
        })
    }

    /// Creates a core in the **`CheckedCore` mode**: identical simulation
    /// semantics plus per-cycle invariant checking at the default
    /// [`CheckConfig`] (see [`crate::check`]). Equivalent to
    /// `OooCore::new(arch).with_invariant_checks(CheckConfig::default())`.
    pub fn checked(arch: MicroArch) -> Self {
        Self::new(arch).with_invariant_checks(CheckConfig::default())
    }

    /// Enables the `CheckedCore` mode: every simulated cycle re-verifies
    /// the pipeline's structural invariants — in-order commit, stage-time
    /// ordering, pool occupancy bounds, free-list conservation,
    /// memory-order replay gates, and clock monotonicity — and the first
    /// violation ends the run with [`SimError::InvariantViolation`].
    ///
    /// Checks are flag-gated at runtime: a core without this call pays a
    /// single predictable branch per cycle, nothing else.
    pub fn with_invariant_checks(mut self, cfg: CheckConfig) -> Self {
        self.checks = Some(cfg);
        self
    }

    /// Caps a single simulation at `budget` cycles; exceeding it returns
    /// [`SimError::CycleBudgetExceeded`] instead of running indefinitely.
    /// Campaigns use this to bound the cost of a pathological design point.
    pub fn with_cycle_budget(mut self, budget: Cycle) -> Self {
        self.cycle_budget = Some(budget.max(1));
        self
    }

    /// Overrides the deadlock watchdog: a run with no commit for `cycles`
    /// consecutive cycles returns [`SimError::Deadlock`] (default
    /// [`DEADLOCK_WATCHDOG`]). Fault-injection tests lower this to force
    /// the failure path.
    pub fn with_deadlock_watchdog(mut self, cycles: Cycle) -> Self {
        self.watchdog = cycles.max(1);
        self
    }

    /// The configuration this core simulates.
    pub fn arch(&self) -> &MicroArch {
        &self.arch
    }

    /// Simulates the instruction stream to completion and returns the full
    /// microexecution record.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] when the pipeline makes no forward
    /// progress for the watchdog interval, and
    /// [`SimError::CycleBudgetExceeded`] when a configured
    /// [cycle budget](OooCore::with_cycle_budget) runs out first.
    pub fn run(&self, instructions: &[Instruction]) -> Result<SimResult, SimError> {
        self.run_in(&mut SimArena::new(), instructions)
    }

    /// Like [`OooCore::run`], but borrows the scratch working set (event
    /// table, pipeline queues, scoreboard, wakeup heap) from `arena`
    /// instead of allocating it — the hot path for campaigns that simulate
    /// thousands of design points. Results are identical to [`run`]
    /// (see [`SimArena`] for the ownership/clearing contract); call
    /// [`SimArena::recycle`] with the consumed result to reclaim the event
    /// table for the next run.
    ///
    /// [`run`]: OooCore::run
    pub fn run_in(
        &self,
        arena: &mut SimArena,
        instructions: &[Instruction],
    ) -> Result<SimResult, SimError> {
        let n = instructions.len() as InstrIdx;
        let arch = &self.arch;
        let mut events = arena.take_events(instructions.len());
        let mut stats = SimStats::default();

        if instructions.is_empty() {
            return Ok(SimResult {
                trace: PipelineTrace { events, cycles: 0 },
                stats,
                instructions: Vec::new(),
            });
        }

        // Split the remaining scratch buffers out of the arena (disjoint
        // field borrows) and clear them; `events` alone moves into the
        // result, everything else stays owned by the arena.
        let SimArena {
            events: arena_events,
            instructions: arena_instrs,
            aux,
            blocks,
            ftq,
            decq,
            iq,
            sq_live,
            lq_live,
            blocked_kinds,
            conflict,
            pending_p,
        } = arena;
        aux.clear();
        aux.resize(instructions.len(), Aux::default());

        let mut bpred = BranchPredictor::new(arch);
        let mut mem = Hierarchy::new(arch);
        let mut fus = FuSet::new(arch);

        let mut rob = Pool::new(arch.rob_entries);
        let mut iq_pool = Pool::new(arch.iq_entries);
        let mut lq_pool = Pool::new(arch.lq_entries);
        let mut sq_pool = Pool::new(arch.sq_entries);
        // Physical register files permanently hold the committed
        // architectural state; only the remainder is available for
        // renaming (as in real OoO cores — a 50-entry file over 32
        // architectural registers leaves just 18 in-flight renames).
        let mut int_rf = Pool::new(arch.int_rf - crate::config::ARCH_REGS);
        let mut fp_rf = Pool::new(arch.fp_rf - crate::config::ARCH_REGS);

        // Rename map: architectural register -> last renaming instruction.
        let mut rename_map_int = [NO_INSTR; 32];
        let mut rename_map_fp = [NO_INSTR; 32];

        // Front end.
        let mut fetch_idx: InstrIdx = 0;
        // Up to two in-flight fetch blocks: the I-cache access for the next
        // block is pipelined with draining the current one.
        blocks.clear();
        let mut fetch_blocked_by: Option<InstrIdx> = None;
        let mut refill_pending: Option<InstrIdx> = None;
        // Last instruction whose fetch-buffer block was fully drained (its
        // departure freed a buffer slot for the next I-cache access).
        let mut slot_releaser: Option<InstrIdx> = None;
        // Last instruction moved into the fetch queue in an earlier cycle
        // (the releaser for fetch-bandwidth waits).
        let mut last_moved: Option<InstrIdx> = None;
        ftq.clear();
        decq.clear();
        let decq_cap = (2 * arch.width) as usize;

        // Back end.
        iq.clear();
        // Rename stall bookkeeping for the in-order head.
        blocked_kinds.clear();
        // In-flight (renamed, uncommitted) stores for memory ordering.
        sq_live.clear();
        // In-flight issued, uncommitted loads (for violation detection
        // under store-set speculation).
        lq_live.clear();
        // Per-load-PC saturating conflict counters (store-set predictor).
        conflict.clear();

        let mut checker = self.checks.map(InvariantChecker::new);
        let mut commit_head: InstrIdx = 0;
        let mut cycle: Cycle = 0;
        let mut last_commit_cycle: Cycle = 0;
        let mut occupancy_acc = [0u64; 6];
        // Completion times of issued, uncommitted instructions — the next
        // possible wakeup/commit events, used to fast-forward idle cycles.
        pending_p.clear();

        while commit_head < n {
            // ---- Commit (in-order, up to width per cycle) ----
            let commit_start = commit_head;
            let mut committed_now = 0;
            while committed_now < arch.width
                && commit_head < n
                && events[commit_head as usize].p != UNSET
                && events[commit_head as usize].p < cycle
                && aux[commit_head as usize].commit_gate < cycle
            {
                let j = commit_head;
                let ja = &mut aux[j as usize];
                events[j as usize].c = cycle;
                rob.release(ja.rob, j);
                if ja.lq != u32::MAX {
                    lq_pool.release(ja.lq, j);
                    if let Some(pos) = lq_live.iter().position(|&s| s == j) {
                        lq_live.remove(pos);
                    }
                }
                if ja.sq != u32::MAX {
                    sq_pool.release(ja.sq, j);
                    // Remove from the live-store window.
                    if let Some(pos) = sq_live.iter().position(|&s| s == j) {
                        sq_live.remove(pos);
                    }
                }
                if ja.reg != u32::MAX {
                    match ja.reg_class {
                        Some(RegClass::Int) => int_rf.release(ja.reg, j),
                        Some(RegClass::Fp) => fp_rf.release(ja.reg, j),
                        None => unreachable!("register grant without class"),
                    }
                }
                stats.committed += 1;
                commit_head += 1;
                committed_now += 1;
                last_commit_cycle = cycle;
            }

            // ---- Issue (oldest-ready-first) ----
            let mut issued_now = 0;
            let mut k = 0;
            while k < iq.len() && issued_now < arch.width {
                let j = iq[k];
                let je = &events[j as usize];
                if je.dp > cycle {
                    break; // younger entries dispatched even later
                }
                // Operand readiness.
                let mut ready = true;
                for s in 0..2 {
                    let prod = aux[j as usize].src_producers[s];
                    if prod != NO_INSTR {
                        let pp = events[prod as usize].p;
                        if pp == UNSET || pp > cycle {
                            ready = false;
                            break;
                        }
                    }
                }
                let instr = &instructions[j as usize];
                // Memory ordering: conservatively, loads wait until all
                // older live stores know their address; under store-set
                // speculation only previously-conflicting load PCs wait.
                if ready && instr.op == OpClass::Load {
                    let must_wait = match arch.mem_dep {
                        MemDepPolicy::Conservative => true,
                        MemDepPolicy::StoreSets => {
                            conflict.get(&instr.pc).copied().unwrap_or(0) >= 2
                        }
                    };
                    if must_wait {
                        for &s in sq_live.iter() {
                            if s < j {
                                let ms = events[s as usize].m;
                                if ms == UNSET || ms > cycle {
                                    ready = false;
                                    break;
                                }
                            }
                        }
                    }
                }
                if !ready {
                    k += 1;
                    continue;
                }
                // Functional unit.
                let fu_kind = FuSet::kind_for(instr.op);
                let pool = fus.pool_mut(fu_kind);
                if !pool.available_at(cycle) {
                    aux[j as usize].fu_blocked = true;
                    k += 1;
                    continue;
                }
                let grant = pool.acquire(cycle, FuSet::occupancy(instr.op), j);
                debug_assert_eq!(grant.ready_at, cycle);
                let fu_idx = FuKind::ALL
                    .iter()
                    .position(|&f| f == fu_kind)
                    .expect("known kind");
                stats.fu_issued[fu_idx] += 1;

                // Record timing.
                let issue_at = cycle;
                let (m_at, p_at, dcache_miss) = match instr.op {
                    OpClass::Load => {
                        let m_at = issue_at + 1;
                        // Store-to-load forwarding from the youngest older
                        // matching store.
                        let fwd = sq_live
                            .iter()
                            .rev()
                            .find(|&&s| {
                                s < j && instructions[s as usize].mem_addr == instr.mem_addr
                            })
                            .is_some();
                        if fwd {
                            stats.store_forwards += 1;
                            (m_at, m_at + 1, false)
                        } else {
                            let acc = mem.data(instr.mem_addr);
                            stats.dcache_accesses += 1;
                            if acc.l1_miss {
                                stats.dcache_misses += 1;
                                stats.l2_accesses += 1;
                            }
                            if acc.l2_miss {
                                stats.l2_misses += 1;
                            }
                            (m_at, m_at + acc.latency, acc.l1_miss)
                        }
                    }
                    OpClass::Store => {
                        let m_at = issue_at + 1;
                        let acc = mem.data(instr.mem_addr);
                        stats.dcache_accesses += 1;
                        if acc.l1_miss {
                            stats.dcache_misses += 1;
                            stats.l2_accesses += 1;
                        }
                        if acc.l2_miss {
                            stats.l2_misses += 1;
                        }
                        // Store latency is hidden by the store buffer.
                        (m_at, m_at + 1, acc.l1_miss)
                    }
                    op => {
                        let lat = op.exec_latency();
                        (issue_at, issue_at + lat, false)
                    }
                };

                pending_p.push(Reverse(p_at));
                let je = &mut events[j as usize];
                je.i = issue_at;
                je.m = m_at;
                je.p = p_at;
                je.dcache_miss = dcache_miss;
                if aux[j as usize].fu_blocked && grant.last_user != NO_INSTR {
                    je.fu_wait = Some(FuWait {
                        fu: fu_kind,
                        releaser: grant.last_user,
                    });
                }
                // True data dependencies: producers still in flight at
                // dispatch time. The entry's own (cleared) vector is taken
                // and reinstalled so its capacity survives arena reuse.
                let dp_at = je.dp;
                let mut deps = std::mem::take(&mut je.data_deps);
                for s in 0..2 {
                    let prod = aux[j as usize].src_producers[s];
                    if prod != NO_INSTR && events[prod as usize].p > dp_at && !deps.contains(&prod)
                    {
                        deps.push(prod);
                    }
                }
                if instr.op == OpClass::Load {
                    // A store whose address generation gated this load —
                    // only a dependence when the load actually waited for
                    // it (speculative loads that issued before the store's
                    // address resolved have no such edge).
                    for &s in sq_live.iter() {
                        let ms = events[s as usize].m;
                        if s < j
                            && ms != UNSET
                            && ms <= issue_at
                            && ms > dp_at
                            && !deps.contains(&s)
                        {
                            deps.push(s);
                        }
                    }
                }
                events[j as usize].data_deps = deps;

                // Track issued loads; detect memory-order violations when
                // a store's address resolves after a younger load issued.
                if instr.op == OpClass::Load {
                    lq_live.push_back(j);
                } else if instr.op == OpClass::Store && arch.mem_dep == MemDepPolicy::StoreSets {
                    let store_m = events[j as usize].m;
                    let store_addr = instr.mem_addr;
                    for &ld in lq_live.iter() {
                        if ld > j
                            && instructions[ld as usize].mem_addr == store_addr
                            && events[ld as usize].i < store_m
                            && events[ld as usize].mem_dep_violation.is_none()
                        {
                            events[ld as usize].mem_dep_violation = Some(j);
                            let gate = store_m + MEMDEP_REPLAY;
                            let la = &mut aux[ld as usize];
                            la.commit_gate = la.commit_gate.max(gate);
                            let c = conflict.entry(instructions[ld as usize].pc).or_insert(0);
                            *c = (*c + 2).min(3);
                            stats.mem_dep_violations += 1;
                        }
                    }
                }

                // Free the IQ entry at issue.
                iq_pool.release(aux[j as usize].iq, j);
                iq.remove(k);
                issued_now += 1;
                // Do not advance k: the next entry shifted into slot k.
            }

            // ---- Rename (in-order, up to width per cycle) ----
            let mut renamed_now = 0;
            while renamed_now < arch.width {
                let Some(&j) = decq.front() else { break };
                if events[j as usize].dc >= cycle {
                    break;
                }
                let instr = &instructions[j as usize];
                // Determine requirements.
                let need_lq = instr.op == OpClass::Load;
                let need_sq = instr.op == OpClass::Store;
                let dst_class = instr.dst.map(|d| d.class);

                let mut missing: Vec<ResourceKind> = Vec::new();
                if !rob.has(1) {
                    missing.push(ResourceKind::Rob);
                }
                if !iq_pool.has(1) {
                    missing.push(ResourceKind::Iq);
                }
                if need_lq && !lq_pool.has(1) {
                    missing.push(ResourceKind::Lq);
                }
                if need_sq && !sq_pool.has(1) {
                    missing.push(ResourceKind::Sq);
                }
                match dst_class {
                    Some(RegClass::Int) if !int_rf.has(1) => missing.push(ResourceKind::IntRf),
                    Some(RegClass::Fp) if !fp_rf.has(1) => missing.push(ResourceKind::FpRf),
                    _ => {}
                }
                if !missing.is_empty() {
                    for &kind in &missing {
                        if !blocked_kinds.contains(&kind) {
                            blocked_kinds.push(kind);
                        }
                        let ki = ResourceKind::ALL
                            .iter()
                            .position(|&x| x == kind)
                            .expect("known kind");
                        stats.rename_stall_cycles[ki] += 1;
                    }
                    break; // in-order rename stalls the whole stage
                }

                // All resources available: allocate and record provenance.
                let ja = &mut aux[j as usize];
                let rob_grant = rob.alloc(j).expect("checked above");
                ja.rob = rob_grant.entry;
                let iq_grant = iq_pool.alloc(j).expect("checked above");
                ja.iq = iq_grant.entry;
                let lq_grant = need_lq.then(|| lq_pool.alloc(j).expect("checked above"));
                if let Some(g) = lq_grant {
                    ja.lq = g.entry;
                }
                let sq_grant = need_sq.then(|| sq_pool.alloc(j).expect("checked above"));
                if let Some(g) = sq_grant {
                    ja.sq = g.entry;
                }
                let reg_grant = match dst_class {
                    Some(RegClass::Int) => {
                        let g = int_rf.alloc(j).expect("checked above");
                        ja.reg = g.entry;
                        ja.reg_class = Some(RegClass::Int);
                        Some(g)
                    }
                    Some(RegClass::Fp) => {
                        let g = fp_rf.alloc(j).expect("checked above");
                        ja.reg = g.entry;
                        ja.reg_class = Some(RegClass::Fp);
                        Some(g)
                    }
                    None => None,
                };

                // Source producers from the rename map.
                for s in 0..2 {
                    if let Some(reg) = instr.srcs[s] {
                        let map = match reg.class {
                            RegClass::Int => &rename_map_int,
                            RegClass::Fp => &rename_map_fp,
                        };
                        ja.src_producers[s] = map[reg.idx as usize];
                    }
                }
                if let Some(dst) = instr.dst {
                    match dst.class {
                        RegClass::Int => rename_map_int[dst.idx as usize] = j,
                        RegClass::Fp => rename_map_fp[dst.idx as usize] = j,
                    }
                }

                // Record which stalls this instruction experienced, with the
                // scoreboard's releaser for the entry that unblocked it.
                let je = &mut events[j as usize];
                for kind in blocked_kinds.drain(..) {
                    let releaser = match kind {
                        ResourceKind::Rob => rob_grant.last_releaser,
                        ResourceKind::Iq => iq_grant.last_releaser,
                        ResourceKind::Lq => lq_grant.map_or(NO_INSTR, |g| g.last_releaser),
                        ResourceKind::Sq => sq_grant.map_or(NO_INSTR, |g| g.last_releaser),
                        ResourceKind::IntRf | ResourceKind::FpRf => {
                            reg_grant.map_or(NO_INSTR, |g| g.last_releaser)
                        }
                    };
                    je.rename_stalls.push(RenameStall {
                        resource: kind,
                        releaser,
                    });
                }
                je.r = cycle;
                je.dp = cycle + 1;

                if need_sq {
                    sq_live.push_back(j);
                }
                decq.pop_front();
                iq.push_back(j);
                renamed_now += 1;
            }

            // ---- Decode ----
            let mut decoded_now = 0;
            while decoded_now < arch.width && decq.len() < decq_cap {
                let Some(&j) = ftq.front() else { break };
                if events[j as usize].f >= cycle {
                    break;
                }
                events[j as usize].dc = cycle;
                ftq.pop_front();
                decq.push_back(j);
                decoded_now += 1;
            }

            // ---- Fetch: move from the fetch buffer into the fetch queue ----
            let mut fetched_now = 0;
            let bw_releaser = last_moved;
            let mut moved_this_cycle: Option<InstrIdx> = None;
            while fetched_now < arch.width {
                let Some(b) = blocks.front_mut() else { break };
                if b.next == b.end {
                    slot_releaser = Some(b.end - 1);
                    blocks.pop_front();
                    continue;
                }
                if b.ready_at > cycle || (ftq.len() as u32) >= arch.fetch_queue_uops {
                    break;
                }
                let j = b.next;
                events[j as usize].f = cycle;
                if events[j as usize].f2 < cycle {
                    // The instruction sat ready in the fetch buffer: a
                    // front-end bandwidth / fetch-queue wait.
                    events[j as usize].fetch_bw_from = bw_releaser;
                }
                ftq.push_back(j);
                moved_this_cycle = Some(j);
                b.next += 1;
                fetched_now += 1;
            }
            if moved_this_cycle.is_some() {
                last_moved = moved_this_cycle;
            }
            if let Some(b) = blocks.front() {
                if b.next == b.end {
                    slot_releaser = Some(b.end - 1);
                    blocks.pop_front();
                }
            }

            // ---- Fetch: unblock after a resolved misprediction ----
            // Squash and front-end redirect cost a few cycles on top of
            // the (dynamic) branch resolution time.
            if let Some(b) = fetch_blocked_by {
                let pb = events[b as usize].p;
                if pb != UNSET && cycle >= pb + REDIRECT_PENALTY {
                    fetch_blocked_by = None;
                }
            }

            // ---- Fetch: start a new I-cache access (pipelined, two deep) ----
            if blocks.len() < 2 && fetch_blocked_by.is_none() && fetch_idx < n {
                let start = fetch_idx;
                let pc = instructions[start as usize].pc;
                let acc = mem.fetch(pc);
                stats.icache_accesses += 1;
                if acc.l1_miss {
                    stats.icache_misses += 1;
                    stats.l2_accesses += 1;
                }
                if acc.l2_miss {
                    stats.l2_misses += 1;
                }
                let f1 = cycle;
                let f2 = cycle + acc.latency;
                let max_instrs = self.arch.fetch_buffer_instrs();
                let mut end = start;
                let mut blocked: Option<InstrIdx> = None;
                while end < n && end - start < max_instrs {
                    let j = end;
                    let instr = &instructions[j as usize];
                    let mut stop_after = false;
                    if instr.op.is_branch() {
                        let pred = bpred.predict_and_update(instr);
                        stats.bp_lookups += 1;
                        let correct = BranchPredictor::correct(pred, instr);
                        if !correct {
                            events[j as usize].mispredicted = true;
                            stats.mispredicts += 1;
                            blocked = Some(j);
                            stop_after = true;
                        } else if instr.control_taken() {
                            stop_after = true; // correctly predicted taken: redirect
                        }
                    }
                    end += 1;
                    if stop_after {
                        break;
                    }
                }
                stats.btb_misses = bpred.btb_misses();
                for j in start..end {
                    let je = &mut events[j as usize];
                    je.f1 = f1;
                    je.f2 = f2;
                    if j == start {
                        je.icache_miss = acc.l1_miss;
                        if let Some(from) = refill_pending.take() {
                            // After a squash, the misprediction (not the
                            // buffer slot) is the binding dependence.
                            je.refill_from = Some(from);
                        } else {
                            je.fetch_slot_from = slot_releaser;
                        }
                    }
                }
                blocks.push_back(FetchBlock {
                    next: start,
                    end,
                    ready_at: f2,
                });
                fetch_idx = end;
                if let Some(b) = blocked {
                    fetch_blocked_by = Some(b);
                    refill_pending = Some(b);
                }
            }

            // ---- Invariant checks (CheckedCore mode only) ----
            if let Some(chk) = checker.as_mut() {
                if let Err(e) = chk.end_of_cycle(
                    cycle,
                    commit_start..commit_head,
                    &events,
                    aux,
                    [
                        (&rob, ResourceKind::Rob),
                        (&iq_pool, ResourceKind::Iq),
                        (&lq_pool, ResourceKind::Lq),
                        (&sq_pool, ResourceKind::Sq),
                        (&int_rf, ResourceKind::IntRf),
                        (&fp_rf, ResourceKind::FpRf),
                    ],
                ) {
                    *arena_events = events; // reinstall for the next run
                    return Err(e);
                }
            }

            // ---- Idle fast-forward ----
            // When a cycle passed with no activity at any stage, nothing can
            // happen until the next timed event: a fetch block arriving, a
            // squash resolving, or an in-flight instruction completing
            // (which drives wakeup, FU release, resource release and
            // commit). Jump straight there; all recorded event times are
            // unaffected because no event could fall in the gap.
            let idle = committed_now == 0
                && issued_now == 0
                && renamed_now == 0
                && decoded_now == 0
                && fetched_now == 0;
            let mut advance: Cycle = 1;
            if idle {
                // A pending fetch-block creation next cycle forbids jumping.
                let creation_pending =
                    blocks.len() < 2 && fetch_blocked_by.is_none() && fetch_idx < n;
                if !creation_pending {
                    let mut target = Cycle::MAX;
                    if let Some(b) = blocks.front() {
                        target = target.min(b.ready_at);
                    }
                    if let Some(b) = fetch_blocked_by {
                        let pb = events[b as usize].p;
                        if pb != UNSET {
                            target = target.min(pb + REDIRECT_PENALTY);
                        }
                    }
                    while let Some(&Reverse(p)) = pending_p.peek() {
                        if p <= cycle {
                            pending_p.pop();
                        } else {
                            target = target.min(p);
                            break;
                        }
                    }
                    if target != Cycle::MAX && target > cycle + 1 {
                        advance = target - cycle;
                    }
                }
            }

            // ---- Occupancy sampling (idle gaps keep their occupancy) ----
            occupancy_acc[0] += rob.in_use() as u64 * advance;
            occupancy_acc[1] += iq_pool.in_use() as u64 * advance;
            occupancy_acc[2] += lq_pool.in_use() as u64 * advance;
            occupancy_acc[3] += sq_pool.in_use() as u64 * advance;
            occupancy_acc[4] += int_rf.in_use() as u64 * advance;
            occupancy_acc[5] += fp_rf.in_use() as u64 * advance;
            // Rename stalls persist through the skipped cycles.
            if advance > 1 {
                for &kind in blocked_kinds.iter() {
                    let ki = ResourceKind::ALL
                        .iter()
                        .position(|&x| x == kind)
                        .expect("known kind");
                    stats.rename_stall_cycles[ki] += advance - 1;
                }
            }

            cycle += advance;
            if cycle - last_commit_cycle >= self.watchdog {
                *arena_events = events; // reinstall for the next run
                return Err(SimError::Deadlock {
                    cycle,
                    commit_head,
                    watchdog: self.watchdog,
                });
            }
            if let Some(budget) = self.cycle_budget {
                if cycle > budget {
                    *arena_events = events; // reinstall for the next run
                    return Err(SimError::CycleBudgetExceeded {
                        budget,
                        committed: stats.committed,
                        total: instructions.len() as u64,
                    });
                }
            }
        }

        let _ = &*pending_p;
        let total_cycles = events
            .last()
            .map(|e| e.c)
            .filter(|&c| c != UNSET)
            .unwrap_or(cycle);
        stats.cycles = total_cycles;
        for (i, acc) in occupancy_acc.iter().enumerate() {
            stats.avg_occupancy[i] = if cycle > 0 {
                *acc as f64 / cycle as f64
            } else {
                0.0
            };
        }

        let mut owned_instrs = std::mem::take(arena_instrs);
        owned_instrs.clear();
        owned_instrs.extend_from_slice(instructions);
        Ok(SimResult {
            trace: PipelineTrace {
                events,
                cycles: total_cycles,
            },
            stats,
            instructions: owned_instrs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_gen;

    #[test]
    fn empty_trace() {
        let r = OooCore::new(MicroArch::baseline())
            .run(&[])
            .expect("simulates");
        assert_eq!(r.stats.committed, 0);
        assert_eq!(r.trace.cycles, 0);
    }

    #[test]
    fn all_instructions_commit_in_order() {
        let instrs = trace_gen::linear_int_chain(500);
        let r = OooCore::new(MicroArch::baseline())
            .run(&instrs)
            .expect("simulates");
        assert_eq!(r.stats.committed, 500);
        let mut prev = 0;
        for ev in &r.trace.events {
            assert!(ev.c >= prev, "commit must be monotone");
            prev = ev.c;
            // Stage ordering invariants.
            assert!(ev.f1 <= ev.f2);
            assert!(ev.f2 <= ev.f);
            assert!(ev.f < ev.dc);
            assert!(ev.dc < ev.r);
            assert!(ev.r < ev.dp);
            assert!(ev.dp <= ev.i);
            assert!(ev.i <= ev.m);
            assert!(ev.m < ev.p);
            assert!(ev.p < ev.c);
        }
    }

    #[test]
    fn dependent_chain_is_serial() {
        // A chain of dependent ALU ops cannot exceed IPC 1.
        let instrs = trace_gen::linear_int_chain(2000);
        let r = OooCore::new(MicroArch::baseline())
            .run(&instrs)
            .expect("simulates");
        assert!(
            r.stats.ipc() <= 1.05,
            "chain IPC {} must be ~1",
            r.stats.ipc()
        );
    }

    #[test]
    fn independent_ops_superscalar() {
        let instrs = trace_gen::independent_int_ops(20_000);
        let r = OooCore::new(MicroArch::baseline())
            .run(&instrs)
            .expect("simulates");
        assert!(
            r.stats.ipc() > 1.5,
            "independent ops should exceed IPC 1.5, got {}",
            r.stats.ipc()
        );
    }

    #[test]
    fn wider_machine_is_not_slower() {
        let instrs = trace_gen::independent_int_ops(4000);
        let narrow = {
            let mut a = MicroArch::baseline();
            a.width = 1;
            OooCore::new(a)
                .run(&instrs)
                .expect("simulates")
                .stats
                .cycles
        };
        let wide = {
            let mut a = MicroArch::baseline();
            a.width = 8;
            a.int_alu = 6;
            OooCore::new(a)
                .run(&instrs)
                .expect("simulates")
                .stats
                .cycles
        };
        assert!(wide < narrow, "8-wide {wide} must beat 1-wide {narrow}");
    }

    #[test]
    fn small_int_rf_generates_rename_stalls() {
        let instrs = trace_gen::independent_int_ops(20_000);
        let mut a = MicroArch::baseline();
        a.int_rf = 40;
        a.rob_entries = 256;
        a.iq_entries = 80;
        let r = OooCore::new(a).run(&instrs).expect("simulates");
        assert!(
            r.stats.stall_cycles(ResourceKind::IntRf) > 0,
            "a 40-entry IntRF must stall: {:?}",
            r.stats.rename_stall_cycles
        );
        // Stalled instructions name their releaser.
        let with_stall = r
            .trace
            .events
            .iter()
            .filter(|e| {
                e.rename_stalls
                    .iter()
                    .any(|s| s.resource == ResourceKind::IntRf)
            })
            .count();
        assert!(with_stall > 0);
    }

    #[test]
    fn mispredicted_branches_block_fetch() {
        let instrs = trace_gen::random_branches(2000, 0xDEADBEEF);
        let r = OooCore::new(MicroArch::baseline())
            .run(&instrs)
            .expect("simulates");
        assert!(r.stats.mispredicts > 0, "random branches must mispredict");
        // Every refill points back at a mispredicted instruction, and
        // fetch of the refill begins strictly after resolution.
        let mut seen = 0;
        for (j, ev) in r.trace.events.iter().enumerate() {
            if let Some(from) = ev.refill_from {
                assert!((from as usize) < j);
                assert!(r.trace.events[from as usize].mispredicted);
                assert!(ev.f1 >= r.trace.events[from as usize].p);
                seen += 1;
            }
        }
        assert!(seen > 0);
    }

    #[test]
    fn loads_hit_and_miss() {
        let instrs = trace_gen::pointer_chase(3000, 1 << 22, 0x1234);
        let r = OooCore::new(MicroArch::baseline())
            .run(&instrs)
            .expect("simulates");
        assert!(
            r.stats.dcache_misses > 0,
            "a 4 MiB footprint must miss a 32 KiB L1"
        );
        assert!(r.stats.dcache_accesses >= r.stats.dcache_misses);
    }

    #[test]
    fn store_forwarding_counts() {
        let instrs = trace_gen::store_load_pairs(1000);
        let r = OooCore::new(MicroArch::baseline())
            .run(&instrs)
            .expect("simulates");
        assert!(
            r.stats.store_forwards > 0,
            "same-address pairs must forward"
        );
    }

    #[test]
    fn deterministic() {
        let instrs = trace_gen::mixed_workload(3000, 42);
        let a = OooCore::new(MicroArch::baseline())
            .run(&instrs)
            .expect("simulates");
        let b = OooCore::new(MicroArch::baseline())
            .run(&instrs)
            .expect("simulates");
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn fu_contention_records_waits() {
        // Many divides through a single divider.
        let instrs = trace_gen::divide_heavy(500);
        let r = OooCore::new(MicroArch::baseline())
            .run(&instrs)
            .expect("simulates");
        let waits = r
            .trace
            .events
            .iter()
            .filter(|e| matches!(e.fu_wait, Some(w) if w.fu == FuKind::IntMultDiv))
            .count();
        assert!(waits > 0, "serialised divides must record FU waits");
    }
}
