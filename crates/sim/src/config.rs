//! Microarchitecture configuration: the 21 parameters of the ArchExplorer
//! design space (paper Table 4) plus a handful of fixed structural constants.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Memory-dependence handling policy for loads versus older stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum MemDepPolicy {
    /// Loads wait until every older in-flight store has computed its
    /// address (no memory-order misprediction possible).
    #[default]
    Conservative,
    /// Loads issue speculatively; a per-PC conflict predictor (store-set
    /// style) forces waiting only for loads that have violated before.
    /// Violations gate the offending load's commit by a replay penalty and
    /// appear in the DEG as memory-dependence misprediction edges.
    StoreSets,
}

/// Branch-direction prediction algorithm.
///
/// The paper notes (§4.3) that once predictor *capacity* stops paying,
/// only a better *algorithm* helps — this knob enables that study (see
/// the `ext_bpred` harness). Storage parameters (Table 4) apply to all
/// variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum BpKind {
    /// Alpha-21264-style tournament: local + global + choice.
    #[default]
    Tournament,
    /// Global-history-XOR-PC indexed 2-bit counters (uses the global
    /// predictor table; local/choice tables idle).
    GShare,
    /// Per-PC 2-bit counters only (uses the local predictor table).
    Bimodal,
}

/// Cache replacement policy (applies to the parameterised L1 caches; the
/// fixed L2 always uses LRU).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ReplPolicy {
    /// True least-recently-used.
    #[default]
    Lru,
    /// First-in-first-out (insertion order, ignores reuse).
    Fifo,
    /// Pseudo-random victim (deterministic xorshift).
    Random,
}

/// Fixed number of architectural registers per class.
pub const ARCH_REGS: u32 = 32;
/// Instruction size in bytes (RISC-style fixed width).
pub const INSTR_BYTES: u32 = 4;
/// L1 cache line size in bytes.
pub const LINE_BYTES: u32 = 64;
/// L1 hit latency in cycles (paper Table 1: 2 cycles).
pub const L1_HIT_CYCLES: u64 = 2;
/// L2 hit latency in cycles (on top of the L1 lookup).
pub const L2_HIT_CYCLES: u64 = 12;
/// DRAM access latency in cycles (on top of L2).
pub const DRAM_CYCLES: u64 = 100;
/// Fixed L2 capacity in KiB (paper Section 5.1: 2 MB, 8-way).
pub const L2_KB: u32 = 2048;
/// Fixed L2 associativity.
pub const L2_ASSOC: u32 = 8;

/// A complete microarchitecture parameterisation.
///
/// Field ranges mirror paper Table 4; [`MicroArch::baseline`] reproduces the
/// Table 1 baseline. Use [`MicroArch::validate`] before simulating a
/// hand-constructed value.
///
/// ```
/// use archx_sim::MicroArch;
/// let arch = MicroArch::baseline();
/// assert!(arch.validate().is_ok());
/// assert_eq!(arch.width, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MicroArch {
    /// Unified fetch/decode/rename/dispatch/issue/writeback/commit width.
    pub width: u32,
    /// Fetch buffer size in bytes.
    pub fetch_buffer_bytes: u32,
    /// Fetch (target) queue size in micro-ops.
    pub fetch_queue_uops: u32,
    /// Local predictor entries of the tournament branch predictor.
    pub local_predictor: u32,
    /// Global predictor entries of the tournament branch predictor.
    pub global_predictor: u32,
    /// Choice predictor entries of the tournament branch predictor.
    pub choice_predictor: u32,
    /// Return address stack entries.
    pub ras_entries: u32,
    /// Branch target buffer entries.
    pub btb_entries: u32,
    /// Reorder buffer entries.
    pub rob_entries: u32,
    /// Physical integer registers.
    pub int_rf: u32,
    /// Physical floating-point registers.
    pub fp_rf: u32,
    /// Instruction (issue) queue entries.
    pub iq_entries: u32,
    /// Load queue entries.
    pub lq_entries: u32,
    /// Store queue entries.
    pub sq_entries: u32,
    /// Integer ALUs.
    pub int_alu: u32,
    /// Integer multiplier/divider units.
    pub int_mult_div: u32,
    /// Floating-point ALUs.
    pub fp_alu: u32,
    /// Floating-point multiplier/divider units.
    pub fp_mult_div: u32,
    /// Cache read/write ports shared by loads and stores.
    pub rd_wr_ports: u32,
    /// L1 instruction cache size in KiB.
    pub icache_kb: u32,
    /// L1 instruction cache associativity.
    pub icache_assoc: u32,
    /// L1 data cache size in KiB.
    pub dcache_kb: u32,
    /// L1 data cache associativity.
    pub dcache_assoc: u32,
    /// Memory-dependence speculation policy (not part of the Table 4
    /// search space; an extension study — see `ext_memdep`).
    pub mem_dep: MemDepPolicy,
    /// Branch-direction prediction algorithm (extension study — see
    /// `ext_bpred`).
    pub bp_kind: BpKind,
    /// L1 cache replacement policy (extension study — see
    /// `ext_replacement`).
    pub replacement: ReplPolicy,
}

impl MicroArch {
    /// The baseline microarchitecture of paper Table 1.
    pub fn baseline() -> Self {
        Self {
            width: 4,
            fetch_buffer_bytes: 64,
            fetch_queue_uops: 32,
            local_predictor: 2048,
            global_predictor: 8192,
            choice_predictor: 8192,
            ras_entries: 16,
            btb_entries: 4096,
            rob_entries: 50,
            int_rf: 50,
            fp_rf: 50,
            iq_entries: 32,
            lq_entries: 24,
            sq_entries: 24,
            int_alu: 3,
            int_mult_div: 1,
            fp_alu: 2,
            fp_mult_div: 1,
            rd_wr_ports: 1,
            icache_kb: 32,
            icache_assoc: 2,
            dcache_kb: 32,
            dcache_assoc: 2,
            mem_dep: MemDepPolicy::Conservative,
            bp_kind: BpKind::Tournament,
            replacement: ReplPolicy::Lru,
        }
    }

    /// A deliberately small configuration, useful in tests that need to
    /// provoke resource stalls quickly.
    pub fn tiny() -> Self {
        Self {
            width: 2,
            fetch_buffer_bytes: 16,
            fetch_queue_uops: 8,
            local_predictor: 512,
            global_predictor: 2048,
            choice_predictor: 2048,
            ras_entries: 16,
            btb_entries: 1024,
            rob_entries: 32,
            int_rf: 40,
            fp_rf: 40,
            iq_entries: 16,
            lq_entries: 20,
            sq_entries: 20,
            int_alu: 3,
            int_mult_div: 1,
            fp_alu: 1,
            fp_mult_div: 1,
            rd_wr_ports: 1,
            icache_kb: 16,
            icache_assoc: 2,
            dcache_kb: 16,
            dcache_assoc: 2,
            mem_dep: MemDepPolicy::Conservative,
            bp_kind: BpKind::Tournament,
            replacement: ReplPolicy::Lru,
        }
    }

    /// Checks structural invariants the pipeline relies on.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when a parameter is zero, a predictor/cache
    /// size is not a power of two, or the physical register files cannot
    /// even hold the architectural state.
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn pos(name: &'static str, v: u32) -> Result<(), ConfigError> {
            if v == 0 {
                Err(ConfigError::ZeroParameter(name))
            } else {
                Ok(())
            }
        }
        pos("width", self.width)?;
        pos("fetch_buffer_bytes", self.fetch_buffer_bytes)?;
        pos("fetch_queue_uops", self.fetch_queue_uops)?;
        pos("rob_entries", self.rob_entries)?;
        pos("iq_entries", self.iq_entries)?;
        pos("lq_entries", self.lq_entries)?;
        pos("sq_entries", self.sq_entries)?;
        pos("int_alu", self.int_alu)?;
        pos("int_mult_div", self.int_mult_div)?;
        pos("fp_alu", self.fp_alu)?;
        pos("fp_mult_div", self.fp_mult_div)?;
        pos("rd_wr_ports", self.rd_wr_ports)?;
        pos("ras_entries", self.ras_entries)?;
        for (name, v) in [
            ("local_predictor", self.local_predictor),
            ("global_predictor", self.global_predictor),
            ("choice_predictor", self.choice_predictor),
            ("btb_entries", self.btb_entries),
        ] {
            pos(name, v)?;
            if !v.is_power_of_two() {
                return Err(ConfigError::NotPowerOfTwo(name, v));
            }
        }
        for (name, kb, assoc) in [
            ("icache", self.icache_kb, self.icache_assoc),
            ("dcache", self.dcache_kb, self.dcache_assoc),
        ] {
            pos(name, kb)?;
            pos(name, assoc)?;
            let lines = kb * 1024 / LINE_BYTES;
            if !lines.is_multiple_of(assoc) || !(lines / assoc).is_power_of_two() {
                return Err(ConfigError::BadCacheGeometry { name, kb, assoc });
            }
        }
        if self.int_rf < ARCH_REGS + 1 {
            return Err(ConfigError::RegFileTooSmall {
                class: "int",
                have: self.int_rf,
            });
        }
        if self.fp_rf < ARCH_REGS + 1 {
            return Err(ConfigError::RegFileTooSmall {
                class: "fp",
                have: self.fp_rf,
            });
        }
        if self.fetch_buffer_bytes < INSTR_BYTES {
            return Err(ConfigError::ZeroParameter("fetch_buffer_bytes"));
        }
        Ok(())
    }

    /// Number of instructions a full fetch buffer holds.
    pub fn fetch_buffer_instrs(&self) -> u32 {
        self.fetch_buffer_bytes / INSTR_BYTES
    }
}

impl Default for MicroArch {
    fn default() -> Self {
        Self::baseline()
    }
}

impl fmt::Display for MicroArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "w{} fb{} fq{} bp{}/{}/{} ras{} btb{} rob{} irf{} frf{} iq{} lq{} sq{} \
             alu{} imd{} fpu{} fmd{} i${}K/{} d${}K/{}",
            self.width,
            self.fetch_buffer_bytes,
            self.fetch_queue_uops,
            self.local_predictor,
            self.global_predictor,
            self.choice_predictor,
            self.ras_entries,
            self.btb_entries,
            self.rob_entries,
            self.int_rf,
            self.fp_rf,
            self.iq_entries,
            self.lq_entries,
            self.sq_entries,
            self.int_alu,
            self.int_mult_div,
            self.fp_alu,
            self.fp_mult_div,
            self.icache_kb,
            self.icache_assoc,
            self.dcache_kb,
            self.dcache_assoc,
        )
    }
}

/// Errors produced by [`MicroArch::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A parameter that must be positive was zero.
    ZeroParameter(&'static str),
    /// A table size that must be a power of two was not.
    NotPowerOfTwo(&'static str, u32),
    /// Cache size/associativity do not form a power-of-two set count.
    BadCacheGeometry {
        /// Which cache.
        name: &'static str,
        /// Requested capacity in KiB.
        kb: u32,
        /// Requested associativity.
        assoc: u32,
    },
    /// A physical register file smaller than the architectural state.
    RegFileTooSmall {
        /// Register class name.
        class: &'static str,
        /// Provided number of physical registers.
        have: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroParameter(name) => write!(f, "parameter `{name}` must be positive"),
            ConfigError::NotPowerOfTwo(name, v) => {
                write!(f, "parameter `{name}` must be a power of two, got {v}")
            }
            ConfigError::BadCacheGeometry { name, kb, assoc } => write!(
                f,
                "{name}: {kb} KiB with associativity {assoc} does not yield a power-of-two set count"
            ),
            ConfigError::RegFileTooSmall { class, have } => write!(
                f,
                "{class} register file has {have} physical registers, need more than the architectural state"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_valid() {
        assert!(MicroArch::baseline().validate().is_ok());
        assert!(MicroArch::tiny().validate().is_ok());
    }

    #[test]
    fn zero_width_rejected() {
        let mut arch = MicroArch::baseline();
        arch.width = 0;
        assert_eq!(arch.validate(), Err(ConfigError::ZeroParameter("width")));
    }

    #[test]
    fn non_pow2_predictor_rejected() {
        let mut arch = MicroArch::baseline();
        arch.btb_entries = 3000;
        assert!(matches!(
            arch.validate(),
            Err(ConfigError::NotPowerOfTwo("btb_entries", 3000))
        ));
    }

    #[test]
    fn small_regfile_rejected() {
        let mut arch = MicroArch::baseline();
        arch.int_rf = 8;
        assert!(matches!(
            arch.validate(),
            Err(ConfigError::RegFileTooSmall { class: "int", .. })
        ));
    }

    #[test]
    fn fetch_buffer_instrs() {
        assert_eq!(MicroArch::baseline().fetch_buffer_instrs(), 16);
    }

    #[test]
    fn display_is_nonempty_and_debug_roundtrips() {
        let arch = MicroArch::baseline();
        assert!(!format!("{arch}").is_empty());
        assert!(format!("{arch:?}").contains("MicroArch"));
    }

    #[test]
    fn bad_cache_geometry_rejected() {
        let mut arch = MicroArch::baseline();
        arch.icache_kb = 24; // 384 lines / 2-way = 192 sets, not a power of two
        assert!(matches!(
            arch.validate(),
            Err(ConfigError::BadCacheGeometry { name: "icache", .. })
        ));
    }
}
