//! Small deterministic instruction-trace generators.
//!
//! These are building blocks for unit tests, documentation examples and the
//! paper's walkthrough figures. Full SPEC-like workloads live in the
//! `archx-workloads` crate; the generators here are deliberately simple and
//! dependency-free (a private xorshift PRNG keeps them deterministic).

use crate::isa::{Instruction, OpClass, Reg};

/// A tiny deterministic PRNG (xorshift64*), private to trace generation.
#[derive(Debug, Clone)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Seeds the generator; a zero seed is remapped to a fixed constant.
    pub fn new(seed: u64) -> Self {
        XorShift {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `0..bound` (`bound` must be positive).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// A float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Code footprint (in instructions) used by the simple generators: traces
/// loop over this many static PCs, like the hot loop of a real program.
pub const CODE_FOOTPRINT: usize = 512;

fn loop_pc(k: usize) -> u64 {
    0x1000 + 4 * (k % CODE_FOOTPRINT) as u64
}

/// A fully serial chain: every op reads the previous op's result.
pub fn linear_int_chain(n: usize) -> Vec<Instruction> {
    (0..n)
        .map(|k| {
            Instruction::op(
                loop_pc(k),
                OpClass::IntAlu,
                [Some(Reg::int(1)), None],
                Some(Reg::int(1)),
            )
        })
        .collect()
}

/// Fully independent integer ops (maximum ILP), round-robin registers.
pub fn independent_int_ops(n: usize) -> Vec<Instruction> {
    (0..n)
        .map(|k| {
            let r = (k % 24) as u8 + 2;
            Instruction::op(
                loop_pc(k),
                OpClass::IntAlu,
                [Some(Reg::int(r)), None],
                Some(Reg::int(r)),
            )
        })
        .collect()
}

/// Alternating ALU ops and hard-to-predict conditional branches.
pub fn random_branches(n: usize, seed: u64) -> Vec<Instruction> {
    let mut rng = XorShift::new(seed);
    (0..n)
        .map(|k| {
            let pc = loop_pc(k);
            if k % 4 == 3 {
                Instruction::branch(pc, Reg::int(2), rng.below(2) == 0, pc + 64)
            } else {
                let r = (k % 8) as u8 + 2;
                Instruction::op(
                    pc,
                    OpClass::IntAlu,
                    [Some(Reg::int(r)), None],
                    Some(Reg::int(r)),
                )
            }
        })
        .collect()
}

/// Dependent loads over a large random footprint (cache-hostile).
pub fn pointer_chase(n: usize, footprint_bytes: u64, seed: u64) -> Vec<Instruction> {
    let mut rng = XorShift::new(seed);
    (0..n)
        .map(|k| {
            let pc = loop_pc(k);
            let addr = rng.below(footprint_bytes.max(64)) & !7;
            Instruction::load(pc, addr, Reg::int(1), Reg::int(1))
        })
        .collect()
}

/// Store followed by a load of the same address (exercises forwarding).
pub fn store_load_pairs(n: usize) -> Vec<Instruction> {
    (0..n)
        .map(|k| {
            let pc = loop_pc(k);
            let addr = 0x8000 + 8 * (k as u64 / 2);
            if k % 2 == 0 {
                Instruction::store(pc, addr, Reg::int(1), Reg::int(2))
            } else {
                Instruction::load(pc, addr, Reg::int(1), Reg::int(3))
            }
        })
        .collect()
}

/// Back-to-back integer divides through a scarce divider.
pub fn divide_heavy(n: usize) -> Vec<Instruction> {
    (0..n)
        .map(|k| {
            let r = (k % 16) as u8 + 2;
            Instruction::op(
                loop_pc(k),
                OpClass::IntDiv,
                [Some(Reg::int(r)), None],
                Some(Reg::int(r)),
            )
        })
        .collect()
}

/// A mixed workload: ALU, FP, memory and branches, loosely coupled.
pub fn mixed_workload(n: usize, seed: u64) -> Vec<Instruction> {
    let mut rng = XorShift::new(seed);
    (0..n)
        .map(|k| {
            let pc = loop_pc(k);
            let r = (rng.below(20) + 2) as u8;
            let r2 = (rng.below(20) + 2) as u8;
            match rng.below(10) {
                0 | 1 => {
                    let addr = (0x10000 + rng.below(1 << 16)) & !7;
                    Instruction::load(pc, addr, Reg::int(r), Reg::int(r2))
                }
                2 => {
                    let addr = (0x10000 + rng.below(1 << 16)) & !7;
                    Instruction::store(pc, addr, Reg::int(r), Reg::int(r2))
                }
                3 => Instruction::branch(pc, Reg::int(r), rng.unit() < 0.7, pc + 128),
                4 => Instruction::op(
                    pc,
                    OpClass::FpAlu,
                    [Some(Reg::fp(r)), Some(Reg::fp(r2))],
                    Some(Reg::fp(r)),
                ),
                5 => Instruction::op(
                    pc,
                    OpClass::FpMult,
                    [Some(Reg::fp(r)), None],
                    Some(Reg::fp(r2)),
                ),
                6 => Instruction::op(
                    pc,
                    OpClass::IntMult,
                    [Some(Reg::int(r)), None],
                    Some(Reg::int(r2)),
                ),
                _ => Instruction::op(
                    pc,
                    OpClass::IntAlu,
                    [Some(Reg::int(r)), Some(Reg::int(r2))],
                    Some(Reg::int(r)),
                ),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_requested_lengths() {
        assert_eq!(linear_int_chain(10).len(), 10);
        assert_eq!(independent_int_ops(10).len(), 10);
        assert_eq!(random_branches(10, 1).len(), 10);
        assert_eq!(pointer_chase(10, 4096, 1).len(), 10);
        assert_eq!(store_load_pairs(10).len(), 10);
        assert_eq!(divide_heavy(10).len(), 10);
        assert_eq!(mixed_workload(10, 1).len(), 10);
    }

    #[test]
    fn xorshift_is_deterministic_and_nonconstant() {
        let mut a = XorShift::new(7);
        let mut b = XorShift::new(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn unit_in_range() {
        let mut r = XorShift::new(3);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chain_is_truly_dependent() {
        let c = linear_int_chain(3);
        assert_eq!(c[1].srcs[0], c[0].dst.map(|_| Reg::int(1)));
    }
}
