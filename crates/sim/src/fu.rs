//! Functional-unit pools with occupancy and release tracking.
//!
//! Each unit remembers when it becomes free and which instruction last
//! released it, so the issue stage can both find the earliest-available
//! unit and record the issue→issue dependence edge of the paper's DEG.

use crate::isa::OpClass;
use crate::trace::{FuKind, InstrIdx, NO_INSTR};

/// One pool of identical functional units of a given [`FuKind`].
#[derive(Debug, Clone)]
pub struct FuPool {
    kind: FuKind,
    /// Cycle at which each unit becomes free.
    free_at: Vec<u64>,
    /// Instruction that last occupied each unit.
    last_user: Vec<InstrIdx>,
    issued: u64,
}

/// Result of acquiring a functional unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuGrant {
    /// Cycle at which the unit is actually available (≥ the request cycle
    /// when the instruction had to wait).
    pub ready_at: u64,
    /// Previous user of the granted unit ([`NO_INSTR`] if the unit was
    /// never used). The pipeline records a contention edge only when the
    /// requester actually waited.
    pub last_user: InstrIdx,
}

impl FuPool {
    /// A pool of `count` units of the given kind.
    pub fn new(kind: FuKind, count: u32) -> Self {
        assert!(count > 0, "functional unit pools must be non-empty");
        FuPool {
            kind,
            free_at: vec![0; count as usize],
            last_user: vec![NO_INSTR; count as usize],
            issued: 0,
        }
    }

    /// The pool's unit kind.
    pub fn kind(&self) -> FuKind {
        self.kind
    }

    /// Earliest cycle at which some unit is free.
    pub fn earliest_free(&self) -> u64 {
        *self.free_at.iter().min().expect("non-empty pool")
    }

    /// Whether a unit is free at `cycle`.
    pub fn available_at(&self, cycle: u64) -> bool {
        self.free_at.iter().any(|&f| f <= cycle)
    }

    /// Acquires the earliest-free unit at `cycle` for `instr`, occupying it
    /// for `occupancy` cycles starting when it becomes available.
    pub fn acquire(&mut self, cycle: u64, occupancy: u64, instr: InstrIdx) -> FuGrant {
        let (idx, &free_at) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, &f)| f)
            .expect("non-empty pool");
        let start = free_at.max(cycle);
        let last_user = self.last_user[idx];
        self.free_at[idx] = start + occupancy;
        self.last_user[idx] = instr;
        self.issued += 1;
        FuGrant {
            ready_at: start,
            last_user,
        }
    }

    /// Operations issued through this pool so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

/// The full set of functional-unit pools of a core.
#[derive(Debug, Clone)]
pub struct FuSet {
    pools: [FuPool; 5],
}

impl FuSet {
    /// Builds the pools from a configuration.
    pub fn new(arch: &crate::MicroArch) -> Self {
        FuSet {
            pools: [
                FuPool::new(FuKind::IntAlu, arch.int_alu),
                FuPool::new(FuKind::IntMultDiv, arch.int_mult_div),
                FuPool::new(FuKind::FpAlu, arch.fp_alu),
                FuPool::new(FuKind::FpMultDiv, arch.fp_mult_div),
                FuPool::new(FuKind::RdWrPort, arch.rd_wr_ports),
            ],
        }
    }

    /// Which unit kind executes the given op class.
    pub fn kind_for(op: OpClass) -> FuKind {
        match op {
            OpClass::IntAlu
            | OpClass::BranchCond
            | OpClass::BranchUncond
            | OpClass::Call
            | OpClass::Ret => FuKind::IntAlu,
            OpClass::IntMult | OpClass::IntDiv => FuKind::IntMultDiv,
            OpClass::FpAlu => FuKind::FpAlu,
            OpClass::FpMult | OpClass::FpDiv => FuKind::FpMultDiv,
            OpClass::Load | OpClass::Store => FuKind::RdWrPort,
        }
    }

    /// Occupancy of the unit for one op: 1 cycle when pipelined, the full
    /// latency when not.
    pub fn occupancy(op: OpClass) -> u64 {
        if op.unpipelined() {
            op.exec_latency()
        } else {
            1
        }
    }

    /// The pool for a unit kind.
    pub fn pool(&self, kind: FuKind) -> &FuPool {
        &self.pools[Self::index(kind)]
    }

    /// Mutable access to the pool for a unit kind.
    pub fn pool_mut(&mut self, kind: FuKind) -> &mut FuPool {
        &mut self.pools[Self::index(kind)]
    }

    fn index(kind: FuKind) -> usize {
        match kind {
            FuKind::IntAlu => 0,
            FuKind::IntMultDiv => 1,
            FuKind::FpAlu => 2,
            FuKind::FpMultDiv => 3,
            FuKind::RdWrPort => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_when_idle_has_no_contention() {
        let mut p = FuPool::new(FuKind::IntAlu, 2);
        let g = p.acquire(5, 1, 0);
        assert_eq!(g.ready_at, 5);
        assert_eq!(g.last_user, NO_INSTR);
    }

    #[test]
    fn acquire_when_busy_waits_and_names_releaser() {
        let mut p = FuPool::new(FuKind::IntMultDiv, 1);
        p.acquire(0, 12, 7); // unpipelined divide by instr 7
        let g = p.acquire(1, 12, 8);
        assert_eq!(g.ready_at, 12);
        assert_eq!(g.last_user, 7);
    }

    #[test]
    fn two_units_serve_two_ops_in_parallel() {
        let mut p = FuPool::new(FuKind::FpAlu, 2);
        let a = p.acquire(0, 1, 0);
        let b = p.acquire(0, 1, 1);
        assert_eq!(a.ready_at, 0);
        assert_eq!(b.ready_at, 0);
        assert_eq!(b.last_user, NO_INSTR);
    }

    #[test]
    fn kind_mapping_covers_all_ops() {
        assert_eq!(FuSet::kind_for(OpClass::Load), FuKind::RdWrPort);
        assert_eq!(FuSet::kind_for(OpClass::Ret), FuKind::IntAlu);
        assert_eq!(FuSet::kind_for(OpClass::FpDiv), FuKind::FpMultDiv);
        assert_eq!(FuSet::occupancy(OpClass::IntDiv), 12);
        assert_eq!(FuSet::occupancy(OpClass::IntMult), 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_units_panics() {
        let _ = FuPool::new(FuKind::IntAlu, 0);
    }
}
