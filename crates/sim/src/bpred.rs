//! Tournament branch predictor (local + global + choice), branch target
//! buffer, and return address stack — the front-end prediction structures of
//! paper Tables 1 and 4.

use crate::config::BpKind;
use crate::isa::{Instruction, OpClass};

/// A table of 2-bit saturating counters.
#[derive(Debug, Clone)]
struct CounterTable {
    counters: Vec<u8>,
    mask: u64,
}

impl CounterTable {
    fn new(entries: u32) -> Self {
        assert!(entries.is_power_of_two() && entries > 0);
        CounterTable {
            counters: vec![1; entries as usize], // weakly not-taken
            mask: (entries - 1) as u64,
        }
    }

    fn predict(&self, index: u64) -> bool {
        self.counters[(index & self.mask) as usize] >= 2
    }

    fn update(&mut self, index: u64, taken: bool) {
        let c = &mut self.counters[(index & self.mask) as usize];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

/// Prediction outcome for one fetched branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction (always `true` for unconditional transfers that
    /// hit in the BTB/RAS).
    pub taken: bool,
    /// Whether the predicted target was available (BTB/RAS hit).
    pub target_known: bool,
}

/// The tournament branch prediction unit.
///
/// Local component: per-PC 2-bit counters. Global component: 2-bit counters
/// indexed by the global history register. Choice: 2-bit counters indexed by
/// history, selecting which component to trust. Targets come from a tagged
/// direct-mapped BTB; returns from a circular RAS.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    kind: BpKind,
    local: CounterTable,
    global: CounterTable,
    choice: CounterTable,
    history: u64,
    btb_tags: Vec<u64>,
    btb_mask: u64,
    ras: Vec<u64>,
    ras_top: usize,
    ras_depth: usize,
    lookups: u64,
    cond_mispredicts: u64,
    btb_misses: u64,
}

impl BranchPredictor {
    /// Builds a predictor from the configuration.
    pub fn new(arch: &crate::MicroArch) -> Self {
        BranchPredictor {
            kind: arch.bp_kind,
            local: CounterTable::new(arch.local_predictor),
            global: CounterTable::new(arch.global_predictor),
            choice: CounterTable::new(arch.choice_predictor),
            history: 0,
            btb_tags: vec![u64::MAX; arch.btb_entries as usize],
            btb_mask: (arch.btb_entries - 1) as u64,
            ras: vec![0; arch.ras_entries as usize],
            ras_top: 0,
            ras_depth: 0,
            lookups: 0,
            cond_mispredicts: 0,
            btb_misses: 0,
        }
    }

    fn btb_index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ (pc >> 13)) & self.btb_mask) as usize
    }

    fn btb_lookup(&self, pc: u64) -> bool {
        self.btb_tags[self.btb_index(pc)] == pc
    }

    fn btb_insert(&mut self, pc: u64) {
        let idx = self.btb_index(pc);
        self.btb_tags[idx] = pc;
    }

    /// Predicts a fetched control instruction and updates predictor state.
    ///
    /// Returns the prediction; the caller compares it with the trace's
    /// actual outcome to decide whether a misprediction occurred. The
    /// predictor is updated with the *actual* outcome immediately, which is
    /// the standard trace-driven approximation of resolve-time repair.
    pub fn predict_and_update(&mut self, instr: &Instruction) -> Prediction {
        self.lookups += 1;
        match instr.op {
            OpClass::BranchCond => {
                let pc_idx = instr.pc >> 2;
                let taken = match self.kind {
                    BpKind::Tournament => {
                        let local_pred = self.local.predict(pc_idx);
                        let global_pred = self.global.predict(self.history);
                        let use_global = self.choice.predict(self.history);
                        let taken = if use_global { global_pred } else { local_pred };
                        // Choice updates toward whichever component was right.
                        if global_pred != local_pred {
                            self.choice.update(self.history, global_pred == instr.taken);
                        }
                        self.local.update(pc_idx, instr.taken);
                        self.global.update(self.history, instr.taken);
                        taken
                    }
                    BpKind::GShare => {
                        let idx = pc_idx ^ self.history;
                        let taken = self.global.predict(idx);
                        self.global.update(idx, instr.taken);
                        taken
                    }
                    BpKind::Bimodal => {
                        let taken = self.local.predict(pc_idx);
                        self.local.update(pc_idx, instr.taken);
                        taken
                    }
                };
                self.history = (self.history << 1) | instr.taken as u64;
                let target_known = if instr.taken {
                    let hit = self.btb_lookup(instr.pc);
                    if !hit {
                        self.btb_misses += 1;
                        self.btb_insert(instr.pc);
                    }
                    hit
                } else {
                    true // fall-through target is always known
                };
                let correct = taken == instr.taken && (!instr.taken || target_known);
                if !correct {
                    self.cond_mispredicts += 1;
                }
                Prediction {
                    taken,
                    target_known,
                }
            }
            OpClass::BranchUncond => {
                let hit = self.btb_lookup(instr.pc);
                if !hit {
                    self.btb_misses += 1;
                    self.btb_insert(instr.pc);
                }
                Prediction {
                    taken: true,
                    target_known: hit,
                }
            }
            OpClass::Call => {
                let hit = self.btb_lookup(instr.pc);
                if !hit {
                    self.btb_misses += 1;
                    self.btb_insert(instr.pc);
                }
                // Push the return address.
                self.ras_top = (self.ras_top + 1) % self.ras.len();
                self.ras[self.ras_top] = instr.pc + 4;
                self.ras_depth = (self.ras_depth + 1).min(self.ras.len());
                Prediction {
                    taken: true,
                    target_known: hit,
                }
            }
            OpClass::Ret => {
                let predicted = if self.ras_depth > 0 {
                    let t = self.ras[self.ras_top];
                    self.ras_top = (self.ras_top + self.ras.len() - 1) % self.ras.len();
                    self.ras_depth -= 1;
                    Some(t)
                } else {
                    None
                };
                let target_known = predicted == Some(instr.target);
                Prediction {
                    taken: true,
                    target_known,
                }
            }
            _ => Prediction {
                taken: false,
                target_known: true,
            },
        }
    }

    /// Whether the prediction was fully correct for this instruction.
    pub fn correct(pred: Prediction, instr: &Instruction) -> bool {
        match instr.op {
            OpClass::BranchCond => pred.taken == instr.taken && (!instr.taken || pred.target_known),
            OpClass::BranchUncond | OpClass::Call | OpClass::Ret => pred.target_known,
            _ => true,
        }
    }

    /// Total prediction lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Conditional-branch direction/target mispredictions.
    pub fn cond_mispredicts(&self) -> u64 {
        self.cond_mispredicts
    }

    /// BTB misses on taken control transfers.
    pub fn btb_misses(&self) -> u64 {
        self.btb_misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Reg;
    use crate::MicroArch;

    fn cond(pc: u64, taken: bool) -> Instruction {
        Instruction::branch(pc, Reg::int(1), taken, pc + 64)
    }

    #[test]
    fn learns_a_biased_branch() {
        let mut bp = BranchPredictor::new(&MicroArch::baseline());
        let mut wrong = 0;
        for i in 0..200 {
            let instr = cond(0x100, true);
            let p = bp.predict_and_update(&instr);
            if !BranchPredictor::correct(p, &instr) && i > 10 {
                wrong += 1;
            }
        }
        assert_eq!(wrong, 0, "a fully biased branch must be learned");
    }

    #[test]
    fn learns_alternating_pattern_via_global_history() {
        let mut bp = BranchPredictor::new(&MicroArch::baseline());
        let mut late_wrong = 0;
        for i in 0..400u32 {
            let instr = cond(0x200, i % 2 == 0);
            let p = bp.predict_and_update(&instr);
            if !BranchPredictor::correct(p, &instr) && i > 100 {
                late_wrong += 1;
            }
        }
        assert!(
            late_wrong < 10,
            "global history should capture alternation, got {late_wrong} late mispredicts"
        );
    }

    #[test]
    fn ras_predicts_matched_call_return() {
        let mut bp = BranchPredictor::new(&MicroArch::baseline());
        let call = Instruction {
            pc: 0x100,
            op: OpClass::Call,
            srcs: [None, None],
            dst: None,
            mem_addr: 0,
            taken: true,
            target: 0x1000,
        };
        bp.predict_and_update(&call); // warms BTB too
        let ret = Instruction {
            pc: 0x1004,
            op: OpClass::Ret,
            srcs: [None, None],
            dst: None,
            mem_addr: 0,
            taken: true,
            target: 0x104,
        };
        let p = bp.predict_and_update(&ret);
        assert!(p.target_known, "RAS must predict the return target");
    }

    #[test]
    fn ras_overflow_mispredicts_deep_returns() {
        let mut arch = MicroArch::baseline();
        arch.ras_entries = 2;
        let mut bp = BranchPredictor::new(&arch);
        // Three nested calls overflow a 2-entry RAS; the outermost return
        // must mispredict.
        for d in 0..3u64 {
            let call = Instruction {
                pc: 0x100 + d * 0x100,
                op: OpClass::Call,
                srcs: [None, None],
                dst: None,
                mem_addr: 0,
                taken: true,
                target: 0x1000,
            };
            bp.predict_and_update(&call);
        }
        let mut ok = 0;
        for d in (0..3u64).rev() {
            let ret = Instruction {
                pc: 0x2000 + d,
                op: OpClass::Ret,
                srcs: [None, None],
                dst: None,
                mem_addr: 0,
                taken: true,
                target: 0x100 + d * 0x100 + 4,
            };
            let p = bp.predict_and_update(&ret);
            if p.target_known {
                ok += 1;
            }
        }
        assert!(ok < 3, "an overflowed RAS cannot predict all returns");
    }

    #[test]
    fn btb_first_encounter_misses() {
        let mut bp = BranchPredictor::new(&MicroArch::baseline());
        let j = Instruction {
            pc: 0x300,
            op: OpClass::BranchUncond,
            srcs: [None, None],
            dst: None,
            mem_addr: 0,
            taken: true,
            target: 0x500,
        };
        let p1 = bp.predict_and_update(&j);
        assert!(!p1.target_known);
        let p2 = bp.predict_and_update(&j);
        assert!(p2.target_known);
        assert_eq!(bp.btb_misses(), 1);
    }

    #[test]
    fn algorithm_variants_rank_as_expected() {
        // At equal storage on patterned branches, tournament should not be
        // worse than gshare, and gshare learns history patterns bimodal
        // cannot (alternating branches defeat per-PC counters).
        use crate::config::BpKind;
        let run = |kind: BpKind| {
            let mut arch = MicroArch::baseline();
            arch.bp_kind = kind;
            let mut bp = BranchPredictor::new(&arch);
            let mut wrong = 0;
            for i in 0..2_000u32 {
                // One static branch alternating taken/not-taken: per-PC
                // 2-bit counters cannot learn it, history-indexed tables can.
                let instr = cond(0x400, i % 2 == 0);
                let p = bp.predict_and_update(&instr);
                if i > 200 && !BranchPredictor::correct(p, &instr) {
                    wrong += 1;
                }
            }
            wrong
        };
        let bimodal = run(BpKind::Bimodal);
        let gshare = run(BpKind::GShare);
        let tournament = run(BpKind::Tournament);
        assert!(
            gshare < bimodal,
            "gshare {gshare} must beat bimodal {bimodal} on patterns"
        );
        assert!(
            tournament <= gshare + 20,
            "tournament {tournament} must be competitive with gshare {gshare}"
        );
    }

    #[test]
    fn small_local_table_aliases_more() {
        // Many distinct biased branches: a small predictor aliases and
        // mispredicts more than a big one.
        let run = |local: u32| {
            let mut arch = MicroArch::baseline();
            arch.local_predictor = local;
            arch.global_predictor = 2048;
            arch.choice_predictor = 2048;
            let mut bp = BranchPredictor::new(&arch);
            for i in 0..20_000u64 {
                let pc = 0x1000 + (i % 3001) * 4;
                let taken = pc % 8 < 5 && (i * 2654435761) % 7 < 5;
                let instr = cond(pc, taken);
                bp.predict_and_update(&instr);
            }
            bp.cond_mispredicts()
        };
        let small = run(512);
        let big = run(8192);
        assert!(
            small >= big,
            "smaller predictor should not mispredict less: {small} vs {big}"
        );
    }
}
