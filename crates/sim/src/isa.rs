//! A compact synthetic micro-op ISA.
//!
//! The simulator is trace-driven: a workload is a sequence of
//! [`Instruction`]s carrying their *actual* behaviour (branch direction and
//! target, effective memory address), so no functional emulation is needed —
//! only timing. This mirrors how the paper extracts microexecutions from
//! gem5 rather than re-executing binaries.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Operation classes, matching the functional-unit classes of Table 1/4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Simple integer ALU operation (1 cycle).
    IntAlu,
    /// Integer multiply (pipelined, 3 cycles).
    IntMult,
    /// Integer divide (unpipelined, 12 cycles).
    IntDiv,
    /// Floating-point add/compare (pipelined, 2 cycles).
    FpAlu,
    /// Floating-point multiply (pipelined, 4 cycles).
    FpMult,
    /// Floating-point divide (unpipelined, 12 cycles).
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    BranchCond,
    /// Unconditional direct jump.
    BranchUncond,
    /// Function call (pushes the return address stack).
    Call,
    /// Function return (pops the return address stack).
    Ret,
}

impl OpClass {
    /// Whether this op reads or writes memory.
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Whether this op is any kind of control transfer.
    pub fn is_branch(self) -> bool {
        matches!(
            self,
            OpClass::BranchCond | OpClass::BranchUncond | OpClass::Call | OpClass::Ret
        )
    }

    /// Execution latency on its functional unit, excluding memory time.
    pub fn exec_latency(self) -> u64 {
        match self {
            OpClass::IntAlu
            | OpClass::BranchCond
            | OpClass::BranchUncond
            | OpClass::Call
            | OpClass::Ret => 1,
            OpClass::IntMult => 3,
            OpClass::IntDiv => 12,
            OpClass::FpAlu => 2,
            OpClass::FpMult => 4,
            OpClass::FpDiv => 12,
            OpClass::Load | OpClass::Store => 1, // address generation; cache adds the rest
        }
    }

    /// Whether the functional unit is occupied for the whole latency
    /// (unpipelined) rather than accepting a new op every cycle.
    pub fn unpipelined(self) -> bool {
        matches!(self, OpClass::IntDiv | OpClass::FpDiv)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "int_alu",
            OpClass::IntMult => "int_mult",
            OpClass::IntDiv => "int_div",
            OpClass::FpAlu => "fp_alu",
            OpClass::FpMult => "fp_mult",
            OpClass::FpDiv => "fp_div",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::BranchCond => "br_cond",
            OpClass::BranchUncond => "br_uncond",
            OpClass::Call => "call",
            OpClass::Ret => "ret",
        };
        f.write_str(s)
    }
}

/// Architectural register class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegClass {
    /// Integer register file.
    Int,
    /// Floating-point register file.
    Fp,
}

/// An architectural register reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Reg {
    /// Register class.
    pub class: RegClass,
    /// Index within the class (0..[`crate::config::ARCH_REGS`]).
    pub idx: u8,
}

impl Reg {
    /// An integer register.
    pub fn int(idx: u8) -> Self {
        Reg {
            class: RegClass::Int,
            idx,
        }
    }

    /// A floating-point register.
    pub fn fp(idx: u8) -> Self {
        Reg {
            class: RegClass::Fp,
            idx,
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "x{}", self.idx),
            RegClass::Fp => write!(f, "f{}", self.idx),
        }
    }
}

/// One dynamic instruction of a trace, with its actual runtime behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Instruction {
    /// Program counter.
    pub pc: u64,
    /// Operation class.
    pub op: OpClass,
    /// Up to two source registers.
    pub srcs: [Option<Reg>; 2],
    /// Destination register, if any.
    pub dst: Option<Reg>,
    /// Effective address for loads/stores (ignored otherwise).
    pub mem_addr: u64,
    /// Actual branch outcome (ignored for non-branches; unconditional
    /// transfers are always taken).
    pub taken: bool,
    /// Actual branch target (ignored for non-branches).
    pub target: u64,
}

impl Instruction {
    /// A non-memory, non-branch op with the given registers.
    pub fn op(pc: u64, op: OpClass, srcs: [Option<Reg>; 2], dst: Option<Reg>) -> Self {
        Instruction {
            pc,
            op,
            srcs,
            dst,
            mem_addr: 0,
            taken: false,
            target: 0,
        }
    }

    /// A load from `addr` into `dst`.
    pub fn load(pc: u64, addr: u64, base: Reg, dst: Reg) -> Self {
        Instruction {
            pc,
            op: OpClass::Load,
            srcs: [Some(base), None],
            dst: Some(dst),
            mem_addr: addr,
            taken: false,
            target: 0,
        }
    }

    /// A store of `data` to `addr`.
    pub fn store(pc: u64, addr: u64, base: Reg, data: Reg) -> Self {
        Instruction {
            pc,
            op: OpClass::Store,
            srcs: [Some(base), Some(data)],
            dst: None,
            mem_addr: addr,
            taken: false,
            target: 0,
        }
    }

    /// A conditional branch with its actual outcome and target.
    pub fn branch(pc: u64, src: Reg, taken: bool, target: u64) -> Self {
        Instruction {
            pc,
            op: OpClass::BranchCond,
            srcs: [Some(src), None],
            dst: None,
            mem_addr: 0,
            taken,
            target,
        }
    }

    /// Whether the instruction actually transfers control.
    pub fn control_taken(&self) -> bool {
        match self.op {
            OpClass::BranchCond => self.taken,
            OpClass::BranchUncond | OpClass::Call | OpClass::Ret => true,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_class_predicates() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::IntAlu.is_mem());
        assert!(OpClass::BranchCond.is_branch());
        assert!(OpClass::Call.is_branch());
        assert!(!OpClass::FpMult.is_branch());
    }

    #[test]
    fn latencies_are_positive_and_divs_unpipelined() {
        for op in [
            OpClass::IntAlu,
            OpClass::IntMult,
            OpClass::IntDiv,
            OpClass::FpAlu,
            OpClass::FpMult,
            OpClass::FpDiv,
            OpClass::Load,
            OpClass::Store,
            OpClass::BranchCond,
        ] {
            assert!(op.exec_latency() >= 1);
        }
        assert!(OpClass::IntDiv.unpipelined());
        assert!(OpClass::FpDiv.unpipelined());
        assert!(!OpClass::IntMult.unpipelined());
    }

    #[test]
    fn constructors_fill_fields() {
        let ld = Instruction::load(0x40, 0x1000, Reg::int(1), Reg::int(2));
        assert_eq!(ld.op, OpClass::Load);
        assert_eq!(ld.mem_addr, 0x1000);
        let br = Instruction::branch(0x44, Reg::int(2), true, 0x80);
        assert!(br.control_taken());
        let nb = Instruction::branch(0x48, Reg::int(2), false, 0x80);
        assert!(!nb.control_taken());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Reg::int(3).to_string(), "x3");
        assert_eq!(Reg::fp(7).to_string(), "f7");
        assert_eq!(OpClass::Load.to_string(), "load");
    }
}
