//! Back-end resource pools with a scoreboard.
//!
//! Every pool entry has a stable ID; the pool remembers, per entry, which
//! instruction most recently *released* it. When a stalled instruction
//! finally obtains an entry, the recorded releaser is exactly the paper's
//! scoreboard information used to place the rename→rename resource-usage
//! edge (Section 4.1).

use crate::trace::{InstrIdx, NO_INSTR};
use std::collections::VecDeque;

/// A fixed-capacity pool of identical entries (ROB, IQ, LQ, SQ, or a
/// physical register file's free list) with release tracking.
#[derive(Debug, Clone)]
pub struct Pool {
    free: VecDeque<u32>,
    last_releaser: Vec<InstrIdx>,
    holder: Vec<InstrIdx>,
    capacity: u32,
}

/// A granted pool entry together with its scoreboard provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// The entry ID obtained.
    pub entry: u32,
    /// The instruction that last released this entry ([`NO_INSTR`] when the
    /// entry had never been used).
    pub last_releaser: InstrIdx,
}

impl Pool {
    /// Creates a pool with `capacity` entries, all free.
    pub fn new(capacity: u32) -> Self {
        Pool {
            free: (0..capacity).collect(),
            last_releaser: vec![NO_INSTR; capacity as usize],
            holder: vec![NO_INSTR; capacity as usize],
            capacity,
        }
    }

    /// Total number of entries.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Currently free entries.
    pub fn available(&self) -> u32 {
        self.free.len() as u32
    }

    /// Currently held entries.
    pub fn in_use(&self) -> u32 {
        self.capacity - self.available()
    }

    /// Whether at least `n` entries are free.
    pub fn has(&self, n: u32) -> bool {
        self.available() >= n
    }

    /// Allocates one entry for `instr`, FIFO over the free list so the
    /// releaser recorded is the oldest (the one whose release unblocked a
    /// stalled consumer).
    pub fn alloc(&mut self, instr: InstrIdx) -> Option<Grant> {
        let entry = self.free.pop_front()?;
        let last_releaser = self.last_releaser[entry as usize];
        self.holder[entry as usize] = instr;
        Some(Grant {
            entry,
            last_releaser,
        })
    }

    /// Releases `entry`, recording `instr` as the releaser.
    ///
    /// # Panics
    ///
    /// Panics if the entry is not currently held (double free).
    pub fn release(&mut self, entry: u32, instr: InstrIdx) {
        assert!(
            self.holder[entry as usize] != NO_INSTR,
            "double free of pool entry {entry}"
        );
        self.holder[entry as usize] = NO_INSTR;
        self.last_releaser[entry as usize] = instr;
        self.free.push_back(entry);
    }

    /// Entries currently held according to the per-entry scoreboard.
    /// Equals [`Pool::in_use`] exactly when the free list and the holder
    /// scoreboard agree — the conservation invariant the `CheckedCore`
    /// mode audits every cycle.
    pub fn held_count(&self) -> u32 {
        self.holder.iter().filter(|&&h| h != NO_INSTR).count() as u32
    }

    /// The instruction currently holding `entry`, if any.
    pub fn holder(&self, entry: u32) -> Option<InstrIdx> {
        let h = self.holder[entry as usize];
        (h != NO_INSTR).then_some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_release_cycle() {
        let mut p = Pool::new(2);
        assert_eq!(p.available(), 2);
        let a = p.alloc(0).unwrap();
        let b = p.alloc(1).unwrap();
        assert_eq!(a.last_releaser, NO_INSTR);
        assert_eq!(b.last_releaser, NO_INSTR);
        assert!(p.alloc(2).is_none());
        assert_eq!(p.in_use(), 2);
        p.release(a.entry, 0);
        let c = p.alloc(2).unwrap();
        assert_eq!(c.entry, a.entry);
        assert_eq!(c.last_releaser, 0, "scoreboard must name the releaser");
    }

    #[test]
    fn fifo_free_list_names_oldest_releaser() {
        let mut p = Pool::new(3);
        let g: Vec<_> = (0..3).map(|i| p.alloc(i).unwrap()).collect();
        p.release(g[1].entry, 1);
        p.release(g[0].entry, 0);
        // Next alloc takes the first-released entry (from instr 1).
        let n = p.alloc(10).unwrap();
        assert_eq!(n.last_releaser, 1);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut p = Pool::new(1);
        let g = p.alloc(0).unwrap();
        p.release(g.entry, 0);
        p.release(g.entry, 0);
    }

    #[test]
    fn holder_query() {
        let mut p = Pool::new(1);
        let g = p.alloc(7).unwrap();
        assert_eq!(p.holder(g.entry), Some(7));
        p.release(g.entry, 7);
        assert_eq!(p.holder(g.entry), None);
    }
}
