//! Per-cycle pipeline invariant checking — the **`CheckedCore` mode**.
//!
//! The simulator's correctness contract (stage ordering, in-order commit,
//! bounded occupancies, free-list conservation, memory-order replay gates)
//! is normally only exercised by tests. Enabling this mode via
//! [`OooCore::with_invariant_checks`](crate::OooCore::with_invariant_checks)
//! re-verifies the contract *while the pipeline runs*, once per simulated
//! cycle, and turns the first violation into a typed
//! [`SimError::InvariantViolation`] so harnesses can report it as data.
//!
//! The mode is flag-gated at runtime: a core built without it pays one
//! predictable `Option` branch per cycle and nothing else, keeping the
//! campaign hot path at full speed.
//!
//! [`CheckConfig::fault`] supports *intentional* invariant breaks (e.g. an
//! off-by-one in the checker's believed ROB capacity) so the verification
//! harness can prove the checker actually fires — a checker that never
//! trips is indistinguishable from one that checks nothing.

use crate::error::SimError;
use crate::pipeline::{Aux, MEMDEP_REPLAY};
use crate::resources::Pool;
use crate::trace::{Cycle, InstrEvents, InstrIdx, ResourceKind};

/// An intentionally injected invariant break for fault-injection testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// The checker believes the ROB holds one entry fewer than the core
    /// actually allocates, so the first cycle that fills the ROB trips the
    /// `occupancy/ROB` invariant.
    RobCapacityOffByOne,
}

impl InjectedFault {
    /// Stable machine-readable name (CLI `inject=` value).
    pub fn name(self) -> &'static str {
        match self {
            InjectedFault::RobCapacityOffByOne => "rob-off-by-one",
        }
    }

    /// Parses a fault name as accepted by `archx verify inject=NAME`.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "rob-off-by-one" => Ok(InjectedFault::RobCapacityOffByOne),
            other => Err(format!(
                "unknown injected fault `{other}` (expected rob-off-by-one)"
            )),
        }
    }
}

/// Configuration of the `CheckedCore` mode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckConfig {
    /// Intentional invariant break, if any (see [`InjectedFault`]).
    pub fault: Option<InjectedFault>,
}

/// The per-run checker state. Owned by `OooCore::run_in` when checks are
/// enabled; one `end_of_cycle` call per main-loop iteration.
#[derive(Debug)]
pub(crate) struct InvariantChecker {
    fault: Option<InjectedFault>,
    /// Cycle observed by the previous `end_of_cycle` call (the main loop
    /// must advance time strictly between iterations, or the watchdog's
    /// no-progress arithmetic breaks).
    prev_cycle: Option<Cycle>,
    /// Commit cycle of the most recently committed instruction.
    last_commit_c: Cycle,
    /// Next instruction expected to commit (in-order commit).
    next_commit: InstrIdx,
}

impl InvariantChecker {
    pub(crate) fn new(cfg: CheckConfig) -> Self {
        InvariantChecker {
            fault: cfg.fault,
            prev_cycle: None,
            last_commit_c: 0,
            next_commit: 0,
        }
    }

    /// The capacity the checker holds the pool to — the real capacity
    /// unless a fault was injected for this resource.
    fn believed_capacity(&self, pool: &Pool, kind: ResourceKind) -> u32 {
        match self.fault {
            Some(InjectedFault::RobCapacityOffByOne) if kind == ResourceKind::Rob => {
                pool.capacity().saturating_sub(1)
            }
            _ => pool.capacity(),
        }
    }

    #[cold]
    fn violation(&self, check: &str, cycle: Cycle, message: String) -> SimError {
        archx_telemetry::counter_add(&format!("verify/violation/{check}"), 1);
        SimError::InvariantViolation {
            check: check.to_string(),
            cycle,
            message,
        }
    }

    /// Verifies every per-cycle invariant at the end of one main-loop
    /// iteration. `committed` is the range of instructions committed this
    /// cycle; `pools` lists the six rename-checked resource pools.
    pub(crate) fn end_of_cycle(
        &mut self,
        cycle: Cycle,
        committed: std::ops::Range<InstrIdx>,
        events: &[InstrEvents],
        aux: &[Aux],
        pools: [(&Pool, ResourceKind); 6],
    ) -> Result<(), SimError> {
        // Watchdog monotonicity: simulated time must advance strictly
        // between iterations (the deadlock watchdog measures no-commit
        // intervals in this clock).
        if let Some(prev) = self.prev_cycle {
            if cycle <= prev {
                return Err(self.violation(
                    "clock/monotone",
                    cycle,
                    format!("cycle {cycle} did not advance past {prev}"),
                ));
            }
        }
        self.prev_cycle = Some(cycle);

        // Occupancy bounds and free-list conservation.
        for (pool, kind) in pools {
            let cap = self.believed_capacity(pool, kind);
            if pool.in_use() > cap {
                return Err(self.violation(
                    &format!("occupancy/{kind}"),
                    cycle,
                    format!("{kind} holds {} entries, capacity {cap}", pool.in_use()),
                ));
            }
            if pool.available() + pool.in_use() != pool.capacity()
                || pool.held_count() != pool.in_use()
            {
                return Err(self.violation(
                    &format!("free_list/{kind}"),
                    cycle,
                    format!(
                        "{kind} free list lost entries: {} free + {} held != {} \
                         (scoreboard holds {})",
                        pool.available(),
                        pool.in_use(),
                        pool.capacity(),
                        pool.held_count()
                    ),
                ));
            }
        }

        // Commit-side invariants for everything committed this cycle.
        for j in committed {
            if j != self.next_commit {
                return Err(self.violation(
                    "commit/order",
                    cycle,
                    format!("instruction {j} committed before {}", self.next_commit),
                ));
            }
            self.next_commit = j + 1;
            let ev = &events[j as usize];
            if ev.c != cycle {
                return Err(self.violation(
                    "commit/cycle",
                    cycle,
                    format!("instruction {j} stamped commit {} in cycle {cycle}", ev.c),
                ));
            }
            if ev.c < self.last_commit_c {
                return Err(self.violation(
                    "commit/monotone",
                    cycle,
                    format!(
                        "instruction {j} committed at {} after cycle {}",
                        ev.c, self.last_commit_c
                    ),
                ));
            }
            self.last_commit_c = ev.c;
            // Stage ordering within the instruction (Figure 7 chain).
            let ordered = ev.f1 <= ev.f2
                && ev.f2 <= ev.f
                && ev.f < ev.dc
                && ev.dc < ev.r
                && ev.r < ev.dp
                && ev.dp <= ev.i
                && ev.i <= ev.m
                && ev.m < ev.p
                && ev.p < ev.c;
            if !ordered {
                return Err(self.violation(
                    "stage_order",
                    cycle,
                    format!("instruction {j} has out-of-order stage times {ev:?}"),
                ));
            }
            // Memory-order replay gate: a load caught by a resolving store
            // may not commit before the store's access plus the replay
            // penalty, and never before its recorded gate.
            let gate = aux[j as usize].commit_gate;
            if gate > 0 && ev.c <= gate {
                return Err(self.violation(
                    "memdep_replay",
                    cycle,
                    format!(
                        "instruction {j} committed at {} inside its replay gate {gate}",
                        ev.c
                    ),
                ));
            }
            if let Some(s) = ev.mem_dep_violation {
                let sm = events[s as usize].m;
                if sm == Cycle::MAX || ev.c <= sm + MEMDEP_REPLAY {
                    return Err(self.violation(
                        "memdep_order",
                        cycle,
                        format!(
                            "load {j} (commit {}) outran the replay of store {s} (M at {sm})",
                            ev.c
                        ),
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MicroArch;
    use crate::pipeline::OooCore;
    use crate::trace_gen;

    #[test]
    fn checked_run_matches_unchecked_run() {
        let instrs = trace_gen::mixed_workload(3_000, 11);
        let plain = OooCore::new(MicroArch::baseline())
            .run(&instrs)
            .expect("simulates");
        let checked = OooCore::checked(MicroArch::baseline())
            .run(&instrs)
            .expect("clean run has no violations");
        assert_eq!(plain.trace, checked.trace);
        assert_eq!(plain.stats, checked.stats);
    }

    #[test]
    fn clean_runs_pass_across_trace_shapes() {
        for instrs in [
            trace_gen::linear_int_chain(1_000),
            trace_gen::pointer_chase(1_500, 8 << 20, 3),
            trace_gen::random_branches(1_500, 9),
            trace_gen::store_load_pairs(800),
            trace_gen::divide_heavy(400),
        ] {
            OooCore::checked(MicroArch::baseline())
                .run(&instrs)
                .expect("invariants hold on a healthy pipeline");
        }
    }

    #[test]
    fn injected_rob_off_by_one_is_caught() {
        // A serial ALU chain with the ROB as the binding resource (IQ and
        // register file both larger) keeps the ROB full, so the believed
        // capacity of (rob_entries - 1) must be exceeded.
        let mut arch = MicroArch::baseline();
        arch.rob_entries = 32;
        arch.iq_entries = 48;
        arch.int_rf = 128;
        let instrs = trace_gen::linear_int_chain(2_000);
        let err = OooCore::new(arch)
            .with_invariant_checks(CheckConfig {
                fault: Some(InjectedFault::RobCapacityOffByOne),
            })
            .run(&instrs)
            .expect_err("injected fault must trip the checker");
        match &err {
            SimError::InvariantViolation { check, .. } => {
                assert_eq!(check, "occupancy/ROB");
            }
            other => panic!("expected an invariant violation, got {other}"),
        }
        assert_eq!(err.tag(), "invariant");
        assert!(!err.retryable(), "violations are deterministic properties");
    }

    #[test]
    fn fault_names_round_trip() {
        let f = InjectedFault::RobCapacityOffByOne;
        assert_eq!(InjectedFault::parse(f.name()), Ok(f));
        assert!(InjectedFault::parse("bit-flip").is_err());
    }
}
