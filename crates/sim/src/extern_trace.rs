//! External microexecution-trace interchange.
//!
//! The ArchExplorer algorithm is simulator-agnostic: anything that can
//! produce per-instruction event times and resource-dependence records can
//! drive the DEG analysis. This module defines a line-oriented text format
//! for that record so externally generated traces — e.g. from a gem5
//! `O3PipeView`-style dump post-processed into this shape — can be fed to
//! the analysis without using the built-in simulator, and traces from the
//! built-in simulator can be exported for other tools.
//!
//! ## Format
//!
//! One record per committed instruction, fields separated by single
//! spaces, in program order:
//!
//! ```text
//! I <idx> <op> <pc> f1=<c> f2=<c> f=<c> dc=<c> r=<c> dp=<c> i=<c> m=<c> p=<c> c=<c> [flags...]
//! ```
//!
//! where `<op>` is an [`OpClass`] name (`int_alu`, `load`, `br_cond`, …)
//! and the optional flags are:
//!
//! * `rs=<RES>:<idx>` — rename stall on resource `RES` (`ROB`, `IQ`, `LQ`,
//!   `SQ`, `IntRF`, `FpRF`) resolved by instruction `<idx>`'s release; may
//!   repeat;
//! * `fu=<FU>:<idx>` — waited for functional unit `FU` (`IntALU`,
//!   `IntMultDiv`, `FpALU`, `FpMultDiv`, `RdWrPort`) released by `<idx>`;
//! * `dd=<idx>` — true data dependence on in-flight producer `<idx>`; may
//!   repeat;
//! * `mp` — this instruction was a mispredicted control transfer;
//! * `rf=<idx>` — first instruction fetched after the squash caused by
//!   `<idx>`;
//! * `fs=<idx>` — fetch-buffer slot released by `<idx>`;
//! * `fb=<idx>` — fetch-bandwidth wait behind `<idx>`;
//! * `mv=<idx>` — memory-order violation against older store `<idx>`;
//! * `im` / `dm` — I-cache / D-cache miss.
//!
//! Lines starting with `#` and blank lines are ignored. A header line
//! `ARCHX-TRACE v1 <n>` is written by the exporter and accepted (not
//! required) by the parser.

use crate::isa::{Instruction, OpClass};
use crate::stats::SimStats;
use crate::trace::{
    Cycle, FuKind, FuWait, InstrEvents, InstrIdx, PipelineTrace, RenameStall, ResourceKind,
    SimResult,
};
use std::fmt::Write as _;

/// Errors produced by the trace parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseTraceError {
    /// A malformed line, with its 1-based line number and a description.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// Record indices were not consecutive from zero.
    BadSequence {
        /// 1-based line number.
        line: usize,
        /// Index found.
        found: u32,
        /// Index expected.
        expected: u32,
    },
    /// The trace contained no records.
    Empty {
        /// Lines scanned (comments, headers and blanks included).
        lines: usize,
    },
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseTraceError::Malformed { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            ParseTraceError::BadSequence {
                line,
                found,
                expected,
            } => write!(f, "line {line}: index {found}, expected {expected}"),
            ParseTraceError::Empty { lines } => {
                write!(f, "trace contains no records ({lines} lines scanned)")
            }
        }
    }
}

impl std::error::Error for ParseTraceError {}

fn op_name(op: OpClass) -> &'static str {
    match op {
        OpClass::IntAlu => "int_alu",
        OpClass::IntMult => "int_mult",
        OpClass::IntDiv => "int_div",
        OpClass::FpAlu => "fp_alu",
        OpClass::FpMult => "fp_mult",
        OpClass::FpDiv => "fp_div",
        OpClass::Load => "load",
        OpClass::Store => "store",
        OpClass::BranchCond => "br_cond",
        OpClass::BranchUncond => "br_uncond",
        OpClass::Call => "call",
        OpClass::Ret => "ret",
    }
}

fn op_from(name: &str) -> Option<OpClass> {
    Some(match name {
        "int_alu" => OpClass::IntAlu,
        "int_mult" => OpClass::IntMult,
        "int_div" => OpClass::IntDiv,
        "fp_alu" => OpClass::FpAlu,
        "fp_mult" => OpClass::FpMult,
        "fp_div" => OpClass::FpDiv,
        "load" => OpClass::Load,
        "store" => OpClass::Store,
        "br_cond" => OpClass::BranchCond,
        "br_uncond" => OpClass::BranchUncond,
        "call" => OpClass::Call,
        "ret" => OpClass::Ret,
        _ => return None,
    })
}

fn resource_name(r: ResourceKind) -> &'static str {
    match r {
        ResourceKind::Rob => "ROB",
        ResourceKind::Iq => "IQ",
        ResourceKind::Lq => "LQ",
        ResourceKind::Sq => "SQ",
        ResourceKind::IntRf => "IntRF",
        ResourceKind::FpRf => "FpRF",
    }
}

fn resource_from(name: &str) -> Option<ResourceKind> {
    Some(match name {
        "ROB" => ResourceKind::Rob,
        "IQ" => ResourceKind::Iq,
        "LQ" => ResourceKind::Lq,
        "SQ" => ResourceKind::Sq,
        "IntRF" => ResourceKind::IntRf,
        "FpRF" => ResourceKind::FpRf,
        _ => return None,
    })
}

fn fu_name(f: FuKind) -> &'static str {
    match f {
        FuKind::IntAlu => "IntALU",
        FuKind::IntMultDiv => "IntMultDiv",
        FuKind::FpAlu => "FpALU",
        FuKind::FpMultDiv => "FpMultDiv",
        FuKind::RdWrPort => "RdWrPort",
    }
}

fn fu_from(name: &str) -> Option<FuKind> {
    Some(match name {
        "IntALU" => FuKind::IntAlu,
        "IntMultDiv" => FuKind::IntMultDiv,
        "FpALU" => FuKind::FpAlu,
        "FpMultDiv" => FuKind::FpMultDiv,
        "RdWrPort" => FuKind::RdWrPort,
        _ => return None,
    })
}

/// Serialises a simulation result into the interchange format.
pub fn export(result: &SimResult) -> String {
    let mut out = String::with_capacity(result.trace.events.len() * 96);
    let _ = writeln!(out, "ARCHX-TRACE v1 {}", result.trace.events.len());
    for (idx, (ev, instr)) in result
        .trace
        .events
        .iter()
        .zip(&result.instructions)
        .enumerate()
    {
        let _ = write!(
            out,
            "I {idx} {} {:#x} f1={} f2={} f={} dc={} r={} dp={} i={} m={} p={} c={}",
            op_name(instr.op),
            instr.pc,
            ev.f1,
            ev.f2,
            ev.f,
            ev.dc,
            ev.r,
            ev.dp,
            ev.i,
            ev.m,
            ev.p,
            ev.c
        );
        for stall in &ev.rename_stalls {
            let _ = write!(
                out,
                " rs={}:{}",
                resource_name(stall.resource),
                stall.releaser
            );
        }
        if let Some(wait) = ev.fu_wait {
            let _ = write!(out, " fu={}:{}", fu_name(wait.fu), wait.releaser);
        }
        for &d in &ev.data_deps {
            let _ = write!(out, " dd={d}");
        }
        if ev.mispredicted {
            out.push_str(" mp");
        }
        if let Some(from) = ev.refill_from {
            let _ = write!(out, " rf={from}");
        }
        if let Some(from) = ev.fetch_slot_from {
            let _ = write!(out, " fs={from}");
        }
        if let Some(from) = ev.fetch_bw_from {
            let _ = write!(out, " fb={from}");
        }
        if let Some(from) = ev.mem_dep_violation {
            let _ = write!(out, " mv={from}");
        }
        if ev.icache_miss {
            out.push_str(" im");
        }
        if ev.dcache_miss {
            out.push_str(" dm");
        }
        out.push('\n');
    }
    out
}

/// Parses the interchange format back into a [`SimResult`].
///
/// Only timing-relevant information is reconstructed: register operands
/// and memory addresses are not part of the format (the DEG does not need
/// them — dependencies are explicit), so the instructions carry empty
/// operand lists. Aggregate statistics are recomputed from the records.
///
/// # Errors
///
/// Returns [`ParseTraceError`] on malformed input.
pub fn import(text: &str) -> Result<SimResult, ParseTraceError> {
    let mut events: Vec<InstrEvents> = Vec::new();
    let mut instructions: Vec<Instruction> = Vec::new();
    let mut lines = 0usize;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lno = lineno + 1;
        lines = lno;
        if line.is_empty() || line.starts_with('#') || line.starts_with("ARCHX-TRACE") {
            continue;
        }
        let mut fields = line.split_ascii_whitespace();
        let malformed = |reason: &str| ParseTraceError::Malformed {
            line: lno,
            reason: reason.to_string(),
        };
        if fields.next() != Some("I") {
            return Err(malformed("record must start with `I`"));
        }
        let idx: u32 = fields
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| malformed("missing record index"))?;
        if idx as usize != events.len() {
            return Err(ParseTraceError::BadSequence {
                line: lno,
                found: idx,
                expected: events.len() as u32,
            });
        }
        let op = fields
            .next()
            .and_then(op_from)
            .ok_or_else(|| malformed("unknown op class"))?;
        let pc = fields
            .next()
            .and_then(|s| {
                let s = s.strip_prefix("0x").unwrap_or(s);
                u64::from_str_radix(s, 16).ok()
            })
            .ok_or_else(|| malformed("bad pc"))?;

        let mut ev = InstrEvents::default();
        let mut cycle_fields = 0;
        for field in fields {
            if let Some((key, value)) = field.split_once('=') {
                let cyc = || -> Result<Cycle, ParseTraceError> {
                    value.parse().map_err(|_| ParseTraceError::Malformed {
                        line: lno,
                        reason: format!("bad cycle value in `{field}`"),
                    })
                };
                let idx_val = || -> Result<InstrIdx, ParseTraceError> {
                    value
                        .rsplit(':')
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| ParseTraceError::Malformed {
                            line: lno,
                            reason: format!("bad index in `{field}`"),
                        })
                };
                match key {
                    "f1" => ev.f1 = cyc()?,
                    "f2" => ev.f2 = cyc()?,
                    "f" => ev.f = cyc()?,
                    "dc" => ev.dc = cyc()?,
                    "r" => ev.r = cyc()?,
                    "dp" => ev.dp = cyc()?,
                    "i" => ev.i = cyc()?,
                    "m" => ev.m = cyc()?,
                    "p" => ev.p = cyc()?,
                    "c" => ev.c = cyc()?,
                    "rs" => {
                        let (res, _) = value
                            .split_once(':')
                            .ok_or_else(|| malformed("rs needs RES:idx"))?;
                        ev.rename_stalls.push(RenameStall {
                            resource: resource_from(res)
                                .ok_or_else(|| malformed("unknown resource"))?,
                            releaser: idx_val()?,
                        });
                    }
                    "fu" => {
                        let (fu, _) = value
                            .split_once(':')
                            .ok_or_else(|| malformed("fu needs FU:idx"))?;
                        ev.fu_wait = Some(FuWait {
                            fu: fu_from(fu).ok_or_else(|| malformed("unknown FU"))?,
                            releaser: idx_val()?,
                        });
                    }
                    "dd" => ev.data_deps.push(idx_val()?),
                    "rf" => ev.refill_from = Some(idx_val()?),
                    "fs" => ev.fetch_slot_from = Some(idx_val()?),
                    "fb" => ev.fetch_bw_from = Some(idx_val()?),
                    "mv" => ev.mem_dep_violation = Some(idx_val()?),
                    _ => return Err(malformed(&format!("unknown field `{key}`"))),
                }
                if matches!(
                    key,
                    "f1" | "f2" | "f" | "dc" | "r" | "dp" | "i" | "m" | "p" | "c"
                ) {
                    cycle_fields += 1;
                }
            } else {
                match field {
                    "mp" => ev.mispredicted = true,
                    "im" => ev.icache_miss = true,
                    "dm" => ev.dcache_miss = true,
                    other => {
                        return Err(malformed(&format!("unknown flag `{other}`")));
                    }
                }
            }
        }
        if cycle_fields != 10 {
            return Err(malformed("all ten cycle fields are required"));
        }
        events.push(ev);
        instructions.push(Instruction {
            pc,
            op,
            srcs: [None, None],
            dst: None,
            mem_addr: 0,
            taken: false,
            target: 0,
        });
    }
    if events.is_empty() {
        return Err(ParseTraceError::Empty { lines });
    }

    // Recompute aggregate statistics from the records.
    let cycles = events.last().map(|e| e.c).unwrap_or(0);
    let mut stats = SimStats {
        committed: events.len() as u64,
        cycles,
        ..SimStats::default()
    };
    for (ev, instr) in events.iter().zip(&instructions) {
        if instr.op.is_branch() {
            stats.bp_lookups += 1;
        }
        if ev.mispredicted {
            stats.mispredicts += 1;
        }
        if ev.icache_miss {
            stats.icache_misses += 1;
        }
        if instr.op.is_mem() {
            stats.dcache_accesses += 1;
            if ev.dcache_miss {
                stats.dcache_misses += 1;
            }
        }
        for stall in &ev.rename_stalls {
            let ki = ResourceKind::ALL
                .iter()
                .position(|&k| k == stall.resource)
                .expect("known kind");
            stats.rename_stall_cycles[ki] += 1;
        }
    }

    Ok(SimResult {
        trace: PipelineTrace { events, cycles },
        stats,
        instructions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{trace_gen, MicroArch, OooCore};

    #[test]
    fn export_import_roundtrip_preserves_events() {
        let r = OooCore::new(MicroArch::baseline())
            .run(&trace_gen::mixed_workload(800, 3))
            .expect("simulates");
        let text = export(&r);
        let back = import(&text).expect("roundtrip parses");
        assert_eq!(back.trace.events, r.trace.events);
        assert_eq!(back.trace.cycles, r.trace.cycles);
        assert_eq!(back.stats.committed, r.stats.committed);
        // Ops and pcs survive.
        for (a, b) in back.instructions.iter().zip(&r.instructions) {
            assert_eq!(a.op, b.op);
            assert_eq!(a.pc, b.pc);
        }
    }

    #[test]
    fn header_and_comments_are_ignored() {
        let text = "# comment\nARCHX-TRACE v1 1\n\nI 0 int_alu 0x40 f1=0 f2=2 f=2 dc=3 r=4 dp=5 i=5 m=5 p=6 c=7\n";
        let r = import(text).expect("parses");
        assert_eq!(r.trace.events.len(), 1);
        assert_eq!(r.trace.cycles, 7);
    }

    #[test]
    fn rejects_gapped_indices() {
        let text = "I 1 int_alu 0x40 f1=0 f2=2 f=2 dc=3 r=4 dp=5 i=5 m=5 p=6 c=7\n";
        assert!(matches!(
            import(text),
            Err(ParseTraceError::BadSequence { expected: 0, .. })
        ));
    }

    #[test]
    fn rejects_missing_cycles_and_unknown_fields() {
        let missing = "I 0 int_alu 0x40 f1=0 f2=2\n";
        assert!(matches!(
            import(missing),
            Err(ParseTraceError::Malformed { .. })
        ));
        let unknown = "I 0 int_alu 0x40 f1=0 f2=2 f=2 dc=3 r=4 dp=5 i=5 m=5 p=6 c=7 zz=1\n";
        assert!(matches!(
            import(unknown),
            Err(ParseTraceError::Malformed { .. })
        ));
        assert!(matches!(
            import(""),
            Err(ParseTraceError::Empty { lines: 0 })
        ));
        assert!(matches!(
            import("# only a comment\n"),
            Err(ParseTraceError::Empty { lines: 1 })
        ));
    }

    #[test]
    fn imported_trace_feeds_the_deg_identically() {
        // The DEG built from an imported trace must match the original's
        // critical-path length (the whole point of the interchange).
        let r = OooCore::new(MicroArch::baseline())
            .run(&trace_gen::random_branches(1_500, 9))
            .expect("simulates");
        let text = export(&r);
        let back = import(&text).expect("parses");
        assert_eq!(back.trace.events, r.trace.events);
    }

    #[test]
    fn errors_render() {
        let e = ParseTraceError::Malformed {
            line: 3,
            reason: "x".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(ParseTraceError::Empty { lines: 4 }
            .to_string()
            .contains("no records"));
    }
}
