//! Aggregate simulation statistics, including the activity counters the
//! McPAT-lite power model consumes.

use crate::trace::ResourceKind;
use serde::{Deserialize, Serialize};

/// Aggregate statistics of one simulation run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SimStats {
    /// Committed instructions.
    pub committed: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Branch predictor lookups.
    pub bp_lookups: u64,
    /// Mispredicted control transfers (direction or target).
    pub mispredicts: u64,
    /// BTB misses on taken transfers.
    pub btb_misses: u64,
    /// L1 I-cache accesses / misses.
    pub icache_accesses: u64,
    /// L1 I-cache misses.
    pub icache_misses: u64,
    /// L1 D-cache accesses.
    pub dcache_accesses: u64,
    /// L1 D-cache misses.
    pub dcache_misses: u64,
    /// L2 accesses (sum of both L1s' misses).
    pub l2_accesses: u64,
    /// L2 misses (DRAM accesses).
    pub l2_misses: u64,
    /// Ops issued per functional-unit kind, indexed as
    /// [`crate::trace::FuKind::ALL`].
    pub fu_issued: [u64; 5],
    /// Rename-stall cycles attributed to each resource, indexed as
    /// [`ResourceKind::ALL`].
    pub rename_stall_cycles: [u64; 6],
    /// Loads that forwarded from the store queue.
    pub store_forwards: u64,
    /// Memory-order violations under store-set speculation.
    pub mem_dep_violations: u64,
    /// Cycle-weighted average occupancy of ROB/IQ/LQ/SQ/IntRF/FpRF,
    /// indexed as [`ResourceKind::ALL`].
    pub avg_occupancy: [f64; 6],
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Misprediction rate over predictor lookups.
    pub fn mispredict_rate(&self) -> f64 {
        if self.bp_lookups == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.bp_lookups as f64
        }
    }

    /// D-cache miss rate.
    pub fn dcache_miss_rate(&self) -> f64 {
        if self.dcache_accesses == 0 {
            0.0
        } else {
            self.dcache_misses as f64 / self.dcache_accesses as f64
        }
    }

    /// Rename stall cycles for one resource kind.
    pub fn stall_cycles(&self, kind: ResourceKind) -> u64 {
        let idx = ResourceKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("all kinds listed");
        self.rename_stall_cycles[idx]
    }

    /// Exports the headline counters of this run into the global telemetry
    /// registry (`sim/committed`, `sim/cycles`, …), accumulating across
    /// runs. Called once per simulation by the evaluation layer.
    pub fn export_telemetry(&self) {
        use archx_telemetry as t;
        t::counter_add("sim/runs", 1);
        t::counter_add("sim/committed", self.committed);
        t::counter_add("sim/cycles", self.cycles);
        t::counter_add("sim/mispredicts", self.mispredicts);
        t::counter_add("sim/icache_misses", self.icache_misses);
        t::counter_add("sim/dcache_misses", self.dcache_misses);
        t::counter_add("sim/l2_misses", self.l2_misses);
        t::counter_add("sim/store_forwards", self.store_forwards);
        t::counter_add("sim/mem_dep_violations", self.mem_dep_violations);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_denominators() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
        assert_eq!(s.dcache_miss_rate(), 0.0);
    }

    #[test]
    fn ipc_computes() {
        let s = SimStats {
            committed: 900,
            cycles: 1000,
            ..Default::default()
        };
        assert!((s.ipc() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn stall_cycles_indexing() {
        let mut s = SimStats::default();
        s.rename_stall_cycles[4] = 42; // IntRf is the 5th in ALL
        assert_eq!(s.stall_cycles(ResourceKind::IntRf), 42);
    }
}
