//! Reusable simulation scratch memory.
//!
//! A campaign evaluates thousands of design points, and every
//! [`OooCore::run`](crate::OooCore::run) used to allocate its working set
//! from scratch: the per-instruction event table (with two heap vectors per
//! entry), the auxiliary scoreboard, six pipeline queues, the store-set
//! conflict table, and the wakeup heap. A [`SimArena`] owns all of that
//! between runs so [`OooCore::run_in`](crate::OooCore::run_in) can *clear*
//! instead of *reallocate*.
//!
//! Ownership model: the arena is owned by one worker thread (it is `Send`
//! but deliberately not shared). `run_in` borrows every buffer for the
//! duration of one simulation; the event table and the instruction copy
//! move *into* the returned [`SimResult`], and the caller hands them back
//! with [`SimArena::recycle`] once the result has been consumed. Buffers
//! left in the arena (queues, scoreboard, conflict table) are cleared by
//! the next `run_in`, so a recycled arena never leaks state between
//! design points — results are byte-identical to a cold run.

use crate::isa::Instruction;
use crate::pipeline::{Aux, FetchBlock};
use crate::trace::{Cycle, InstrEvents, InstrIdx, ResourceKind, SimResult};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Recyclable scratch buffers for one simulation worker.
///
/// ```
/// use archx_sim::{arena::SimArena, MicroArch, OooCore, trace_gen};
/// let core = OooCore::new(MicroArch::baseline());
/// let trace = trace_gen::linear_int_chain(100);
/// let mut arena = SimArena::new();
/// for _ in 0..3 {
///     let result = core.run_in(&mut arena, &trace).expect("simulates");
///     assert_eq!(result.stats.committed, 100);
///     arena.recycle(result); // reclaim the event table for the next run
/// }
/// ```
#[derive(Debug, Default)]
pub struct SimArena {
    /// Per-instruction event records, reset (capacity kept) per run.
    pub(crate) events: Vec<InstrEvents>,
    /// Buffer for the instruction copy embedded in each `SimResult`.
    pub(crate) instructions: Vec<Instruction>,
    /// Per-instruction private scoreboard.
    pub(crate) aux: Vec<Aux>,
    /// In-flight fetch blocks.
    pub(crate) blocks: VecDeque<FetchBlock>,
    /// Fetch queue.
    pub(crate) ftq: VecDeque<InstrIdx>,
    /// Decode queue.
    pub(crate) decq: VecDeque<InstrIdx>,
    /// Issue queue (program-ordered).
    pub(crate) iq: VecDeque<InstrIdx>,
    /// Renamed, uncommitted stores.
    pub(crate) sq_live: VecDeque<InstrIdx>,
    /// Issued, uncommitted loads.
    pub(crate) lq_live: VecDeque<InstrIdx>,
    /// Resources the rename head is currently blocked on.
    pub(crate) blocked_kinds: Vec<ResourceKind>,
    /// Store-set conflict counters, per load PC.
    pub(crate) conflict: HashMap<u64, u8>,
    /// Completion times of in-flight instructions (idle fast-forward).
    pub(crate) pending_p: BinaryHeap<Reverse<Cycle>>,
}

impl SimArena {
    /// Creates an empty arena; buffers grow on first use and stick.
    pub fn new() -> Self {
        SimArena::default()
    }

    /// Reclaims the event table and instruction buffer from a consumed
    /// [`SimResult`], so the next [`run_in`](crate::OooCore::run_in) on
    /// this arena reuses their allocations (including the per-entry
    /// `rename_stalls` / `data_deps` vectors — the bulk of the win).
    pub fn recycle(&mut self, result: SimResult) {
        if result.trace.events.capacity() > self.events.capacity() {
            self.events = result.trace.events;
        }
        if result.instructions.capacity() > self.instructions.capacity() {
            self.instructions = result.instructions;
        }
    }

    /// Hands out the event table sized and reset for `n` instructions.
    pub(crate) fn take_events(&mut self, n: usize) -> Vec<InstrEvents> {
        let mut events = std::mem::take(&mut self.events);
        events.truncate(n);
        for ev in events.iter_mut() {
            ev.reset();
        }
        events.resize_with(n, InstrEvents::blank);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MicroArch;
    use crate::pipeline::OooCore;
    use crate::trace_gen;

    #[test]
    fn run_in_matches_run_across_reuse() {
        let core = OooCore::new(MicroArch::baseline());
        let mut arena = SimArena::new();
        for seed in [1u64, 2, 3] {
            let trace = trace_gen::mixed_workload(2_000, seed);
            let cold = core.run(&trace).expect("simulates");
            let warm = core.run_in(&mut arena, &trace).expect("simulates");
            assert_eq!(cold, warm, "arena reuse must not change results");
            arena.recycle(warm);
        }
    }

    #[test]
    fn reuse_across_different_lengths_and_archs() {
        let mut arena = SimArena::new();
        let mut arch = MicroArch::baseline();
        for (n, width) in [(3_000usize, 4u32), (500, 2), (1_500, 8)] {
            arch.width = width;
            arch.int_alu = width.max(3);
            let core = OooCore::new(arch);
            let trace = trace_gen::mixed_workload(n, 7);
            let cold = core.run(&trace).expect("simulates");
            let warm = core.run_in(&mut arena, &trace).expect("simulates");
            assert_eq!(cold, warm);
            arena.recycle(warm);
        }
    }

    #[test]
    fn error_paths_return_buffers_to_the_arena() {
        let core = OooCore::new(MicroArch::baseline()).with_cycle_budget(10);
        let mut arena = SimArena::new();
        let trace = trace_gen::mixed_workload(5_000, 1);
        assert!(core.run_in(&mut arena, &trace).is_err());
        // The event table was reinstalled, not leaked into the error.
        assert!(arena.events.capacity() >= 5_000);
        // And the arena still produces correct results afterwards.
        let full = OooCore::new(MicroArch::baseline());
        let cold = full.run(&trace).expect("simulates");
        let warm = full.run_in(&mut arena, &trace).expect("simulates");
        assert_eq!(cold, warm);
    }
}
