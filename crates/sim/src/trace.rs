//! Per-instruction event records: the microexecution ground truth the
//! dynamic event-dependence graph is built from.

use crate::isa::Instruction;
use crate::stats::SimStats;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A cycle count.
pub type Cycle = u64;
/// Index of a dynamic instruction within a trace.
pub type InstrIdx = u32;

/// Sentinel meaning "no instruction" in releaser fields.
pub const NO_INSTR: InstrIdx = InstrIdx::MAX;

/// Rename-checked hardware resources (paper Table 2, rename→rename edges).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Reorder buffer entries.
    Rob,
    /// Instruction (issue) queue entries.
    Iq,
    /// Load queue entries.
    Lq,
    /// Store queue entries.
    Sq,
    /// Physical integer registers.
    IntRf,
    /// Physical floating-point registers.
    FpRf,
}

impl ResourceKind {
    /// All variants, in a stable order.
    pub const ALL: [ResourceKind; 6] = [
        ResourceKind::Rob,
        ResourceKind::Iq,
        ResourceKind::Lq,
        ResourceKind::Sq,
        ResourceKind::IntRf,
        ResourceKind::FpRf,
    ];
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResourceKind::Rob => "ROB",
            ResourceKind::Iq => "IQ",
            ResourceKind::Lq => "LQ",
            ResourceKind::Sq => "SQ",
            ResourceKind::IntRf => "IntRF",
            ResourceKind::FpRf => "FpRF",
        };
        f.write_str(s)
    }
}

/// Functional-unit classes (paper Table 2, issue→issue edges).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FuKind {
    /// Integer ALUs.
    IntAlu,
    /// Integer multiplier/dividers.
    IntMultDiv,
    /// Floating-point ALUs.
    FpAlu,
    /// Floating-point multiplier/dividers.
    FpMultDiv,
    /// Cache read/write ports.
    RdWrPort,
}

impl FuKind {
    /// All variants, in a stable order.
    pub const ALL: [FuKind; 5] = [
        FuKind::IntAlu,
        FuKind::IntMultDiv,
        FuKind::FpAlu,
        FuKind::FpMultDiv,
        FuKind::RdWrPort,
    ];
}

impl fmt::Display for FuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuKind::IntAlu => "IntALU",
            FuKind::IntMultDiv => "IntMultDiv",
            FuKind::FpAlu => "FpALU",
            FuKind::FpMultDiv => "FpMultDiv",
            FuKind::RdWrPort => "RdWrPort",
        };
        f.write_str(s)
    }
}

/// A rename-stage stall resolved by another instruction releasing an entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RenameStall {
    /// Which resource was exhausted.
    pub resource: ResourceKind,
    /// The instruction whose release of an entry unblocked this one
    /// ([`NO_INSTR`] if the entry had never been held).
    pub releaser: InstrIdx,
}

/// A wait for a busy functional unit at issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuWait {
    /// Which functional-unit class was busy.
    pub fu: FuKind,
    /// The instruction whose release of the unit let this one issue.
    pub releaser: InstrIdx,
}

/// Event times and dependence records for one committed instruction.
///
/// All cycle fields are absolute simulation cycles. Stage names follow the
/// paper's Figure 7: `F1` (I-cache request) → `F2` (I-cache response) → `F`
/// (enter fetch queue) → `DC` (decode) → `R` (rename complete / resources
/// granted) → `DP` (dispatch into the issue queue) → `I` (issue) → `M`
/// (memory access begins, memory ops only) → `P` (execution complete /
/// writeback) → `C` (commit).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct InstrEvents {
    /// I-cache request sent.
    pub f1: Cycle,
    /// I-cache response received (fetch buffer filled).
    pub f2: Cycle,
    /// Moved into the fetch queue (prediction performed).
    pub f: Cycle,
    /// Decoded.
    pub dc: Cycle,
    /// Renamed: all required back-end resources granted.
    pub r: Cycle,
    /// Dispatched into the issue queue.
    pub dp: Cycle,
    /// Issued to a functional unit.
    pub i: Cycle,
    /// Memory access begins (memory ops only; equals `i` otherwise).
    pub m: Cycle,
    /// Execution complete / result broadcast.
    pub p: Cycle,
    /// Committed.
    pub c: Cycle,
    /// Rename stalls and their resolving releasers, in resolution order.
    pub rename_stalls: Vec<RenameStall>,
    /// Functional-unit wait, if the instruction had to wait for a unit.
    pub fu_wait: Option<FuWait>,
    /// Producers of this instruction's sources that were still in flight
    /// when it entered the issue window (true data dependencies).
    pub data_deps: Vec<InstrIdx>,
    /// True when this instruction is a mispredicted branch (it redirected
    /// the front end when it resolved).
    pub mispredicted: bool,
    /// When this instruction is the first fetched after a squash, the
    /// mispredicted branch that caused the refill.
    pub refill_from: Option<InstrIdx>,
    /// For the first instruction of a fetch block: the instruction whose
    /// departure from the fetch buffer freed the slot this block occupies
    /// (a fetch-buffer resource-usage dependence).
    pub fetch_slot_from: Option<InstrIdx>,
    /// When this instruction's move into the fetch queue was delayed by
    /// front-end bandwidth or fetch-queue occupancy: the instruction whose
    /// move preceded (and gated) it.
    pub fetch_bw_from: Option<InstrIdx>,
    /// For a load that issued speculatively and was later found to
    /// conflict with an older store: that store's index (a memory-order
    /// misprediction; the load's commit was gated by a replay).
    pub mem_dep_violation: Option<InstrIdx>,
    /// Whether the instruction's fetch missed in the L1 I-cache.
    pub icache_miss: bool,
    /// Whether a load/store missed in the L1 D-cache.
    pub dcache_miss: bool,
}

impl InstrEvents {
    /// Total lifetime in cycles, fetch request to commit.
    pub fn lifetime(&self) -> Cycle {
        self.c.saturating_sub(self.f1)
    }

    /// A fresh pre-run record: every stage cycle unset (`Cycle::MAX`), no
    /// dependence records.
    pub fn blank() -> Self {
        let mut ev = InstrEvents::default();
        ev.reset();
        ev
    }

    /// Resets to the pre-run blank state while keeping the capacity of the
    /// per-instruction `rename_stalls` / `data_deps` vectors — the
    /// allocation-reuse path used by [`crate::arena::SimArena`].
    pub fn reset(&mut self) {
        self.f1 = Cycle::MAX;
        self.f2 = Cycle::MAX;
        self.f = Cycle::MAX;
        self.dc = Cycle::MAX;
        self.r = Cycle::MAX;
        self.dp = Cycle::MAX;
        self.i = Cycle::MAX;
        self.m = Cycle::MAX;
        self.p = Cycle::MAX;
        self.c = Cycle::MAX;
        self.rename_stalls.clear();
        self.fu_wait = None;
        self.data_deps.clear();
        self.mispredicted = false;
        self.refill_from = None;
        self.fetch_slot_from = None;
        self.fetch_bw_from = None;
        self.mem_dep_violation = None;
        self.icache_miss = false;
        self.dcache_miss = false;
    }
}

/// The full microexecution record of a simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineTrace {
    /// Per committed instruction, in program order.
    pub events: Vec<InstrEvents>,
    /// Total simulated cycles (commit cycle of the last instruction).
    pub cycles: Cycle,
}

impl PipelineTrace {
    /// Number of committed instructions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Result of a simulation: the trace plus aggregate statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Per-instruction microexecution record.
    pub trace: PipelineTrace,
    /// Aggregate statistics (IPC, cache/branch activity, occupancies).
    pub stats: SimStats,
    /// The instructions that were simulated, aligned with `trace.events`.
    pub instructions: Vec<Instruction>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetime_saturates() {
        let ev = InstrEvents::default();
        assert_eq!(ev.lifetime(), 0);
        let ev = InstrEvents {
            f1: 3,
            c: 13,
            ..Default::default()
        };
        assert_eq!(ev.lifetime(), 10);
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(ResourceKind::IntRf.to_string(), "IntRF");
        assert_eq!(FuKind::RdWrPort.to_string(), "RdWrPort");
        assert_eq!(ResourceKind::ALL.len(), 6);
        assert_eq!(FuKind::ALL.len(), 5);
    }

    #[test]
    fn trace_len() {
        let t = PipelineTrace {
            events: vec![InstrEvents::default()],
            cycles: 1,
        };
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
