//! Set-associative cache models with true-LRU replacement, and the fixed
//! two-level hierarchy (parameterised L1s, fixed 2 MB 8-way L2, DRAM).

use crate::config::{self, ReplPolicy, LINE_BYTES};

/// Outcome of a cache hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Total latency in cycles, including lower levels on a miss.
    pub latency: u64,
    /// Whether the L1 lookup missed.
    pub l1_miss: bool,
    /// Whether the L2 lookup missed too (DRAM access).
    pub l2_miss: bool,
}

/// A single set-associative cache with a configurable replacement policy.
///
/// For LRU/FIFO, per-way stamps record last-use / insertion order; the
/// random policy picks victims from a deterministic xorshift stream. The
/// model tracks tags only — the simulator is timing-only.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: u32,
    assoc: u32,
    policy: ReplPolicy,
    /// tag per way per set; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// last-use (LRU) or insertion (FIFO) stamp per way per set.
    stamps: Vec<u64>,
    tick: u64,
    rng: u64,
    accesses: u64,
    misses: u64,
}

impl Cache {
    /// Builds an LRU cache of `kb` KiB with the given associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not yield a positive power-of-two set
    /// count; validate with [`crate::MicroArch::validate`] first.
    pub fn new(kb: u32, assoc: u32) -> Self {
        Self::with_policy(kb, assoc, ReplPolicy::Lru)
    }

    /// Builds a cache with an explicit replacement policy.
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry (see [`Cache::new`]).
    pub fn with_policy(kb: u32, assoc: u32, policy: ReplPolicy) -> Self {
        let lines = kb * 1024 / LINE_BYTES;
        assert!(
            assoc > 0 && lines >= assoc,
            "cache too small for associativity"
        );
        let sets = lines / assoc;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            sets,
            assoc,
            policy,
            tags: vec![u64::MAX; (sets * assoc) as usize],
            stamps: vec![0; (sets * assoc) as usize],
            tick: 0,
            rng: 0x2545_F491_4F6C_DD1D,
            accesses: 0,
            misses: 0,
        }
    }

    fn set_of(&self, addr: u64) -> u32 {
        ((addr / LINE_BYTES as u64) % self.sets as u64) as u32
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr / LINE_BYTES as u64 / self.sets as u64
    }

    /// Looks up `addr`, filling on miss. Returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        self.accesses += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = (set * self.assoc) as usize;
        let ways = &mut self.tags[base..base + self.assoc as usize];
        if let Some(w) = ways.iter().position(|&t| t == tag) {
            if self.policy == ReplPolicy::Lru {
                self.stamps[base + w] = self.tick; // refresh recency
            }
            return true;
        }
        self.misses += 1;
        // Victim: an invalid way first, else per policy.
        let invalid = (0..self.assoc as usize).find(|&w| self.tags[base + w] == u64::MAX);
        let victim = invalid.unwrap_or_else(|| match self.policy {
            ReplPolicy::Lru | ReplPolicy::Fifo => (0..self.assoc as usize)
                .min_by_key(|&w| self.stamps[base + w])
                .expect("assoc > 0"),
            ReplPolicy::Random => {
                let mut x = self.rng;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                self.rng = x;
                (x.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % self.assoc as usize
            }
        });
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.tick;
        false
    }

    /// Number of accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Number of misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.sets
    }
}

/// The simulated memory hierarchy: two private L1s over a shared L2, with
/// a next-line prefetcher on the data side (sequential streams largely hit
/// after their first line, as on real machines).
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// L1 instruction cache.
    pub l1i: Cache,
    /// L1 data cache.
    pub l1d: Cache,
    /// Shared second-level cache.
    pub l2: Cache,
    /// Stream-prefetcher entries: the next line each tracked stream
    /// expects.
    streams: [u64; 4],
    /// Round-robin victim pointer for stream allocation.
    stream_victim: usize,
    prefetches: u64,
}

impl Hierarchy {
    /// Builds the hierarchy from a microarchitecture configuration.
    pub fn new(arch: &crate::MicroArch) -> Self {
        Hierarchy {
            l1i: Cache::with_policy(arch.icache_kb, arch.icache_assoc, arch.replacement),
            l1d: Cache::with_policy(arch.dcache_kb, arch.dcache_assoc, arch.replacement),
            l2: Cache::new(config::L2_KB, config::L2_ASSOC),
            streams: [u64::MAX; 4],
            stream_victim: 0,
            prefetches: 0,
        }
    }

    /// Instruction fetch access at `addr`.
    pub fn fetch(&mut self, addr: u64) -> Access {
        Self::two_level(&mut self.l1i, &mut self.l2, addr)
    }

    /// Data access at `addr`, with a small multi-stream prefetcher: four
    /// tracked streams, each prefetching a few lines ahead when its
    /// expected next line (within a short window, so out-of-order issue
    /// does not break detection) is touched. Sequential sweeps hit after
    /// their first lines, as with real stream prefetchers; random traffic
    /// only pays mild pollution.
    pub fn data(&mut self, addr: u64) -> Access {
        let line = addr / LINE_BYTES as u64;
        let access = Self::two_level(&mut self.l1d, &mut self.l2, addr);
        const LOOKAHEAD: u64 = 4;
        let matched = self
            .streams
            .iter()
            .position(|&next| next != u64::MAX && line >= next && line < next + LOOKAHEAD);
        let from = match matched {
            Some(k) => {
                let start = self.streams[k].max(line + 1);
                self.streams[k] = line + 1;
                start
            }
            None => {
                self.streams[self.stream_victim] = line + 1;
                self.stream_victim = (self.stream_victim + 1) % self.streams.len();
                line + 1
            }
        };
        // Keep the prefetch frontier LOOKAHEAD lines ahead of the access.
        for l in from..line + 1 + LOOKAHEAD {
            let a = l * LINE_BYTES as u64;
            self.l1d.access(a);
            self.l2.access(a);
            self.prefetches += 1;
        }
        access
    }

    /// Next-line prefetches issued so far.
    pub fn prefetches(&self) -> u64 {
        self.prefetches
    }

    fn two_level(l1: &mut Cache, l2: &mut Cache, addr: u64) -> Access {
        if l1.access(addr) {
            return Access {
                latency: config::L1_HIT_CYCLES,
                l1_miss: false,
                l2_miss: false,
            };
        }
        if l2.access(addr) {
            Access {
                latency: config::L1_HIT_CYCLES + config::L2_HIT_CYCLES,
                l1_miss: true,
                l2_miss: false,
            }
        } else {
            Access {
                latency: config::L1_HIT_CYCLES + config::L2_HIT_CYCLES + config::DRAM_CYCLES,
                l1_miss: true,
                l2_miss: true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = Cache::new(16, 2);
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1004)); // same line
        assert_eq!(c.accesses(), 3);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2-way: fill a set with two lines, touch the first, insert a third;
        // the second line must be evicted.
        let mut c = Cache::new(16, 2);
        let sets = c.sets() as u64;
        let a = 0u64;
        let b = sets * LINE_BYTES as u64; // same set, different tag
        let d = 2 * sets * LINE_BYTES as u64;
        c.access(a);
        c.access(b);
        assert!(c.access(a)); // refresh a
        c.access(d); // evicts b
        assert!(c.access(a));
        assert!(!c.access(b)); // b was evicted
    }

    #[test]
    fn hierarchy_latencies_ordered() {
        let arch = crate::MicroArch::baseline();
        let mut h = Hierarchy::new(&arch);
        let miss = h.data(0x8000);
        assert!(miss.l1_miss && miss.l2_miss);
        assert_eq!(
            miss.latency,
            config::L1_HIT_CYCLES + config::L2_HIT_CYCLES + config::DRAM_CYCLES
        );
        let hit = h.data(0x8000);
        assert!(!hit.l1_miss);
        assert_eq!(hit.latency, config::L1_HIT_CYCLES);
    }

    #[test]
    fn l2_catches_l1_evictions() {
        let arch = crate::MicroArch::tiny();
        let mut h = Hierarchy::new(&arch);
        // Stream enough lines to wrap the 16 KiB L1D, then re-touch the
        // first: L1 misses but L2 (2 MB) still holds it.
        let lines = (arch.dcache_kb * 1024 / LINE_BYTES) as u64 * 2;
        for i in 0..lines {
            h.data(i * LINE_BYTES as u64);
        }
        let back = h.data(0);
        assert!(back.l1_miss);
        assert!(!back.l2_miss);
    }

    #[test]
    #[should_panic(expected = "cache too small")]
    fn zero_geometry_panics() {
        let _ = Cache::new(0, 2);
    }

    #[test]
    fn fifo_ignores_reuse() {
        use crate::config::ReplPolicy;
        // Fill a 2-way set, re-touch the first line, insert a third: FIFO
        // evicts the first (oldest insertion) despite its recent use.
        let mut c = Cache::with_policy(16, 2, ReplPolicy::Fifo);
        let sets = c.sets() as u64;
        let a = 0u64;
        let b = sets * LINE_BYTES as u64;
        let d = 2 * sets * LINE_BYTES as u64;
        c.access(a);
        c.access(b);
        assert!(c.access(a)); // reuse does not refresh FIFO order
        c.access(d); // evicts a
        assert!(!c.access(a), "FIFO must have evicted the oldest insertion");
    }

    #[test]
    fn random_policy_is_deterministic_and_correct_on_hits() {
        use crate::config::ReplPolicy;
        let run = || {
            let mut c = Cache::with_policy(16, 2, ReplPolicy::Random);
            let mut hits = 0;
            for i in 0..4_000u64 {
                if c.access((i * 2_654_435_761) % (64 << 10)) {
                    hits += 1;
                }
            }
            (hits, c.misses())
        };
        assert_eq!(run(), run(), "random replacement must be deterministic");
        // Hits still work: a resident line must hit.
        let mut c = Cache::with_policy(16, 2, ReplPolicy::Random);
        c.access(0x100);
        assert!(c.access(0x104));
    }

    #[test]
    fn replacement_policy_ranking_on_looping_pattern() {
        use crate::config::ReplPolicy;
        // A cyclic sweep slightly larger than one way thrashes LRU's sets
        // identically for all policies when fully random; use a mixed
        // re-reference pattern where LRU's recency wins.
        let pattern: Vec<u64> = (0..6_000u64)
            .map(|i| {
                if i % 3 == 0 {
                    (i % 64) * 64 // hot re-referenced lines
                } else {
                    ((i * 37) % 1024) * 64 // scattered
                }
            })
            .collect();
        let misses = |policy| {
            let mut c = Cache::with_policy(16, 2, policy);
            for &a in &pattern {
                c.access(a);
            }
            c.misses()
        };
        let lru = misses(ReplPolicy::Lru);
        let random = misses(ReplPolicy::Random);
        assert!(
            lru <= random + random / 10,
            "LRU ({lru}) should not lose badly to random ({random}) with reuse"
        );
    }
}
