#![warn(missing_docs)]
//! # archx-sim — cycle-level out-of-order CPU simulator
//!
//! A from-scratch, trace-driven, cycle-level model of an out-of-order
//! superscalar processor, parameterised by every knob in the ArchExplorer
//! design space (Table 4 of the paper): pipeline width, fetch buffer and
//! fetch queue sizes, a tournament branch predictor with BTB and RAS,
//! ROB/IQ/LQ/SQ capacities, physical integer/floating-point register files,
//! per-class functional-unit counts, and L1 instruction/data caches backed
//! by a fixed L2 and DRAM.
//!
//! The simulator is the *substrate* the paper obtains from a modified gem5:
//! besides aggregate statistics it records, for every committed instruction,
//! the cycle at which each pipeline event occurred (`F1`, `F2`, `F`, `DC`,
//! `R`, `DP`, `I`, `M`, `P`, `C`) together with a **resource scoreboard**:
//! which instruction's release of which resource entry unblocked each stall.
//! That record is exactly what the new dynamic event-dependence graph (DEG)
//! formulation of the paper consumes.
//!
//! ## Quick example
//!
//! ```
//! use archx_sim::{MicroArch, OooCore, trace_gen};
//!
//! let arch = MicroArch::baseline();
//! let instrs = trace_gen::linear_int_chain(1000);
//! let result = OooCore::new(arch).run(&instrs).expect("simulates");
//! assert!(result.stats.cycles > 0);
//! assert_eq!(result.trace.events.len(), 1000);
//! ```
//!
//! ## Failure handling
//!
//! Simulation is fallible by design: [`OooCore::run`] returns
//! `Result<SimResult, SimError>` so a pathological design point inside a
//! DSE campaign fails as data instead of aborting the process. The
//! [`SimError`] taxonomy covers pipeline deadlock (watchdog), per-run
//! cycle budgets ([`OooCore::with_cycle_budget`]), invalid configurations
//! and external-trace ingestion errors.

pub mod arena;
pub mod bpred;
pub mod cache;
pub mod check;
pub mod config;
pub mod error;
pub mod extern_trace;
pub mod fu;
pub mod isa;
pub mod o3pipeview;
pub mod pipeline;
pub mod resources;
pub mod stats;
pub mod trace;
pub mod trace_gen;

pub use arena::SimArena;
pub use check::{CheckConfig, InjectedFault};
pub use config::MicroArch;
pub use error::SimError;
pub use isa::{Instruction, OpClass, Reg, RegClass};
pub use pipeline::OooCore;
pub use stats::SimStats;
pub use trace::{Cycle, FuKind, InstrEvents, InstrIdx, PipelineTrace, ResourceKind, SimResult};
