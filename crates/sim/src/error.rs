//! Typed simulation failures.
//!
//! Long DSE campaigns evaluate thousands of design points; a single
//! pathological configuration must fail *as data*, not by aborting the
//! process. Every way a simulation can go wrong is therefore a
//! [`SimError`] variant that the evaluation layer can catch, retry,
//! quarantine and journal (see `archx-dse`).

use crate::config::ConfigError;
use crate::trace::{Cycle, InstrIdx};

/// A failed simulation, with enough context to diagnose the design point
/// that caused it.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The pipeline made no forward progress for the watchdog interval
    /// (an internal invariant violation, or a watchdog set low enough to
    /// treat pathological slowness as failure).
    Deadlock {
        /// Cycle at which the watchdog fired.
        cycle: Cycle,
        /// Oldest uncommitted instruction at that point.
        commit_head: InstrIdx,
        /// The no-commit interval that fired (cycles).
        watchdog: Cycle,
    },
    /// The simulation exceeded its per-run cycle budget before committing
    /// the whole trace.
    CycleBudgetExceeded {
        /// The configured budget (cycles).
        budget: Cycle,
        /// Instructions committed before the budget ran out.
        committed: u64,
        /// Total instructions in the trace.
        total: u64,
    },
    /// The microarchitecture failed validation.
    InvalidArch {
        /// Rendered [`ConfigError`].
        message: String,
    },
    /// An external trace could not be ingested.
    TraceError {
        /// Rendered parse error (with line context where available).
        message: String,
    },
    /// A `CheckedCore` per-cycle invariant check failed (see
    /// `archx_sim::check`): the pipeline reached a state that breaks a
    /// structural property the model guarantees.
    InvariantViolation {
        /// Machine-readable check tag (e.g. `occupancy/ROB`), mirrored by
        /// the `verify/violation/<check>` telemetry counter.
        check: String,
        /// Cycle at which the violation was detected.
        cycle: Cycle,
        /// Rendered diagnostic.
        message: String,
    },
}

impl SimError {
    /// Short machine-readable tag (stable across releases; used by
    /// telemetry counters and the evaluation journal).
    pub fn tag(&self) -> &'static str {
        match self {
            SimError::Deadlock { .. } => "deadlock",
            SimError::CycleBudgetExceeded { .. } => "cycle_budget",
            SimError::InvalidArch { .. } => "invalid_arch",
            SimError::TraceError { .. } => "trace_error",
            SimError::InvariantViolation { .. } => "invariant",
        }
    }

    /// Whether re-running the same design with a smaller instruction
    /// window could plausibly succeed. Validation failures and invariant
    /// violations are deterministic properties of the design (or of the
    /// simulator itself) and never retried.
    pub fn retryable(&self) -> bool {
        !matches!(
            self,
            SimError::InvalidArch { .. } | SimError::InvariantViolation { .. }
        )
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock {
                cycle,
                commit_head,
                watchdog,
            } => write!(
                f,
                "pipeline deadlock: no commit for {watchdog} cycles at cycle {cycle}, head {commit_head}"
            ),
            SimError::CycleBudgetExceeded {
                budget,
                committed,
                total,
            } => write!(
                f,
                "cycle budget of {budget} exceeded with {committed}/{total} instructions committed"
            ),
            SimError::InvalidArch { message } => write!(f, "invalid microarchitecture: {message}"),
            SimError::TraceError { message } => write!(f, "trace error: {message}"),
            SimError::InvariantViolation {
                check,
                cycle,
                message,
            } => write!(f, "invariant violation [{check}] at cycle {cycle}: {message}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::InvalidArch {
            message: e.to_string(),
        }
    }
}

impl From<crate::extern_trace::ParseTraceError> for SimError {
    fn from(e: crate::extern_trace::ParseTraceError) -> Self {
        SimError::TraceError {
            message: e.to_string(),
        }
    }
}

impl From<crate::o3pipeview::O3ParseError> for SimError {
    fn from(e: crate::o3pipeview::O3ParseError) -> Self {
        SimError::TraceError {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MicroArch;

    #[test]
    fn renders_and_tags() {
        let e = SimError::Deadlock {
            cycle: 42,
            commit_head: 7,
            watchdog: 10,
        };
        assert!(e.to_string().contains("cycle 42"));
        assert_eq!(e.tag(), "deadlock");
        assert!(e.retryable());
        let b = SimError::CycleBudgetExceeded {
            budget: 100,
            committed: 3,
            total: 9,
        };
        assert!(b.to_string().contains("3/9"));
        assert!(b.retryable());
    }

    #[test]
    fn config_errors_convert_and_never_retry() {
        let mut arch = MicroArch::baseline();
        arch.width = 0;
        let err: SimError = arch.validate().unwrap_err().into();
        assert_eq!(err.tag(), "invalid_arch");
        assert!(!err.retryable());
        assert!(err.to_string().contains("width"));
    }
}
