//! gem5 `O3PipeView` trace ingestion.
//!
//! gem5's O3 CPU can dump per-instruction pipeline timing with
//! `--debug-flags=O3PipeView` (the format consumed by gem5's
//! `util/o3-pipeview.py`):
//!
//! ```text
//! O3PipeView:fetch:<tick>:<pc>:<upc>:<seqnum>:<disasm>
//! O3PipeView:decode:<tick>
//! O3PipeView:rename:<tick>
//! O3PipeView:dispatch:<tick>
//! O3PipeView:issue:<tick>
//! O3PipeView:complete:<tick>
//! O3PipeView:retire:<tick>:store:<tick>:<...>
//! ```
//!
//! This module parses that format into a [`SimResult`] so the DEG analysis
//! can run on real gem5 microexecutions. Two caveats, documented for
//! honest use:
//!
//! * O3PipeView carries **timing only** — gem5 does not dump the resource
//!   scoreboard, true-data-dependence, or squash-cause records the paper's
//!   instrumentation adds. The resulting DEG therefore contains pipeline
//!   edges (with fully dynamic measured weights) but no skewed edges; it
//!   supports timing studies and visualisation, not full bottleneck
//!   attribution. The paper modifies gem5 to emit the extra records — a
//!   gem5 patched that way should emit this crate's
//!   [`extern_trace`](crate::extern_trace) format instead, which carries
//!   everything.
//! * Ticks are converted to cycles with a configurable `ticks_per_cycle`
//!   (gem5 defaults to 1 GHz tick resolution = 1000 ticks/cycle at 1 GHz;
//!   500 at 2 GHz).

use crate::isa::{Instruction, OpClass};
use crate::stats::SimStats;
use crate::trace::{Cycle, InstrEvents, PipelineTrace, SimResult};

/// Errors produced by the O3PipeView parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum O3ParseError {
    /// A malformed line (1-based line number, description).
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// A stage record appeared before any `fetch` opened an instruction.
    OrphanStage {
        /// 1-based line number.
        line: usize,
        /// Stage name found.
        stage: String,
    },
    /// No complete instruction records found.
    Empty {
        /// Lines scanned (including non-O3PipeView lines).
        lines: usize,
        /// Instruction records opened by a `fetch` but dropped for lack
        /// of a `retire` (squashed in gem5 terms).
        squashed: usize,
    },
}

impl std::fmt::Display for O3ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            O3ParseError::Malformed { line, reason } => write!(f, "line {line}: {reason}"),
            O3ParseError::OrphanStage { line, stage } => {
                write!(f, "line {line}: `{stage}` record before any fetch")
            }
            O3ParseError::Empty { lines, squashed } => write!(
                f,
                "no complete O3PipeView records in {lines} lines ({squashed} unretired records dropped)"
            ),
        }
    }
}

impl std::error::Error for O3ParseError {}

#[derive(Debug, Default, Clone)]
struct Pending {
    pc: u64,
    disasm: String,
    fetch: u64,
    decode: u64,
    rename: u64,
    dispatch: u64,
    issue: u64,
    complete: u64,
    retire: u64,
    is_store: bool,
}

/// Guesses an [`OpClass`] from a gem5 disassembly string (best effort —
/// timing analysis does not depend on it, but reports read better).
fn classify(disasm: &str, is_store: bool) -> OpClass {
    let d = disasm.to_ascii_lowercase();
    if is_store || d.starts_with("st") || d.contains(" sw ") || d.starts_with("sw") {
        return OpClass::Store;
    }
    if d.starts_with("ld") || d.starts_with("lw") || d.starts_with("lb") || d.starts_with("lh") {
        return OpClass::Load;
    }
    if d.starts_with("beq")
        || d.starts_with("bne")
        || d.starts_with("blt")
        || d.starts_with("bge")
        || d.starts_with('b') && d.starts_with("b.")
    {
        return OpClass::BranchCond;
    }
    if d.starts_with("jal") || d.starts_with("call") {
        return OpClass::Call;
    }
    if d.starts_with("ret") {
        return OpClass::Ret;
    }
    if d.starts_with("j") {
        return OpClass::BranchUncond;
    }
    if d.contains("div") {
        return OpClass::IntDiv;
    }
    if d.contains("mul") {
        return OpClass::IntMult;
    }
    if d.starts_with('f') {
        return OpClass::FpAlu;
    }
    OpClass::IntAlu
}

/// Parses O3PipeView text into a [`SimResult`] (pipeline timing only; see
/// the module docs for what gem5 does and does not dump).
///
/// Instructions squashed before retirement (no `retire` record) are
/// dropped, as in gem5's own pipeline viewer.
///
/// # Errors
///
/// Returns [`O3ParseError`] on malformed input.
pub fn import_o3pipeview(text: &str, ticks_per_cycle: u64) -> Result<SimResult, O3ParseError> {
    assert!(ticks_per_cycle > 0, "ticks_per_cycle must be positive");
    let mut pending: Option<Pending> = None;
    let mut done: Vec<Pending> = Vec::new();
    let mut squashed = 0usize;
    let mut lines = 0usize;

    let mut flush = |p: Option<Pending>, squashed: &mut usize| {
        if let Some(p) = p {
            if p.retire > 0 {
                done.push(p);
            } else {
                *squashed += 1;
            }
        }
    };

    for (lineno, raw) in text.lines().enumerate() {
        lines = lineno + 1;
        let line = raw.trim();
        let lno = lineno + 1;
        if line.is_empty() || !line.starts_with("O3PipeView:") {
            continue;
        }
        let mut parts = line.split(':');
        parts.next(); // "O3PipeView"
        let stage = parts.next().ok_or_else(|| O3ParseError::Malformed {
            line: lno,
            reason: "missing stage".into(),
        })?;
        let tick: u64 = parts
            .next()
            .and_then(|t| t.trim().parse().ok())
            .ok_or_else(|| O3ParseError::Malformed {
                line: lno,
                reason: format!("bad tick in `{stage}` record"),
            })?;
        match stage {
            "fetch" => {
                flush(pending.take(), &mut squashed);
                let pc = parts
                    .next()
                    .map(|s| {
                        let s = s.trim().trim_start_matches("0x");
                        u64::from_str_radix(s, 16).unwrap_or(0)
                    })
                    .unwrap_or(0);
                let _upc = parts.next();
                let _seq = parts.next();
                let disasm = parts.collect::<Vec<_>>().join(":").trim().to_string();
                pending = Some(Pending {
                    pc,
                    disasm,
                    fetch: tick,
                    ..Pending::default()
                });
            }
            other => {
                let p = pending.as_mut().ok_or_else(|| O3ParseError::OrphanStage {
                    line: lno,
                    stage: other.to_string(),
                })?;
                match other {
                    "decode" => p.decode = tick,
                    "rename" => p.rename = tick,
                    "dispatch" => p.dispatch = tick,
                    "issue" => p.issue = tick,
                    "complete" => p.complete = tick,
                    "retire" => {
                        p.retire = tick;
                        if parts.next() == Some("store") {
                            p.is_store = true;
                        }
                    }
                    unknown => {
                        return Err(O3ParseError::Malformed {
                            line: lno,
                            reason: format!("unknown stage `{unknown}`"),
                        })
                    }
                }
            }
        }
    }
    flush(pending.take(), &mut squashed);

    // Normalise to cycles from the first fetch. An empty or all-filtered
    // trace is a typed error (with how much input was scanned), never a
    // panic — campaigns ingest these files unattended.
    let Some(t0) = done.iter().map(|p| p.fetch).min() else {
        return Err(O3ParseError::Empty { lines, squashed });
    };
    let cyc = |tick: u64| -> Cycle {
        if tick == 0 {
            0
        } else {
            tick.saturating_sub(t0) / ticks_per_cycle
        }
    };

    let mut events = Vec::with_capacity(done.len());
    let mut instructions = Vec::with_capacity(done.len());
    for p in &done {
        let f1 = cyc(p.fetch);
        // O3PipeView has one fetch timestamp: map it to F1=F2=F; the DEG's
        // I-cache split is unavailable without the paper's instrumentation.
        let dc = cyc(p.decode).max(f1 + 1);
        let r = cyc(p.rename).max(dc + 1);
        let dp = cyc(p.dispatch).max(r + 1);
        let i = cyc(p.issue).max(dp);
        let pdone = cyc(p.complete).max(i + 1);
        let c = cyc(p.retire).max(pdone + 1);
        let op = classify(&p.disasm, p.is_store);
        events.push(InstrEvents {
            f1,
            f2: f1,
            f: f1,
            dc,
            r,
            dp,
            i,
            m: if op.is_mem() { i + 1 } else { i },
            p: pdone,
            c,
            ..InstrEvents::default()
        });
        instructions.push(Instruction {
            pc: p.pc,
            op,
            srcs: [None, None],
            dst: None,
            mem_addr: 0,
            taken: false,
            target: 0,
        });
    }
    let cycles = events.last().map(|e: &InstrEvents| e.c).unwrap_or(0);
    let stats = SimStats {
        committed: events.len() as u64,
        cycles,
        ..SimStats::default()
    };
    Ok(SimResult {
        trace: PipelineTrace { events, cycles },
        stats,
        instructions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
O3PipeView:fetch:1000:0x400100:0:42:add a0, a1, a2
O3PipeView:decode:1500
O3PipeView:rename:2000
O3PipeView:dispatch:2500
O3PipeView:issue:3000
O3PipeView:complete:3500
O3PipeView:retire:4000
O3PipeView:fetch:1500:0x400104:0:43:ld a3, 0(a0)
O3PipeView:decode:2000
O3PipeView:rename:2500
O3PipeView:dispatch:3000
O3PipeView:issue:3500
O3PipeView:complete:4500
O3PipeView:retire:5000:store:0
";

    #[test]
    fn parses_the_documented_format() {
        let r = import_o3pipeview(SAMPLE, 500).expect("parses");
        assert_eq!(r.trace.events.len(), 2);
        let e0 = &r.trace.events[0];
        assert_eq!(e0.f1, 0);
        assert_eq!(e0.dc, 1);
        assert_eq!(e0.i, 4);
        assert_eq!(e0.c, 6);
        assert_eq!(r.instructions[0].op, OpClass::IntAlu);
        assert_eq!(r.instructions[0].pc, 0x400100);
        // retire:...:store marks the second record a store.
        assert_eq!(r.instructions[1].op, OpClass::Store);
    }

    #[test]
    fn squashed_instructions_are_dropped() {
        let text = "\
O3PipeView:fetch:1000:0x40:0:1:add x1, x2
O3PipeView:decode:1500
O3PipeView:fetch:2000:0x44:0:2:sub x3, x4
O3PipeView:decode:2500
O3PipeView:rename:3000
O3PipeView:dispatch:3500
O3PipeView:issue:4000
O3PipeView:complete:4500
O3PipeView:retire:5000
";
        let r = import_o3pipeview(text, 500).expect("parses");
        assert_eq!(r.trace.events.len(), 1, "unretired instruction dropped");
        assert_eq!(r.instructions[0].pc, 0x44);
    }

    #[test]
    fn feeds_the_deg_pipeline() {
        // The imported result must be a valid DEG substrate: all stage
        // orderings hold even with gem5's coarser timestamps.
        let r = import_o3pipeview(SAMPLE, 500).expect("parses");
        for ev in &r.trace.events {
            assert!(ev.f1 <= ev.f2 && ev.f2 <= ev.f && ev.f < ev.dc);
            assert!(ev.dc < ev.r && ev.r < ev.dp && ev.dp <= ev.i);
            assert!(ev.i <= ev.m && ev.m < ev.p && ev.p < ev.c);
        }
    }

    #[test]
    fn rejects_orphans_and_junk() {
        assert!(matches!(
            import_o3pipeview("O3PipeView:decode:100\n", 500),
            Err(O3ParseError::OrphanStage { .. })
        ));
        assert!(matches!(
            import_o3pipeview("O3PipeView:fetch:abc:0x1:0:1:nop\n", 500),
            Err(O3ParseError::Malformed { .. })
        ));
        assert!(matches!(
            import_o3pipeview("", 500),
            Err(O3ParseError::Empty {
                lines: 0,
                squashed: 0
            })
        ));
        // A record that never retires is squashed; an all-squashed trace
        // is Empty and reports how much input it scanned.
        assert!(matches!(
            import_o3pipeview("O3PipeView:fetch:1:0x1:0:1:nop\n", 500),
            Err(O3ParseError::Empty {
                lines: 1,
                squashed: 1
            })
        ));
        assert!(matches!(
            import_o3pipeview("O3PipeView:fetch:1:0x1:0:1:nop\nO3PipeView:zzz:2\n", 500),
            Err(O3ParseError::Malformed { .. })
        ));
    }

    #[test]
    fn classify_covers_common_mnemonics() {
        assert_eq!(classify("ld a0, 0(sp)", false), OpClass::Load);
        assert_eq!(classify("sw a0, 0(sp)", false), OpClass::Store);
        assert_eq!(classify("beq a0, a1, 0x40", false), OpClass::BranchCond);
        assert_eq!(classify("jal ra, 0x100", false), OpClass::Call);
        assert_eq!(classify("ret", false), OpClass::Ret);
        assert_eq!(classify("mulw a0, a1, a2", false), OpClass::IntMult);
        assert_eq!(classify("fadd.d f0, f1, f2", false), OpClass::FpAlu);
        assert_eq!(classify("anything", true), OpClass::Store);
    }
}
