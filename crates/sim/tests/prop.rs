//! Property-based tests of the simulator's building blocks against
//! straightforward reference models.

use archx_sim::cache::Cache;
use archx_sim::resources::Pool;
use proptest::prelude::*;
use std::collections::VecDeque;

/// Reference LRU cache: a plain recency list per set.
struct RefLru {
    sets: u64,
    assoc: usize,
    lines: Vec<VecDeque<u64>>,
}

impl RefLru {
    fn new(kb: u32, assoc: u32) -> Self {
        let lines = kb as u64 * 1024 / 64;
        let sets = lines / assoc as u64;
        RefLru {
            sets,
            assoc: assoc as usize,
            lines: (0..sets).map(|_| VecDeque::new()).collect(),
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let line = addr / 64;
        let set = (line % self.sets) as usize;
        let tag = line / self.sets;
        let q = &mut self.lines[set];
        if let Some(pos) = q.iter().position(|&t| t == tag) {
            q.remove(pos);
            q.push_back(tag);
            true
        } else {
            if q.len() == self.assoc {
                q.pop_front();
            }
            q.push_back(tag);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cache_matches_reference_lru(
        addrs in proptest::collection::vec(0u64..(1 << 16), 1..400),
        assoc in prop_oneof![Just(2u32), Just(4u32)],
    ) {
        let mut dut = Cache::new(16, assoc);
        let mut reference = RefLru::new(16, assoc);
        for &a in &addrs {
            prop_assert_eq!(dut.access(a), reference.access(a), "divergence at {:#x}", a);
        }
    }

    #[test]
    fn pool_never_overallocates_and_releases_roundtrip(
        ops in proptest::collection::vec(any::<bool>(), 1..200),
        capacity in 1u32..16,
    ) {
        let mut pool = Pool::new(capacity);
        let mut held: Vec<u32> = Vec::new();
        for (i, &alloc) in ops.iter().enumerate() {
            if alloc {
                match pool.alloc(i as u32) {
                    Some(grant) => {
                        prop_assert!(!held.contains(&grant.entry), "entry double-granted");
                        held.push(grant.entry);
                    }
                    None => prop_assert_eq!(held.len() as u32, capacity, "refused while free entries exist"),
                }
            } else if let Some(entry) = held.pop() {
                pool.release(entry, i as u32);
            }
            prop_assert_eq!(pool.in_use() as usize, held.len());
            prop_assert_eq!(pool.available() + pool.in_use(), capacity);
        }
    }

    #[test]
    fn simulation_timing_invariants_hold_for_random_mixes(seed in any::<u64>()) {
        use archx_sim::{trace_gen, MicroArch, OooCore};
        let trace = trace_gen::mixed_workload(800, seed);
        let r = OooCore::new(MicroArch::tiny()).run(&trace).expect("simulates");
        prop_assert_eq!(r.stats.committed, 800);
        prop_assert_eq!(r.trace.cycles, r.trace.events.last().unwrap().c);
        // Issue happens only after dispatch; memory ops get distinct M.
        for (ev, instr) in r.trace.events.iter().zip(&r.instructions) {
            prop_assert!(ev.i >= ev.dp);
            if instr.op.is_mem() {
                prop_assert_eq!(ev.m, ev.i + 1);
            } else {
                prop_assert_eq!(ev.m, ev.i);
            }
        }
    }
}
