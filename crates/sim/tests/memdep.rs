//! Memory-dependence speculation (store-set policy) behaviour.

use archx_sim::config::MemDepPolicy;
use archx_sim::isa::{Instruction, OpClass, Reg};
use archx_sim::{MicroArch, OooCore};

/// A slow producer feeding a store's *address*, followed by an independent
/// load: conservative ordering serialises the load behind the store's
/// address generation; speculation lets it issue immediately.
fn addr_dependent_pattern(n: usize) -> Vec<Instruction> {
    let mut v = Vec::new();
    for k in 0..n {
        let pc = 0x1000 + 16 * k as u64;
        // Slow chain feeding the store's address register.
        v.push(Instruction::op(
            pc,
            OpClass::IntDiv,
            [Some(Reg::int(2)), None],
            Some(Reg::int(2)),
        ));
        // Store to an address far from the load below.
        v.push(Instruction::store(
            pc + 4,
            0x9_0000 + 64 * k as u64,
            Reg::int(2),
            Reg::int(3),
        ));
        // Independent load (never conflicts with the store).
        v.push(Instruction::load(
            pc + 8,
            0x1_0000 + 8 * (k as u64 % 512),
            Reg::int(1),
            Reg::int(4),
        ));
        v.push(Instruction::op(
            pc + 12,
            OpClass::IntAlu,
            [Some(Reg::int(4)), None],
            Some(Reg::int(5)),
        ));
    }
    v
}

/// Stores and loads that *do* conflict (same address, load follows store).
fn conflicting_pattern(n: usize) -> Vec<Instruction> {
    let mut v = Vec::new();
    for k in 0..n {
        let pc = 0x2000 + 12 * (k as u64 % 64);
        let addr = 0x5_0000 + 8 * (k as u64 % 16);
        v.push(Instruction::op(
            pc,
            OpClass::IntMult,
            [Some(Reg::int(2)), None],
            Some(Reg::int(2)),
        ));
        v.push(Instruction::store(pc + 4, addr, Reg::int(2), Reg::int(3)));
        v.push(Instruction::load(pc + 8, addr, Reg::int(1), Reg::int(4)));
    }
    v
}

#[test]
fn speculation_speeds_up_independent_loads() {
    let trace = addr_dependent_pattern(800);
    let conservative = OooCore::new(MicroArch::baseline())
        .run(&trace)
        .expect("simulates");
    let mut arch = MicroArch::baseline();
    arch.mem_dep = MemDepPolicy::StoreSets;
    let speculative = OooCore::new(arch).run(&trace).expect("simulates");
    assert!(
        speculative.trace.cycles < conservative.trace.cycles,
        "speculation must help: {} vs {} cycles",
        speculative.trace.cycles,
        conservative.trace.cycles
    );
    assert_eq!(
        speculative.stats.mem_dep_violations, 0,
        "no conflicts exist"
    );
}

#[test]
fn conflicts_are_detected_and_learned() {
    let trace = conflicting_pattern(600);
    let mut arch = MicroArch::baseline();
    arch.mem_dep = MemDepPolicy::StoreSets;
    let r = OooCore::new(arch).run(&trace).expect("simulates");
    assert!(
        r.stats.mem_dep_violations > 0,
        "same-address speculation must violate at least once"
    );
    // The predictor learns: violations are far rarer than conflicting pairs.
    assert!(
        (r.stats.mem_dep_violations as usize) < 600 / 4,
        "conflict counters must suppress repeat violations: {} violations",
        r.stats.mem_dep_violations
    );
    // Violated loads carry the store index and commit after the replay gate.
    let mut seen = 0;
    for (j, ev) in r.trace.events.iter().enumerate() {
        if let Some(s) = ev.mem_dep_violation {
            assert!((s as usize) < j, "violating store must be older");
            let store_m = r.trace.events[s as usize].m;
            assert!(ev.c > store_m + 2, "commit must wait for the replay");
            seen += 1;
        }
    }
    assert_eq!(seen as u64, r.stats.mem_dep_violations);
}

#[test]
fn conservative_policy_never_violates() {
    let trace = conflicting_pattern(400);
    let r = OooCore::new(MicroArch::baseline())
        .run(&trace)
        .expect("simulates");
    assert_eq!(r.stats.mem_dep_violations, 0);
    assert!(r.trace.events.iter().all(|e| e.mem_dep_violation.is_none()));
}

#[test]
fn deterministic_under_speculation() {
    let trace = conflicting_pattern(300);
    let mut arch = MicroArch::baseline();
    arch.mem_dep = MemDepPolicy::StoreSets;
    let a = OooCore::new(arch).run(&trace).expect("simulates");
    let b = OooCore::new(arch).run(&trace).expect("simulates");
    assert_eq!(a.trace, b.trace);
}
