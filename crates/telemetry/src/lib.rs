#![warn(missing_docs)]
//! # archx-telemetry — campaign observability for the ArchExplorer stack
//!
//! A lightweight, thread-safe metrics/tracing layer with **zero external
//! dependencies** (`std` only). It gives every layer of the workspace a
//! shared measurement substrate:
//!
//! - **Counters** — named `AtomicU64`s (`eval/cache/hit`, `sim/cycles`, …).
//! - **Span timers** — RAII wall-clock timers with *hierarchical scopes*:
//!   a span opened inside another span (or [`scope`]) is recorded under
//!   the joined path, so `archx-deg`'s `deg/build` span becomes
//!   `eval/deg/build` when the evaluator runs it under its `eval` scope.
//! - **Histograms** — power-of-two-bucketed latency distributions
//!   (per-design simulation latency, …).
//! - **Progress sinks** — campaign progress events (simulations done vs.
//!   budget, current hypervolume, best `Perf²/(Power·Area)`) fan out to
//!   registered [`ProgressSink`]s.
//! - **Reports** — a point-in-time [`Report`] snapshot that renders as
//!   machine-readable JSON (with a bundled parser for round-trips) or an
//!   aligned human-readable table (the CLI's `--telemetry json|pretty`).
//!
//! Most call sites use the process-global registry through the free
//! functions below; tests build private [`Registry`] instances.
//!
//! ```
//! use archx_telemetry as telemetry;
//!
//! telemetry::counter_add("demo/widgets", 3);
//! {
//!     let _outer = telemetry::span("demo");
//!     let _inner = telemetry::span("step"); // recorded as "demo/step"
//! }
//! let report = telemetry::global().report();
//! assert!(report.counter("demo/widgets") >= 3);
//! let json = report.to_json();
//! let back = telemetry::Report::from_json(&json).unwrap();
//! assert_eq!(report.counter("demo/widgets"), back.counter("demo/widgets"));
//! ```

mod json;
mod progress;
mod registry;

pub use json::{JsonError, JsonValue};
pub use progress::{CollectingSink, LabelledSink, Progress, ProgressSink, SinkId};
pub use registry::{Histogram, HistogramStat, Registry, Report, ScopeGuard, Span, TimerStat};

use std::sync::OnceLock;

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry every layer reports into by default.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Adds to a named counter on the global registry.
pub fn counter_add(name: &str, n: u64) {
    global().counter_add(name, n);
}

/// Opens a wall-clock span on the global registry; the returned guard
/// records the elapsed time under the current hierarchical scope when
/// dropped.
pub fn span(name: &str) -> Span<'static> {
    global().span(name)
}

/// Enters a hierarchical scope (no timing): spans and scopes opened on
/// this thread while the guard lives are prefixed with `name/`.
pub fn scope(name: &str) -> ScopeGuard {
    Registry::scope(name)
}

/// Clears this thread's scope prefix while the guard lives, so spans
/// record under absolute names regardless of the caller's open scopes.
pub fn root_scope() -> ScopeGuard {
    Registry::root_scope()
}

/// Records a value into a named histogram on the global registry.
pub fn record(name: &str, value: u64) {
    global().record(name, value);
}

/// Publishes a progress event to every sink on the global registry.
pub fn progress(event: &Progress) {
    global().progress(event);
}
