//! The metrics registry: counters, hierarchical span timers, histograms,
//! progress sinks, and report snapshots.

use crate::json::{JsonError, JsonValue};
use crate::progress::{Progress, ProgressSink, SinkId};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

thread_local! {
    /// Per-thread hierarchical scope prefix, e.g. `"eval/deg/"`.
    static SCOPE: RefCell<String> = const { RefCell::new(String::new()) };
}

#[derive(Debug, Default)]
struct TimerCell {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

/// Number of power-of-two histogram buckets (covers `u64`'s range).
const BUCKETS: usize = 64;

/// A lock-free power-of-two-bucketed histogram.
///
/// Bucket `i` counts values whose bit length is `i` (value 0 falls into
/// bucket 0), so bucket upper bounds are `0, 1, 3, 7, …, 2^63-1, u64::MAX`.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, value: u64) {
        let idx = (64 - value.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    fn stat(&self, name: &str) -> HistogramStat {
        let count = self.count.load(Ordering::Relaxed);
        HistogramStat {
            name: name.to_string(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, c)| {
                    let c = c.load(Ordering::Relaxed);
                    (c > 0).then(|| (bucket_upper(i), c))
                })
                .collect(),
        }
    }
}

/// Inclusive upper bound of histogram bucket `i` (bucket `i` holds the
/// values of bit length `i`; the last bucket absorbs everything above).
fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        i if i >= BUCKETS - 1 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// The central metrics store. One global instance serves the whole
/// process (see [`crate::global`]); tests construct private ones.
#[derive(Default)]
pub struct Registry {
    enabled: AtomicBool,
    counters: Mutex<HashMap<String, Arc<AtomicU64>>>,
    timers: Mutex<HashMap<String, Arc<TimerCell>>>,
    histograms: Mutex<HashMap<String, Arc<Histogram>>>,
    sinks: Mutex<Vec<(SinkId, Arc<dyn ProgressSink>)>>,
    next_sink: AtomicU64,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.enabled())
            .field("report", &self.report())
            .finish_non_exhaustive()
    }
}

impl Registry {
    /// Creates an empty, enabled registry.
    pub fn new() -> Self {
        Registry {
            enabled: AtomicBool::new(true),
            ..Default::default()
        }
    }

    /// Globally enables or disables collection. Disabled registries make
    /// every operation a cheap no-op (one relaxed atomic load).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether collection is currently enabled.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Handle to a named counter (cheap to clone, lock-free to bump).
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        let mut map = self.counters.lock().unwrap();
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(AtomicU64::new(0));
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// Adds to a named counter.
    pub fn counter_add(&self, name: &str, n: u64) {
        if !self.enabled() {
            return;
        }
        self.counter(name).fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of a named counter (0 when never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .unwrap()
            .get(name)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Records a value into a named histogram.
    pub fn record(&self, name: &str, value: u64) {
        if !self.enabled() {
            return;
        }
        self.histogram(name).record(value);
    }

    /// Handle to a named histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::default());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// Enters a hierarchical scope for the current thread: while the
    /// guard lives, spans and nested scopes are recorded under
    /// `name/...`. Purely a naming device — no time is recorded.
    pub fn scope(name: &str) -> ScopeGuard {
        let restore_len = SCOPE.with(|s| {
            let mut s = s.borrow_mut();
            let restore = s.len();
            s.push_str(name);
            s.push('/');
            restore
        });
        ScopeGuard {
            restore: Restore::Truncate(restore_len),
        }
    }

    /// Resets the current thread's scope prefix to empty while the guard
    /// lives (restoring it afterwards), so subsequent spans record under
    /// absolute names regardless of what the caller had open. Used by
    /// layers whose metric names must be stable whether they run on the
    /// caller's thread or on workers.
    pub fn root_scope() -> ScopeGuard {
        let saved = SCOPE.with(|s| std::mem::take(&mut *s.borrow_mut()));
        ScopeGuard {
            restore: Restore::Replace(saved),
        }
    }

    /// Opens a wall-clock span. The guard records `count += 1` and the
    /// elapsed nanoseconds under the scope-qualified name when dropped;
    /// nested spans and scopes are prefixed with this span's name.
    ///
    /// Guards are LIFO by construction (RAII); leaking one mid-scope
    /// would misattribute subsequent span names on this thread.
    pub fn span<'r>(&'r self, name: &str) -> Span<'r> {
        if !self.enabled() {
            return Span {
                registry: self,
                inner: None,
            };
        }
        let (full, restore_len) = SCOPE.with(|s| {
            let mut s = s.borrow_mut();
            let restore = s.len();
            let full = format!("{s}{name}");
            s.push_str(name);
            s.push('/');
            (full, restore)
        });
        Span {
            registry: self,
            inner: Some(SpanInner {
                full,
                restore_len,
                start: Instant::now(),
            }),
        }
    }

    fn timer(&self, name: &str) -> Arc<TimerCell> {
        let mut map = self.timers.lock().unwrap();
        if let Some(t) = map.get(name) {
            return Arc::clone(t);
        }
        let t = Arc::new(TimerCell::default());
        map.insert(name.to_string(), Arc::clone(&t));
        t
    }

    /// Registers a progress sink; events from [`Registry::progress`] are
    /// delivered to it until [`Registry::remove_sink`].
    pub fn add_sink(&self, sink: Arc<dyn ProgressSink>) -> SinkId {
        let id = SinkId(self.next_sink.fetch_add(1, Ordering::Relaxed));
        self.sinks.lock().unwrap().push((id, sink));
        id
    }

    /// Unregisters a progress sink.
    pub fn remove_sink(&self, id: SinkId) {
        self.sinks.lock().unwrap().retain(|(i, _)| *i != id);
    }

    /// Publishes a progress event to every registered sink.
    pub fn progress(&self, event: &Progress) {
        if !self.enabled() {
            return;
        }
        // Clone the sink list out so sinks can add/remove sinks.
        let sinks: Vec<Arc<dyn ProgressSink>> = self
            .sinks
            .lock()
            .unwrap()
            .iter()
            .map(|(_, s)| Arc::clone(s))
            .collect();
        for sink in sinks {
            sink.on_progress(event);
        }
    }

    /// Point-in-time snapshot of every counter, timer, and histogram,
    /// sorted by name for deterministic output.
    pub fn report(&self) -> Report {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        counters.sort();
        let mut timers: Vec<TimerStat> = self
            .timers
            .lock()
            .unwrap()
            .iter()
            .map(|(k, t)| TimerStat {
                name: k.clone(),
                count: t.count.load(Ordering::Relaxed),
                total_ns: t.total_ns.load(Ordering::Relaxed),
                max_ns: t.max_ns.load(Ordering::Relaxed),
            })
            .collect();
        timers.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<HistogramStat> = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, h)| h.stat(k))
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        Report {
            counters,
            timers,
            histograms,
        }
    }
}

#[derive(Debug)]
enum Restore {
    /// Pop a pushed prefix segment.
    Truncate(usize),
    /// Restore the full pre-`root_scope` prefix.
    Replace(String),
}

/// RAII guard of [`Registry::scope`] / [`Registry::root_scope`].
#[derive(Debug)]
pub struct ScopeGuard {
    restore: Restore,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        match &mut self.restore {
            Restore::Truncate(len) => SCOPE.with(|s| s.borrow_mut().truncate(*len)),
            Restore::Replace(saved) => {
                let saved = std::mem::take(saved);
                SCOPE.with(|s| *s.borrow_mut() = saved);
            }
        }
    }
}

#[derive(Debug)]
struct SpanInner {
    full: String,
    restore_len: usize,
    start: Instant,
}

/// RAII guard of [`Registry::span`]: records elapsed wall-clock time on
/// drop.
#[derive(Debug)]
pub struct Span<'r> {
    registry: &'r Registry,
    inner: Option<SpanInner>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let elapsed = inner.start.elapsed().as_nanos() as u64;
            SCOPE.with(|s| s.borrow_mut().truncate(inner.restore_len));
            let cell = self.registry.timer(&inner.full);
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.total_ns.fetch_add(elapsed, Ordering::Relaxed);
            cell.max_ns.fetch_max(elapsed, Ordering::Relaxed);
        }
    }
}

/// Snapshot of one span timer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimerStat {
    /// Scope-qualified span name, e.g. `eval/deg/build`.
    pub name: String,
    /// Completed span count.
    pub count: u64,
    /// Total wall-clock nanoseconds across all spans.
    pub total_ns: u64,
    /// Longest single span in nanoseconds.
    pub max_ns: u64,
}

impl TimerStat {
    /// Mean nanoseconds per span.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// Snapshot of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramStat {
    /// Histogram name, e.g. `eval/sim_latency_us`.
    pub name: String,
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramStat {
    /// Approximate quantile (`0.0..=1.0`): the upper bound of the bucket
    /// containing the q-th observation.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for &(upper, c) in &self.buckets {
            seen += c;
            if seen >= target {
                return upper.min(self.max);
            }
        }
        self.max
    }
}

/// A full snapshot of a registry, renderable as JSON or aligned text.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Report {
    /// Counters sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Span timers sorted by name.
    pub timers: Vec<TimerStat>,
    /// Histograms sorted by name.
    pub histograms: Vec<HistogramStat>,
}

impl Report {
    /// Value of a counter in this snapshot (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Timer stats for a span name, when present.
    pub fn timer(&self, name: &str) -> Option<&TimerStat> {
        self.timers.iter().find(|t| t.name == name)
    }

    /// Histogram stats by name, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramStat> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Machine-readable single-line JSON.
    pub fn to_json(&self) -> String {
        JsonValue::from_report(self).render()
    }

    /// Parses a report back from [`Report::to_json`] output.
    pub fn from_json(text: &str) -> Result<Report, JsonError> {
        JsonValue::parse(text)?.into_report()
    }

    /// Aligned human-readable rendering.
    pub fn to_pretty(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if !self.counters.is_empty() {
            let w = self
                .counters
                .iter()
                .map(|(n, _)| n.len())
                .max()
                .unwrap_or(0);
            out.push_str("counters\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<w$}  {v}");
            }
        }
        if !self.timers.is_empty() {
            let w = self.timers.iter().map(|t| t.name.len()).max().unwrap_or(0);
            out.push_str("timers\n");
            for t in &self.timers {
                let _ = writeln!(
                    out,
                    "  {:<w$}  count {:>8}  total {:>12.3} ms  mean {:>10.1} µs  max {:>10.1} µs",
                    t.name,
                    t.count,
                    t.total_ns as f64 / 1e6,
                    t.mean_ns() / 1e3,
                    t.max_ns as f64 / 1e3,
                );
            }
        }
        if !self.histograms.is_empty() {
            let w = self
                .histograms
                .iter()
                .map(|h| h.name.len())
                .max()
                .unwrap_or(0);
            out.push_str("histograms\n");
            for h in &self.histograms {
                let mean = if h.count == 0 {
                    0.0
                } else {
                    h.sum as f64 / h.count as f64
                };
                let _ = writeln!(
                    out,
                    "  {:<w$}  count {:>8}  mean {:>10.1}  p50 {:>8}  p99 {:>8}  max {:>8}",
                    h.name,
                    h.count,
                    mean,
                    h.quantile(0.5),
                    h.quantile(0.99),
                    h.max,
                );
            }
        }
        if out.is_empty() {
            out.push_str("(no telemetry recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn concurrent_counter_increments_are_lossless() {
        let reg = Registry::new();
        let threads = 8;
        let per_thread = 10_000u64;
        crossbeam_free_scope(&reg, threads, per_thread);
        assert_eq!(
            reg.counter_value("test/concurrent"),
            threads as u64 * per_thread
        );
    }

    fn crossbeam_free_scope(reg: &Registry, threads: usize, per_thread: u64) {
        thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    let c = reg.counter("test/concurrent");
                    for _ in 0..per_thread {
                        c.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
    }

    #[test]
    fn nested_span_timing_is_monotone_and_scoped() {
        let reg = Registry::new();
        {
            let _outer = reg.span("outer");
            {
                let _inner = reg.span("inner");
                thread::sleep(Duration::from_millis(5));
            }
            thread::sleep(Duration::from_millis(1));
        }
        let report = reg.report();
        let outer = report.timer("outer").expect("outer recorded");
        let inner = report
            .timer("outer/inner")
            .expect("inner nested under outer");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(
            outer.total_ns >= inner.total_ns,
            "outer ({}) must cover inner ({})",
            outer.total_ns,
            inner.total_ns
        );
        assert!(
            inner.total_ns >= 5_000_000,
            "inner span must be at least the sleep"
        );
        assert!(outer.max_ns >= outer.total_ns / outer.count.max(1));
    }

    #[test]
    fn scope_prefixes_compose_without_timing() {
        let reg = Registry::new();
        {
            let _s = Registry::scope("eval");
            let _t = reg.span("deg/build");
        }
        let report = reg.report();
        assert!(report.timer("eval/deg/build").is_some());
        assert!(
            report.timer("eval").is_none(),
            "scopes alone record no timers"
        );
    }

    #[test]
    fn root_scope_pins_names_and_restores_the_prefix() {
        let reg = Registry::new();
        {
            let _outer = reg.span("outer");
            {
                let _root = Registry::root_scope();
                let _abs = reg.span("absolute");
            }
            let _back = reg.span("inner");
        }
        let report = reg.report();
        assert!(
            report.timer("absolute").is_some(),
            "root scope strips the prefix"
        );
        assert!(
            report.timer("outer/inner").is_some(),
            "prefix restored after root scope"
        );
        assert!(report.timer("outer/absolute").is_none());
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::new();
        reg.set_enabled(false);
        reg.counter_add("x", 5);
        reg.record("h", 3);
        {
            let _s = reg.span("quiet");
        }
        let report = reg.report();
        assert_eq!(report.counter("x"), 0);
        assert!(report.timer("quiet").is_none());
        assert!(report.histogram("h").is_none());
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        for v in [0, 1, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        let stat = h.stat("lat");
        assert_eq!(stat.count, 7);
        assert_eq!(stat.min, 0);
        assert_eq!(stat.max, 1000);
        assert_eq!(stat.sum, 1107);
        assert!(stat.quantile(0.5) <= 3);
        assert_eq!(stat.quantile(1.0), 1000);
    }
}
