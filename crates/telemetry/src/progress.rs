//! Campaign progress events and sinks.

use std::sync::Mutex;

/// A point-in-time campaign progress event.
///
/// Emitted by the evaluator after every real (uncached) simulation, and
/// by campaign drivers at iteration boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct Progress {
    /// Who emitted the event (method label, e.g. `"archexplorer"`).
    pub source: String,
    /// Simulations completed so far.
    pub sims_done: u64,
    /// Total simulation budget for the campaign (0 when unbounded).
    pub sim_budget: u64,
    /// Current hypervolume of the Pareto frontier (0 when not tracked).
    pub hypervolume: f64,
    /// Best `Perf²/(Power·Area)` trade-off seen so far (0 when none).
    pub best_tradeoff: f64,
}

/// Receives [`Progress`] events. Implementations must be cheap and
/// non-blocking: they run inline on the simulation worker threads.
pub trait ProgressSink: Send + Sync {
    /// Called once per progress event, in emission order per thread.
    fn on_progress(&self, event: &Progress);
}

/// Handle returned by [`crate::Registry::add_sink`]; pass back to
/// [`crate::Registry::remove_sink`] to detach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkId(pub(crate) u64);

/// A sink that stores every event — the test/inspection workhorse.
#[derive(Debug, Default)]
pub struct CollectingSink {
    events: Mutex<Vec<Progress>>,
}

impl CollectingSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events received so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when no events have been received.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all events received so far.
    pub fn events(&self) -> Vec<Progress> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The most recent event, if any.
    pub fn last(&self) -> Option<Progress> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .last()
            .cloned()
    }

    /// The largest `sims_done` across all events (0 when empty).
    pub fn max_sims_done(&self) -> u64 {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|p| p.sims_done)
            .max()
            .unwrap_or(0)
    }
}

impl ProgressSink for CollectingSink {
    fn on_progress(&self, event: &Progress) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn collecting_sink_accumulates_across_threads() {
        let sink = Arc::new(CollectingSink::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let sink = Arc::clone(&sink);
                s.spawn(move || {
                    for i in 0..25 {
                        sink.on_progress(&Progress {
                            source: "test".into(),
                            sims_done: t * 25 + i + 1,
                            sim_budget: 100,
                            hypervolume: 0.0,
                            best_tradeoff: 0.0,
                        });
                    }
                });
            }
        });
        assert_eq!(sink.len(), 100);
        assert_eq!(sink.max_sims_done(), 100);
        assert!(!sink.is_empty());
        assert!(sink.last().is_some());
    }
}
