//! Campaign progress events and sinks.

use std::sync::{Arc, Mutex};

/// A point-in-time campaign progress event.
///
/// Emitted by the evaluator after every real (uncached) simulation, and
/// by campaign drivers at iteration boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct Progress {
    /// Who emitted the event (method label, e.g. `"archexplorer"`).
    pub source: String,
    /// Simulations completed so far.
    pub sims_done: u64,
    /// Total simulation budget for the campaign (0 when unbounded).
    pub sim_budget: u64,
    /// Current hypervolume of the Pareto frontier (0 when not tracked).
    pub hypervolume: f64,
    /// Best `Perf²/(Power·Area)` trade-off seen so far (0 when none).
    pub best_tradeoff: f64,
}

/// Receives [`Progress`] events. Implementations must be cheap and
/// non-blocking: they run inline on the simulation worker threads.
pub trait ProgressSink: Send + Sync {
    /// Called once per progress event, in emission order per thread.
    fn on_progress(&self, event: &Progress);
}

/// Handle returned by [`crate::Registry::add_sink`]; pass back to
/// [`crate::Registry::remove_sink`] to detach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkId(pub(crate) u64);

/// Relabels every event's `source` with a fixed run label before
/// forwarding to an inner sink.
///
/// Concurrent campaigns attach one `LabelledSink` per (method × seed) run
/// around a single shared sink, so interleaved events remain attributable
/// to their run (`"ArchExplorer[s3]"`) no matter which worker thread
/// emitted them.
pub struct LabelledSink {
    label: String,
    inner: Arc<dyn ProgressSink>,
}

impl LabelledSink {
    /// Wraps `inner`, stamping every forwarded event with `label`.
    pub fn new(label: impl Into<String>, inner: Arc<dyn ProgressSink>) -> Self {
        LabelledSink {
            label: label.into(),
            inner,
        }
    }

    /// The label stamped onto forwarded events.
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl std::fmt::Debug for LabelledSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LabelledSink")
            .field("label", &self.label)
            .finish()
    }
}

impl ProgressSink for LabelledSink {
    fn on_progress(&self, event: &Progress) {
        let mut event = event.clone();
        event.source = self.label.clone();
        self.inner.on_progress(&event);
    }
}

/// A sink that stores every event — the test/inspection workhorse.
#[derive(Debug, Default)]
pub struct CollectingSink {
    events: Mutex<Vec<Progress>>,
}

impl CollectingSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events received so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when no events have been received.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all events received so far.
    pub fn events(&self) -> Vec<Progress> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The most recent event, if any.
    pub fn last(&self) -> Option<Progress> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .last()
            .cloned()
    }

    /// The largest `sims_done` across all events (0 when empty).
    pub fn max_sims_done(&self) -> u64 {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|p| p.sims_done)
            .max()
            .unwrap_or(0)
    }
}

impl ProgressSink for CollectingSink {
    fn on_progress(&self, event: &Progress) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn collecting_sink_accumulates_across_threads() {
        let sink = Arc::new(CollectingSink::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let sink = Arc::clone(&sink);
                s.spawn(move || {
                    for i in 0..25 {
                        sink.on_progress(&Progress {
                            source: "test".into(),
                            sims_done: t * 25 + i + 1,
                            sim_budget: 100,
                            hypervolume: 0.0,
                            best_tradeoff: 0.0,
                        });
                    }
                });
            }
        });
        assert_eq!(sink.len(), 100);
        assert_eq!(sink.max_sims_done(), 100);
        assert!(!sink.is_empty());
        assert!(sink.last().is_some());
    }

    #[test]
    fn labelled_sink_relabels_and_forwards() {
        let inner = Arc::new(CollectingSink::new());
        let a = LabelledSink::new("Random[s1]", inner.clone());
        let b = LabelledSink::new("Random[s2]", inner.clone());
        assert_eq!(a.label(), "Random[s1]");
        let event = Progress {
            source: "Random".into(),
            sims_done: 3,
            sim_budget: 10,
            hypervolume: 1.0,
            best_tradeoff: 0.5,
        };
        a.on_progress(&event);
        b.on_progress(&event);
        let seen = inner.events();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].source, "Random[s1]");
        assert_eq!(seen[1].source, "Random[s2]");
        assert_eq!(seen[0].sims_done, 3, "payload fields pass through");
    }
}
