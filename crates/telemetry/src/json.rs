//! Minimal JSON emit/parse for telemetry reports.
//!
//! The telemetry crate is dependency-free by design, so it carries its
//! own small JSON value type: enough to render a [`Report`] and to parse
//! one back (round-trips exactly — counters and timers are integers).

use crate::registry::{HistogramStat, Report, TimerStat};
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integers (all report fields are unsigned).
    Int(u64),
    /// Non-integer numbers.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<JsonValue>),
    /// Object as ordered key/value pairs.
    Obj(Vec<(String, JsonValue)>),
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Renders compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::Float(x) => {
                if x.is_finite() {
                    // `{:?}` keeps a `.0` on integral floats, so the
                    // value parses back as Float, not Int.
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => render_string(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (must be a single value, whole input).
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters"));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(n) => Some(*n),
            JsonValue::Float(x) if x.fract() == 0.0 && *x >= 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    /// Builds the JSON tree of a report.
    pub fn from_report(report: &Report) -> JsonValue {
        let counters = JsonValue::Obj(
            report
                .counters
                .iter()
                .map(|(name, v)| (name.clone(), JsonValue::Int(*v)))
                .collect(),
        );
        let timers = JsonValue::Obj(
            report
                .timers
                .iter()
                .map(|t| {
                    (
                        t.name.clone(),
                        JsonValue::Obj(vec![
                            ("count".into(), JsonValue::Int(t.count)),
                            ("total_ns".into(), JsonValue::Int(t.total_ns)),
                            ("max_ns".into(), JsonValue::Int(t.max_ns)),
                        ]),
                    )
                })
                .collect(),
        );
        let histograms = JsonValue::Obj(
            report
                .histograms
                .iter()
                .map(|h| {
                    (
                        h.name.clone(),
                        JsonValue::Obj(vec![
                            ("count".into(), JsonValue::Int(h.count)),
                            ("sum".into(), JsonValue::Int(h.sum)),
                            ("min".into(), JsonValue::Int(h.min)),
                            ("max".into(), JsonValue::Int(h.max)),
                            (
                                "buckets".into(),
                                JsonValue::Arr(
                                    h.buckets
                                        .iter()
                                        .map(|&(upper, c)| {
                                            JsonValue::Arr(vec![
                                                JsonValue::Int(upper),
                                                JsonValue::Int(c),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ]),
                    )
                })
                .collect(),
        );
        JsonValue::Obj(vec![
            ("counters".into(), counters),
            ("timers".into(), timers),
            ("histograms".into(), histograms),
        ])
    }

    /// Reconstructs a report from [`JsonValue::from_report`]'s shape.
    pub fn into_report(self) -> Result<Report, JsonError> {
        let field = |v: &JsonValue, key: &str| -> Result<u64, JsonError> {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| err(0, format!("missing integer field `{key}`")))
        };
        let mut report = Report::default();
        if let Some(JsonValue::Obj(pairs)) = self.get("counters") {
            for (name, v) in pairs {
                let v = v.as_u64().ok_or_else(|| err(0, "counter not an integer"))?;
                report.counters.push((name.clone(), v));
            }
        }
        if let Some(JsonValue::Obj(pairs)) = self.get("timers") {
            for (name, v) in pairs {
                report.timers.push(TimerStat {
                    name: name.clone(),
                    count: field(v, "count")?,
                    total_ns: field(v, "total_ns")?,
                    max_ns: field(v, "max_ns")?,
                });
            }
        }
        if let Some(JsonValue::Obj(pairs)) = self.get("histograms") {
            for (name, v) in pairs {
                let mut buckets = Vec::new();
                if let Some(JsonValue::Arr(items)) = v.get("buckets") {
                    for item in items {
                        match item {
                            JsonValue::Arr(pair) if pair.len() == 2 => {
                                let upper = pair[0]
                                    .as_u64()
                                    .ok_or_else(|| err(0, "bucket bound not an integer"))?;
                                let count = pair[1]
                                    .as_u64()
                                    .ok_or_else(|| err(0, "bucket count not an integer"))?;
                                buckets.push((upper, count));
                            }
                            _ => return Err(err(0, "bucket entry not a pair")),
                        }
                    }
                }
                report.histograms.push(HistogramStat {
                    name: name.clone(),
                    count: field(v, "count")?,
                    sum: field(v, "sum")?,
                    min: field(v, "min")?,
                    max: field(v, "max")?,
                    buckets,
                });
            }
        }
        Ok(report)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn err(offset: usize, message: impl Into<String>) -> JsonError {
    JsonError {
        offset,
        message: message.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), JsonError> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(err(*pos, format!("expected `{token}`")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|()| JsonValue::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| JsonValue::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected `,` or `]`")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(pairs));
                    }
                    _ => return Err(err(*pos, "expected `,` or `}`")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(err(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| err(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "bad number"))?;
    if text.is_empty() {
        return Err(err(start, "expected value"));
    }
    if !text.contains(['.', 'e', 'E', '-']) {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(JsonValue::Int(n));
        }
    }
    text.parse::<f64>()
        .map(JsonValue::Float)
        .map_err(|_| err(start, "bad number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips() {
        let v = JsonValue::Obj(vec![
            ("a".into(), JsonValue::Int(42)),
            (
                "b".into(),
                JsonValue::Arr(vec![JsonValue::Bool(true), JsonValue::Null]),
            ),
            (
                "c".into(),
                JsonValue::Str("weird \"quotes\"\nand lines".into()),
            ),
            ("d".into(), JsonValue::Float(1.5)),
        ]);
        let text = v.render();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
    }

    #[test]
    fn integral_floats_keep_their_type() {
        let v = JsonValue::Arr(vec![JsonValue::Float(2.0), JsonValue::Int(2)]);
        let text = v.render();
        let back = JsonValue::parse(&text).unwrap();
        assert_eq!(back, v, "rendered as {text}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("12 34").is_err());
        assert!(JsonValue::parse("\"open").is_err());
    }

    #[test]
    fn report_survives_json_round_trip() {
        let report = Report {
            counters: vec![("dse/iteration".into(), 17), ("eval/cache/hit".into(), 3)],
            timers: vec![TimerStat {
                name: "eval/simulate".into(),
                count: 5,
                total_ns: 123_456_789,
                max_ns: 99_999_999,
            }],
            histograms: vec![HistogramStat {
                name: "eval/sim_latency_us".into(),
                count: 5,
                sum: 1234,
                min: 7,
                max: 900,
                buckets: vec![(7, 1), (255, 2), (1023, 2)],
            }],
        };
        let json = report.to_json();
        let back = Report::from_json(&json).expect("parses");
        assert_eq!(back, report);
    }
}
