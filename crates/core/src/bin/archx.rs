//! `archx` — command-line front end for the ArchExplorer reproduction.
//!
//! ```text
//! archx analyze  [suite=spec06|spec17] [workloads=N] [instrs=N] [PARAM=V ...]
//! archx explore  [method=NAME] [budget=N] [suite=...] [instrs=N] [seed=N]
//!                [--journal PATH | --resume PATH] [--cycle-budget N] [--retries N]
//! archx campaign [methods=all|paper|a,b,...] [seeds=1,2,...] [budget=N] [suite=...]
//!                [--jobs N] [--threads N] [--journal DIR | --resume DIR]
//!                [--cycle-budget N] [--retries N]
//! archx export   [workload=NAME] [instrs=N] [seed=N]        # trace to stdout
//! archx import   file=TRACE                                  # analyze external trace
//! archx verify   [--designs N] [--seed N] [--window N] [--report PATH]
//!                [--inject FAULT] [PARAM=V ...]              # invariant sweep
//! archx space                                                # design-space summary
//! ```
//!
//! Parameter overrides use the Table 4 names (`Rob=128`, `IntRf=160`,
//! `Width=6`, `DCacheKb=64`, …). Every command accepts
//! `--telemetry json|pretty|off` (default `off`): after the command runs,
//! the process-wide telemetry report (span timers like `eval/simulate` and
//! `eval/deg/build`, counters like `dse/iteration`, latency histograms) is
//! printed to stderr as JSON or an aligned table.
//!
//! `campaign` runs a full (methods × seeds) comparison. `--jobs N` fans
//! runs out across N worker threads under a global thread governor
//! (`--threads` caps the *total* threads shared by campaign jobs and each
//! run's workload workers), with results printed in deterministic
//! (method, seed) order whatever the completion order. `--journal DIR`
//! gives every run its own journal file inside DIR
//! (`<method>-seed<seed>.jsonl`), and `--resume DIR` warm-starts each run
//! from its own file — safe under concurrency because no two runs share a
//! journal.
//!
//! `explore` campaigns are crash-safe: `--journal PATH` appends every
//! evaluation (design, per-workload PPA, analysis, outcome) to a JSONL
//! write-ahead journal, and `--resume PATH` warm-starts the evaluator from
//! it — journaled designs are replayed from the journal without
//! re-simulation and the simulation budget picks up where the killed run
//! left off. `--cycle-budget N` bounds each simulation; designs that
//! deadlock, exceed the budget, or panic are retried once on a halved
//! instruction window, then quarantined (reported, never Pareto-eligible)
//! while the search continues.
//!
//! `verify` sweeps seeded-random designs × workloads × windows through the
//! simulator with per-cycle invariant checking (`CheckedCore`), the DEG
//! validation oracles (acyclicity, Table 2 endpoints, critical-path
//! exactness) and metamorphic checks; failures shrink to a minimal
//! reproducer and `--report PATH` writes a machine-readable JSON violation
//! report. `--inject rob-off-by-one` intentionally breaks an invariant to
//! prove the checker fires, Table 4 overrides (`Rob=32 ...`) pin a single
//! design for repro runs, and the exit status is nonzero on any violation.

use archexplorer::cliopt::{
    extract_telemetry, get, normalize_flags, parse_kv, parse_method, parse_methods, parse_seeds,
    TelemetryMode,
};
use archexplorer::deg::prelude::*;
use archexplorer::dse::campaign::{build_evaluator, run_method_on, CampaignConfig};
use archexplorer::dse::journal::Journal;
use archexplorer::prelude::*;
use archexplorer::sim::extern_trace;
use archexplorer::telemetry;
use std::collections::HashMap;
use std::process::ExitCode;

fn suite_of(kv: &HashMap<String, String>) -> Suite {
    match kv.get("suite").map(String::as_str) {
        Some("spec17") => Suite::Spec17,
        _ => Suite::Spec06,
    }
}

/// Workload list: `suite_file=PATH` (custom suite description) wins over
/// the bundled `suite=spec06|spec17`.
fn workloads_of(kv: &HashMap<String, String>) -> Result<Vec<Workload>, String> {
    if let Some(path) = kv.get("suite_file") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        return archexplorer::workloads::parse_suite(&text).map_err(|e| e.to_string());
    }
    Ok(suite_of(kv).workloads())
}

fn arch_with_overrides(kv: &HashMap<String, String>) -> Result<MicroArch, String> {
    let mut arch = MicroArch::baseline();
    for (k, v) in kv {
        if let Some(param) = ParamId::ALL.iter().find(|p| format!("{p}") == *k) {
            let value: u32 = v
                .parse()
                .map_err(|_| format!("parameter {k} needs an integer, got `{v}`"))?;
            param.set(&mut arch, value);
        }
    }
    arch.validate().map_err(|e| e.to_string())?;
    Ok(arch)
}

fn cmd_analyze(kv: &HashMap<String, String>) -> Result<(), String> {
    use archexplorer::dse::eval::{Analysis, Evaluator};
    let arch = arch_with_overrides(kv)?;
    let mut suite = workloads_of(kv)?;
    suite.truncate(get(kv, "workloads", usize::MAX).max(1));
    let w = 1.0 / suite.len() as f64;
    for x in &mut suite {
        x.weight = w;
    }
    let evaluator = Evaluator::builder(suite)
        .window(get(kv, "instrs", 20_000))
        .seed(get(kv, "seed", 1))
        .build();
    println!("design: {arch}");
    let e = evaluator
        .evaluate_with(&arch, Analysis::NewDeg)
        .map_err(|failure| format!("evaluation failed: {failure}"))?;
    println!(
        "IPC {:.4}  power {:.4} W  area {:.4} mm²  Perf²/(P×A) {:.4}\n",
        e.ppa.ipc,
        e.ppa.power_w,
        e.ppa.area_mm2,
        e.ppa.tradeoff()
    );
    let report = e.report.ok_or("analysis produced no bottleneck report")?;
    println!("{}", report.render());
    Ok(())
}

/// `progress=1` streams one line per evaluated design to stderr; under
/// `campaign --jobs N` each line carries its run's label.
struct StderrProgress;
impl telemetry::ProgressSink for StderrProgress {
    fn on_progress(&self, p: &telemetry::Progress) {
        eprintln!(
            "  [{}] sims {}/{}  hv {:.4}  best {:.4}",
            p.source, p.sims_done, p.sim_budget, p.hypervolume, p.best_tradeoff
        );
    }
}

fn cmd_explore(kv: &HashMap<String, String>) -> Result<(), String> {
    let method = parse_method(
        kv.get("method")
            .map(String::as_str)
            .unwrap_or("archexplorer"),
    )?;
    let mut suite = workloads_of(kv)?;
    suite.truncate(get(kv, "workloads", usize::MAX).max(1));
    let w = 1.0 / suite.len() as f64;
    for x in &mut suite {
        x.weight = w;
    }
    let cfg = CampaignConfig {
        sim_budget: get(kv, "budget", 240),
        instrs_per_workload: get(kv, "instrs", 20_000),
        seed: get(kv, "seed", 1),
        trace_seed: None,
        threads: archexplorer::dse::default_threads(),
        cycle_budget: kv.get("cycle_budget").and_then(|v| v.parse().ok()),
        max_retries: get(kv, "retries", 1u32),
    };
    eprintln!(
        "exploring with {method} for {} simulations ({} workloads x {} instrs)...",
        cfg.sim_budget,
        suite.len(),
        cfg.instrs_per_workload
    );
    let evaluator = build_evaluator(&suite, &cfg);
    if get(kv, "progress", 0u8) == 1 {
        evaluator.set_progress_sink(std::sync::Arc::new(StderrProgress));
    }
    // The fingerprint pins everything the journal's replayed results
    // depend on; mismatched resumes are rejected field-by-field.
    let fp = evaluator.fingerprint(vec![
        ("method".to_string(), method.to_string()),
        ("search_seed".to_string(), cfg.seed.to_string()),
    ]);
    if kv.contains_key("journal") && kv.contains_key("resume") {
        return Err(
            "use journal=PATH for a fresh campaign or resume=PATH to continue one, not both".into(),
        );
    }
    if let Some(path) = kv.get("resume") {
        let (journal, records) = Journal::resume(path, &fp).map_err(|e| e.to_string())?;
        let replayed = records.len();
        let sims = evaluator.warm_start(records);
        evaluator.set_journal(journal);
        eprintln!(
            "resumed {path}: {replayed} journaled evaluation(s) replayed, \
             {sims}/{} simulations already spent",
            cfg.sim_budget
        );
    } else if let Some(path) = kv.get("journal") {
        let journal = Journal::create(path, &fp).map_err(|e| e.to_string())?;
        evaluator.set_journal(journal);
        eprintln!("journaling evaluations to {path}");
    }
    let log = run_method_on(
        method,
        &DesignSpace::table4(),
        &evaluator,
        cfg.sim_budget,
        cfg.seed,
    );
    if let Some(e) = evaluator.journal_error() {
        eprintln!("warning: journal writes failed ({e}); campaign continued unjournaled");
    }
    let quarantine = evaluator.quarantine();
    if !quarantine.is_empty() {
        eprintln!("quarantined {} design(s):", quarantine.len());
        for q in &quarantine {
            let wl = if q.workload.is_empty() {
                String::new()
            } else {
                format!(" [{}]", q.workload)
            };
            eprintln!("  {}{wl}: {} ({} attempts)", q.arch, q.error, q.attempts);
        }
    }
    eprintln!(
        "simulations spent: {} ({} retried)",
        evaluator.sim_count(),
        evaluator.retry_count()
    );
    let best = log.best_tradeoff().ok_or("no designs explored")?;
    println!("explored {} designs", log.records.len());
    println!("best by Perf²/(P×A): {}", best.arch);
    println!(
        "  IPC {:.4}  power {:.4} W  area {:.4} mm²  trade-off {:.4}",
        best.ppa.ipc,
        best.ppa.power_w,
        best.ppa.area_mm2,
        best.ppa.tradeoff()
    );
    println!("Pareto frontier ({} designs):", log.frontier().len());
    for (arch, ppa) in log.frontier() {
        println!(
            "  ipc={:.4} power={:.4} area={:.4}  {}",
            ppa.ipc, ppa.power_w, ppa.area_mm2, arch
        );
    }
    let hv = hypervolume(
        &log.records.iter().map(|r| r.ppa).collect::<Vec<_>>(),
        &RefPoint::default(),
    );
    println!("Pareto hypervolume: {hv:.4}");
    Ok(())
}

fn cmd_campaign(kv: &HashMap<String, String>) -> Result<(), String> {
    let methods = parse_methods(kv.get("methods").map(String::as_str).unwrap_or("all"))?;
    let seeds: Vec<u64> = match kv.get("seeds") {
        Some(list) => parse_seeds(list)?,
        None => vec![get(kv, "seed", 1u64)],
    };
    let mut suite = workloads_of(kv)?;
    suite.truncate(get(kv, "workloads", usize::MAX).max(1));
    let w = 1.0 / suite.len() as f64;
    for x in &mut suite {
        x.weight = w;
    }
    let jobs = get(kv, "jobs", 1usize).max(1);
    let parallel = ParallelConfig {
        jobs,
        total_threads: get(
            kv,
            "threads",
            jobs.max(archexplorer::dse::default_threads()),
        )
        .max(1),
    };
    let cfg = CampaignConfig {
        sim_budget: get(kv, "budget", 240),
        instrs_per_workload: get(kv, "instrs", 20_000),
        seed: seeds[0],
        trace_seed: kv.get("trace_seed").and_then(|v| v.parse().ok()),
        threads: archexplorer::dse::default_threads(),
        cycle_budget: kv.get("cycle_budget").and_then(|v| v.parse().ok()),
        max_retries: get(kv, "retries", 1u32),
    };
    let specs: Vec<RunSpec> = methods
        .iter()
        .flat_map(|&method| seeds.iter().map(move |&seed| RunSpec { method, seed }))
        .collect();
    eprintln!(
        "campaign: {} method(s) x {} seed(s) = {} run(s); {} job(s) under a \
         {}-thread governor; budget {} sims/run",
        methods.len(),
        seeds.len(),
        specs.len(),
        parallel.jobs,
        parallel.total_threads,
        cfg.sim_budget
    );

    if kv.contains_key("journal") && kv.contains_key("resume") {
        return Err(
            "use journal=DIR for a fresh campaign or resume=DIR to continue one, not both".into(),
        );
    }
    let journal_dir = kv
        .get("journal")
        .or_else(|| kv.get("resume"))
        .map(std::path::PathBuf::from);
    let resuming = kv.contains_key("resume");
    if let Some(dir) = &journal_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    }
    // Each run journals to (or resumes from) its own file inside the
    // campaign directory, so concurrent runs never contend on a journal.
    let setup = move |spec: &RunSpec, evaluator: &Evaluator| -> Result<(), String> {
        let Some(dir) = &journal_dir else {
            return Ok(());
        };
        let path = run_journal_path(dir, spec);
        let fp = evaluator.fingerprint(vec![
            ("method".to_string(), spec.method.to_string()),
            ("search_seed".to_string(), spec.seed.to_string()),
        ]);
        if resuming && path.exists() {
            let (journal, records) = Journal::resume(&path, &fp).map_err(|e| e.to_string())?;
            let replayed = records.len();
            let sims = evaluator.warm_start(records);
            evaluator.set_journal(journal);
            eprintln!(
                "  [{}] resumed {}: {replayed} evaluation(s) replayed, {sims} \
                 simulation(s) already spent",
                spec.label(),
                path.display()
            );
        } else {
            let journal = Journal::create(&path, &fp).map_err(|e| e.to_string())?;
            evaluator.set_journal(journal);
        }
        Ok(())
    };

    let mut runner = CampaignRunner::new().parallel(parallel).setup(&setup);
    if get(kv, "progress", 0u8) == 1 {
        runner = runner.progress_sink(std::sync::Arc::new(StderrProgress));
    }
    let logs = runner
        .run_specs(&specs, &DesignSpace::table4(), &suite, &cfg)
        .map_err(|e| e.to_string())?;

    let r = RefPoint::default();
    let hv_of = |log: &RunLog| {
        hypervolume(
            &log.records.iter().map(|rec| rec.ppa).collect::<Vec<_>>(),
            &r,
        )
    };
    println!(
        "{:<24} {:>8} {:>10} {:>12} {:>12}",
        "run", "designs", "sims", "best P2/PA", "hypervolume"
    );
    for (spec, log) in specs.iter().zip(&logs) {
        let best = log
            .best_tradeoff()
            .map(|rec| rec.ppa.tradeoff())
            .unwrap_or(0.0);
        let sims = log
            .records
            .iter()
            .map(|rec| rec.sims_after)
            .max()
            .unwrap_or(0);
        println!(
            "{:<24} {:>8} {:>10} {:>12.4} {:>12.4}",
            spec.label(),
            log.records.len(),
            sims,
            best,
            hv_of(log)
        );
    }
    if seeds.len() > 1 {
        println!("\nmean final hypervolume over {} seeds:", seeds.len());
        for (mi, method) in methods.iter().enumerate() {
            let hvs: Vec<f64> = logs[mi * seeds.len()..(mi + 1) * seeds.len()]
                .iter()
                .map(hv_of)
                .collect();
            let mean = hvs.iter().sum::<f64>() / hvs.len() as f64;
            let var = hvs.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / hvs.len() as f64;
            println!(
                "  {:<16} {:>12.4} ± {:.4}",
                method.to_string(),
                mean,
                var.sqrt()
            );
        }
    }
    Ok(())
}

fn cmd_export(kv: &HashMap<String, String>) -> Result<(), String> {
    let arch = arch_with_overrides(kv)?;
    let suite = workloads_of(kv)?;
    let name = kv
        .get("workload")
        .cloned()
        .unwrap_or_else(|| suite[0].id.0.to_string());
    let workload = suite
        .iter()
        .find(|w| w.id.0.contains(name.as_str()))
        .ok_or_else(|| format!("no workload matching `{name}`"))?;
    let trace = workload.generate(get(kv, "instrs", 20_000), get(kv, "seed", 1));
    let result = OooCore::new(arch)
        .run(&trace)
        .map_err(|e| format!("simulation failed: {e}"))?;
    print!("{}", extern_trace::export(&result));
    Ok(())
}

fn cmd_import(kv: &HashMap<String, String>) -> Result<(), String> {
    let path = kv.get("file").ok_or("import needs file=PATH")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let result = extern_trace::import(&text).map_err(|e| e.to_string())?;
    println!(
        "imported {} instructions, {} cycles (IPC {:.4})",
        result.stats.committed,
        result.trace.cycles,
        result.stats.ipc()
    );
    let mut deg = induce(build_deg(&result));
    let path_ = archexplorer::deg::critical::critical_path(&mut deg);
    println!(
        "induced DEG: {} vertices, {} edges; critical path length {} (cost {})\n",
        deg.node_count(),
        deg.edge_count(),
        path_.total_delay,
        path_.cost
    );
    println!(
        "{}",
        archexplorer::deg::bottleneck::analyze(&deg, &path_).render()
    );
    Ok(())
}

fn cmd_verify(kv: &HashMap<String, String>) -> Result<(), String> {
    use archexplorer::dse::verify::{run_verify, VerifyConfig};
    use archexplorer::sim::InjectedFault;
    let mut workloads = workloads_of(kv)?;
    workloads.truncate(get(kv, "workloads", usize::MAX).max(1));
    if let Some(name) = kv.get("workload") {
        workloads.retain(|w| w.id.0.contains(name.as_str()));
        if workloads.is_empty() {
            return Err(format!("no workload matching `{name}`"));
        }
    }
    let mut cfg = VerifyConfig {
        designs: get(kv, "designs", 16usize).max(1),
        seed: get(kv, "seed", 1u64),
        window: get(kv, "window", 2_000usize),
        workloads,
        fault: kv
            .get("inject")
            .map(|s| InjectedFault::parse(s))
            .transpose()?,
        metamorphic: get(kv, "metamorphic", 1u8) == 1,
        only_design: None,
    };
    // Table 4 overrides (`Rob=32 Iq=80 ...`) pin a single design — the
    // repro mode the shrunk `command` lines in the JSON report use.
    if kv
        .keys()
        .any(|k| ParamId::ALL.iter().any(|p| format!("{p}") == *k))
    {
        cfg.only_design = Some(arch_with_overrides(kv)?);
    }
    eprintln!(
        "verifying {} design(s) (seed {}, window {}) across {} workload(s)...",
        cfg.only_design.map_or(cfg.designs, |_| 1),
        cfg.seed,
        cfg.window,
        cfg.workloads.len()
    );
    let report = run_verify(&cfg);
    if let Some(path) = kv.get("report") {
        std::fs::write(path, report.to_json()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("violation report written to {path}");
    }
    println!(
        "swept {} design(s), {} check(s) passed, {} violation(s)",
        report.designs,
        report.checks,
        report.violations.len()
    );
    if report.ok() {
        return Ok(());
    }
    for v in &report.violations {
        println!(
            "violation [{}] on {} (window {}): {}",
            v.check, v.workload, v.window, v.detail
        );
        if let Some(r) = &v.shrunk {
            println!("  shrunk repro: {}", r.command);
        }
    }
    Err(format!(
        "{} invariant violation(s)",
        report.violations.len()
    ))
}

fn cmd_space() -> Result<(), String> {
    let space = DesignSpace::table4();
    println!("Table 4 design space: {} designs", space.size());
    for &p in &ParamId::ALL {
        let c = space.candidates(p);
        println!(
            "  {p:<16} {} candidates: {:?}{}",
            c.len(),
            &c[..c.len().min(8)],
            if c.len() > 8 { " ..." } else { "" }
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (args, mode) = match extract_telemetry(&raw) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let args = match normalize_flags(&args) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if mode == TelemetryMode::Off {
        telemetry::global().set_enabled(false);
    }
    let Some(cmd) = args.first() else {
        eprintln!(
            "usage: archx <analyze|explore|campaign|export|import|verify|space> \
             [key=value ...] [--telemetry json|pretty|off]"
        );
        return ExitCode::FAILURE;
    };
    let kv = parse_kv(&args[1..]);
    let result = match cmd.as_str() {
        "analyze" => cmd_analyze(&kv),
        "explore" => cmd_explore(&kv),
        "campaign" => cmd_campaign(&kv),
        "export" => cmd_export(&kv),
        "import" => cmd_import(&kv),
        "verify" => cmd_verify(&kv),
        "space" => cmd_space(),
        other => Err(format!("unknown command `{other}`")),
    };
    match mode {
        TelemetryMode::Off => {}
        TelemetryMode::Json => eprintln!("{}", telemetry::global().report().to_json()),
        TelemetryMode::Pretty => eprint!("{}", telemetry::global().report().to_pretty()),
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
