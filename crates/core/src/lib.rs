#![warn(missing_docs)]
//! # archexplorer — microarchitecture exploration via bottleneck analysis
//!
//! A from-scratch Rust reproduction of *“ArchExplorer: Microarchitecture
//! Exploration Via Bottleneck Analysis”* (MICRO 2023): a cycle-level
//! out-of-order CPU simulator, a McPAT-lite power/area model, the paper's
//! dynamic event-dependence graph (DEG) with induced-DEG critical-path
//! construction and bottleneck attribution, and the bottleneck-removal
//! design-space explorer with four black-box baselines.
//!
//! The crates compose bottom-up:
//!
//! | layer | crate | re-exported as |
//! |---|---|---|
//! | simulator substrate | `archx-sim` | [`sim`] |
//! | SPEC-like workloads | `archx-workloads` | [`workloads`] |
//! | power/area model | `archx-power` | [`power`] |
//! | DEG + critical path | `archx-deg` | [`deg`] |
//! | search + baselines | `archx-dse` | [`dse`] |
//! | metrics + progress | `archx-telemetry` | [`telemetry`] |
//!
//! ## Quickstart
//!
//! ```
//! use archexplorer::prelude::*;
//!
//! // Analyse one design's bottlenecks on a small workload sample.
//! let session = Session::builder()
//!     .suite(Suite::Spec06)
//!     .instrs_per_workload(2_000)
//!     .workload_limit(2)
//!     .threads(1)
//!     .build();
//! let report = session.analyze(&MicroArch::baseline()).expect("analysis");
//! println!("{}", report.render());
//!
//! // Explore: bottleneck-removal-driven DSE under a simulation budget.
//! let log = session.explore(Method::ArchExplorer, 12).expect("exploration");
//! assert!(!log.records.is_empty());
//!
//! // Everything above was measured: dump the telemetry report.
//! println!("{}", archexplorer::telemetry::global().report().to_pretty());
//! ```

pub use archx_deg as deg;
pub use archx_dse as dse;
pub use archx_power as power;
pub use archx_sim as sim;
pub use archx_telemetry as telemetry;
pub use archx_workloads as workloads;

pub mod cliopt;
pub mod session;

pub use session::{Session, SessionBuilder, SessionError, Suite};

/// The most commonly used items across all layers.
pub mod prelude {
    pub use crate::session::{Session, SessionBuilder, SessionError, Suite};
    pub use archx_deg::prelude::*;
    pub use archx_dse::prelude::*;
    pub use archx_power::{PowerModel, PpaResult};
    pub use archx_sim::{MicroArch, OooCore, SimStats};
    pub use archx_workloads::{spec06_suite, spec17_suite, Workload};
}
