//! Shared command-line option parsing for the `archx` CLI and the
//! benchmark binaries.
//!
//! Every front end speaks the same dialect — `key=value` arguments, a few
//! GNU-style flags (`--jobs N`, `--threads N`, `--journal PATH`, …) that
//! normalise to `key=value`, a `--telemetry json|pretty|off` switch, and
//! comma-separated method/seed lists — so the parsing lives here once
//! instead of being copy-pasted per binary.

use archx_dse::campaign::Method;
use std::collections::HashMap;

/// Collects `key=value` arguments into a map; other arguments are ignored
/// (positional commands are handled by the caller).
pub fn parse_kv(args: &[String]) -> HashMap<String, String> {
    args.iter()
        .filter_map(|a| {
            a.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
        })
        .collect()
}

/// Rewrites GNU-style `--journal PATH`, `--resume PATH`, `--cycle-budget N`,
/// `--retries N`, `--jobs N`, `--threads N`, `--designs N`, `--seed N`,
/// `--window N`, `--report PATH` and `--inject FAULT` (including their
/// `--flag=value` forms) into the CLI's native `key=value` arguments.
pub fn normalize_flags(args: &[String]) -> Result<Vec<String>, String> {
    const FLAGS: [(&str, &str); 11] = [
        ("--journal", "journal"),
        ("--resume", "resume"),
        ("--cycle-budget", "cycle_budget"),
        ("--retries", "retries"),
        ("--jobs", "jobs"),
        ("--threads", "threads"),
        ("--designs", "designs"),
        ("--seed", "seed"),
        ("--window", "window"),
        ("--report", "report"),
        ("--inject", "inject"),
    ];
    let mut out = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let Some((flag, key)) = FLAGS.iter().find(|(f, _)| {
            arg == f || (arg.starts_with(f) && arg.as_bytes().get(f.len()) == Some(&b'='))
        }) else {
            out.push(arg.clone());
            continue;
        };
        let value = match arg.split_once('=') {
            Some((_, v)) => v.to_string(),
            None => it
                .next()
                .ok_or_else(|| format!("{flag} needs a value"))?
                .clone(),
        };
        out.push(format!("{key}={value}"));
    }
    Ok(out)
}

/// How a front end renders the telemetry report after its command runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryMode {
    /// Collection disabled; nothing printed.
    Off,
    /// Machine-readable JSON on stderr.
    Json,
    /// Aligned human-readable table on stderr.
    Pretty,
}

impl TelemetryMode {
    /// Parses `json`, `pretty` or `off`.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "off" => Ok(TelemetryMode::Off),
            "json" => Ok(TelemetryMode::Json),
            "pretty" => Ok(TelemetryMode::Pretty),
            other => Err(format!(
                "--telemetry expects json|pretty|off, got `{other}`"
            )),
        }
    }
}

/// Extracts `--telemetry MODE` / `--telemetry=MODE` / `telemetry=MODE`
/// from the argument list, returning the remaining arguments and the mode
/// (default [`TelemetryMode::Off`]).
pub fn extract_telemetry(args: &[String]) -> Result<(Vec<String>, TelemetryMode), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut mode = TelemetryMode::Off;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--telemetry" {
            let value = it
                .next()
                .ok_or("--telemetry needs a value: json|pretty|off")?;
            mode = TelemetryMode::parse(value)?;
        } else if let Some(value) = arg
            .strip_prefix("--telemetry=")
            .or_else(|| arg.strip_prefix("telemetry="))
        {
            mode = TelemetryMode::parse(value)?;
        } else {
            rest.push(arg.clone());
        }
    }
    Ok((rest, mode))
}

/// Typed `key=value` lookup with a default for missing or unparsable
/// values.
pub fn get<T: std::str::FromStr>(kv: &HashMap<String, String>, key: &str, default: T) -> T {
    kv.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Parses one method name (`archexplorer`, `random`, `adaboost`,
/// `archranker`, `boom`/`boom-explorer`, `calipers`).
pub fn parse_method(name: &str) -> Result<Method, String> {
    match name {
        "archexplorer" => Ok(Method::ArchExplorer),
        "random" => Ok(Method::Random),
        "adaboost" => Ok(Method::AdaBoost),
        "archranker" => Ok(Method::ArchRanker),
        "boom" | "boom-explorer" => Ok(Method::BoomExplorer),
        "calipers" => Ok(Method::Calipers),
        other => Err(format!("unknown method `{other}`")),
    }
}

/// Parses a method selection: `all` (every implemented method), `paper`
/// (the Fig. 12 / Table 5 headline set), or a comma-separated list of
/// method names. Rejects selections that name no methods.
pub fn parse_methods(spec: &str) -> Result<Vec<Method>, String> {
    let methods: Vec<Method> = match spec {
        "all" => Method::ALL.to_vec(),
        "paper" => Method::PAPER_SET.to_vec(),
        list => list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(parse_method)
            .collect::<Result<_, _>>()?,
    };
    if methods.is_empty() {
        return Err("method list selected no methods".into());
    }
    Ok(methods)
}

/// Parses a comma-separated seed list (`1,2,3`). Rejects empty lists and
/// unparsable entries.
pub fn parse_seeds(spec: &str) -> Result<Vec<u64>, String> {
    let seeds: Vec<u64> = spec
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().map_err(|_| format!("bad seed `{s}`")))
        .collect::<Result<_, _>>()?;
    if seeds.is_empty() {
        return Err("seed list selected no seeds".into());
    }
    Ok(seeds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn kv_parsing_collects_pairs_and_ignores_positionals() {
        let kv = parse_kv(&strings(&["campaign", "budget=120", "suite=spec17"]));
        assert_eq!(kv.get("budget").map(String::as_str), Some("120"));
        assert_eq!(kv.get("suite").map(String::as_str), Some("spec17"));
        assert!(!kv.contains_key("campaign"));
        assert_eq!(get(&kv, "budget", 0u64), 120);
        assert_eq!(get(&kv, "missing", 7u64), 7);
        assert_eq!(get(&kv, "suite", 0u64), 0, "unparsable falls to default");
    }

    #[test]
    fn flags_normalize_in_both_spellings() {
        let out = normalize_flags(&strings(&[
            "--jobs",
            "4",
            "--threads=8",
            "--journal",
            "/tmp/j",
            "budget=10",
        ]))
        .expect("parses");
        assert_eq!(
            out,
            strings(&["jobs=4", "threads=8", "journal=/tmp/j", "budget=10"])
        );
        // A flag prefix that is not the whole flag name passes through.
        let out = normalize_flags(&strings(&["--jobsx=4"])).expect("parses");
        assert_eq!(out, strings(&["--jobsx=4"]));
    }

    #[test]
    fn flag_without_value_is_an_error() {
        let err = normalize_flags(&strings(&["--jobs"])).expect_err("missing value");
        assert!(err.contains("--jobs"));
    }

    #[test]
    fn telemetry_extraction_accepts_all_spellings() {
        for args in [
            vec!["x=1", "--telemetry", "json"],
            vec!["x=1", "--telemetry=json"],
            vec!["x=1", "telemetry=json"],
        ] {
            let (rest, mode) = extract_telemetry(&strings(&args)).expect("parses");
            assert_eq!(mode, TelemetryMode::Json);
            assert_eq!(rest, strings(&["x=1"]));
        }
        let (_, mode) = extract_telemetry(&strings(&["x=1"])).expect("parses");
        assert_eq!(mode, TelemetryMode::Off);
        assert!(extract_telemetry(&strings(&["--telemetry", "loud"])).is_err());
        assert!(extract_telemetry(&strings(&["--telemetry"])).is_err());
    }

    #[test]
    fn method_lists_parse_named_sets_and_csv() {
        assert_eq!(parse_methods("all").unwrap(), Method::ALL.to_vec());
        assert_eq!(parse_methods("paper").unwrap(), Method::PAPER_SET.to_vec());
        assert_eq!(
            parse_methods("random, boom").unwrap(),
            vec![Method::Random, Method::BoomExplorer]
        );
        assert!(parse_methods("archranker,warp-drive").is_err());
        assert!(parse_methods(",").is_err());
    }

    #[test]
    fn seed_lists_parse_csv() {
        assert_eq!(parse_seeds("1, 2,3").unwrap(), vec![1, 2, 3]);
        assert!(parse_seeds("1,x").is_err());
        assert!(parse_seeds("").is_err());
    }

    #[test]
    fn kv_parsing_handles_degenerate_pairs() {
        // Only the first `=` splits; later ones stay in the value.
        let kv = parse_kv(&strings(&["path=/a=b/c", "eq==", "k="]));
        assert_eq!(kv.get("path").map(String::as_str), Some("/a=b/c"));
        assert_eq!(kv.get("eq").map(String::as_str), Some("="));
        assert_eq!(kv.get("k").map(String::as_str), Some(""));
        // A later duplicate key wins (last-writer collect semantics).
        let kv = parse_kv(&strings(&["seed=1", "seed=2"]));
        assert_eq!(kv.get("seed").map(String::as_str), Some("2"));
    }

    #[test]
    fn verify_flags_normalize_in_both_spellings() {
        let out = normalize_flags(&strings(&[
            "verify",
            "--designs",
            "64",
            "--seed=7",
            "--window",
            "2000",
            "--report=/tmp/r.json",
            "--inject",
            "rob-off-by-one",
        ]))
        .expect("parses");
        assert_eq!(
            out,
            strings(&[
                "verify",
                "designs=64",
                "seed=7",
                "window=2000",
                "report=/tmp/r.json",
                "inject=rob-off-by-one",
            ])
        );
        for flag in ["--designs", "--seed", "--window", "--report", "--inject"] {
            let err = normalize_flags(&strings(&[flag])).expect_err("missing value");
            assert!(err.contains(flag), "{err}");
        }
    }

    #[test]
    fn method_names_reject_near_misses() {
        assert!(parse_method("ArchExplorer").is_err(), "names are lowercase");
        assert!(parse_method("archexplorer ").is_err(), "no trimming here");
        assert!(parse_method("").is_err());
        // The list parser does trim around commas.
        assert_eq!(
            parse_methods(" archexplorer ").unwrap(),
            vec![Method::ArchExplorer]
        );
    }

    #[test]
    fn seed_lists_reject_malformed_numbers() {
        assert!(parse_seeds("-1").is_err(), "seeds are unsigned");
        assert!(parse_seeds("1.5").is_err());
        assert!(parse_seeds("0x10").is_err());
        assert!(parse_seeds(",,,").is_err(), "only separators is empty");
        assert!(parse_seeds("18446744073709551616").is_err(), "u64 overflow");
        assert_eq!(parse_seeds("18446744073709551615").unwrap(), vec![u64::MAX]);
    }
}
