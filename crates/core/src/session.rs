//! A high-level session API tying the simulator, power model, DEG
//! analysis and explorers together behind one builder.

use archx_deg::BottleneckReport;
use archx_dse::campaign::{run_method_observed, CampaignConfig, Method};
use archx_dse::eval::{Analysis, DesignEval, EvalFailure, Evaluator, RunLog, SimLimits};
use archx_dse::space::DesignSpace;
use archx_sim::MicroArch;
use archx_telemetry::ProgressSink;
use archx_workloads::{spec06_suite, spec17_suite, TraceStore, Workload};
use std::sync::Arc;

/// Which bundled workload suite to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// The 12 SPEC CPU2006-like workloads.
    Spec06,
    /// The 14 SPEC CPU2017-like workloads.
    Spec17,
}

impl Suite {
    /// Materialises the workload list.
    pub fn workloads(self) -> Vec<Workload> {
        match self {
            Suite::Spec06 => spec06_suite(),
            Suite::Spec17 => spec17_suite(),
        }
    }
}

/// Errors surfaced by [`Session`] operations.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// The evaluator produced no bottleneck report for the requested
    /// analysis backend (it evaluated, but analysis yielded nothing).
    MissingReport {
        /// The analysis backend that was requested.
        analysis: Analysis,
    },
    /// An exploration run evaluated no designs (e.g. a zero budget).
    EmptyExploration {
        /// The method that was run.
        method: Method,
        /// The simulation budget it was given.
        sim_budget: u64,
    },
    /// A design evaluation failed past its retry budget and was
    /// quarantined (typed simulator error, worker panic, or non-finite
    /// PPA).
    EvaluationFailed {
        /// The design that failed.
        arch: MicroArch,
        /// Why it failed and how many attempts were made (boxed to keep
        /// the error type small on the happy path).
        failure: Box<EvalFailure>,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::MissingReport { analysis } => {
                write!(
                    f,
                    "evaluation produced no bottleneck report for {analysis:?}"
                )
            }
            SessionError::EmptyExploration { method, sim_budget } => {
                write!(
                    f,
                    "{method} explored no designs within a budget of {sim_budget} simulations"
                )
            }
            SessionError::EvaluationFailed { arch, failure } => {
                write!(f, "evaluation of {arch} failed: {failure}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// Builder for [`Session`].
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    suite: Suite,
    workload_limit: usize,
    instrs_per_workload: usize,
    seed: u64,
    trace_seed: Option<u64>,
    threads: usize,
    cycle_budget: Option<u64>,
    max_retries: u32,
    trace_store: Option<Arc<TraceStore>>,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        SessionBuilder {
            suite: Suite::Spec06,
            workload_limit: usize::MAX,
            instrs_per_workload: 10_000,
            seed: 1,
            trace_seed: None,
            threads: archx_dse::default_threads(),
            cycle_budget: None,
            max_retries: 1,
            trace_store: None,
        }
    }
}

impl SessionBuilder {
    /// Selects the workload suite.
    pub fn suite(mut self, suite: Suite) -> Self {
        self.suite = suite;
        self
    }

    /// Uses only the first `n` workloads (useful for fast experiments).
    pub fn workload_limit(mut self, n: usize) -> Self {
        self.workload_limit = n.max(1);
        self
    }

    /// Instructions simulated per workload (the paper's analysis window).
    pub fn instrs_per_workload(mut self, n: usize) -> Self {
        self.instrs_per_workload = n.max(100);
        self
    }

    /// Search seed (also the trace seed unless [`Self::trace_seed`] is set).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Fixes the workload-trace seed independently of the search seed, so
    /// seed sweeps measure search variance rather than workload variance.
    pub fn trace_seed(mut self, seed: u64) -> Self {
        self.trace_seed = Some(seed);
        self
    }

    /// Worker threads for workload-parallel simulation.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Hard per-simulation cycle budget (`None` = unlimited). Runs that
    /// exceed it fail with a typed error instead of spinning forever.
    pub fn cycle_budget(mut self, budget: Option<u64>) -> Self {
        self.cycle_budget = budget;
        self
    }

    /// Retries allowed per failed evaluation (each with a halved
    /// instruction window) before the design is quarantined.
    pub fn max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Resolves workload traces through `store` instead of the
    /// process-global [`TraceStore`]. Sessions sharing a store share
    /// their synthesised traces zero-copy.
    pub fn trace_store(mut self, store: Arc<TraceStore>) -> Self {
        self.trace_store = Some(store);
        self
    }

    /// Builds the session (resolves the workload traces through the
    /// trace store, synthesising only those not already shared).
    pub fn build(self) -> Session {
        let mut suite = self.suite.workloads();
        suite.truncate(self.workload_limit);
        let w = 1.0 / suite.len() as f64;
        for wl in &mut suite {
            wl.weight = w;
        }
        let evaluator = Evaluator::builder(suite.clone())
            .window(self.instrs_per_workload)
            .seed(self.trace_seed.unwrap_or(self.seed))
            .trace_store(self.trace_store.unwrap_or_else(TraceStore::global))
            .threads(self.threads)
            .limits(SimLimits {
                cycle_budget: self.cycle_budget,
                ..SimLimits::default()
            })
            .max_retries(self.max_retries)
            .build();
        Session {
            space: DesignSpace::table4(),
            suite,
            evaluator,
            instrs_per_workload: self.instrs_per_workload,
            seed: self.seed,
            trace_seed: self.trace_seed,
            threads: self.threads,
            cycle_budget: self.cycle_budget,
            max_retries: self.max_retries,
        }
    }
}

/// A configured exploration/analysis session.
#[derive(Debug)]
pub struct Session {
    space: DesignSpace,
    suite: Vec<Workload>,
    evaluator: Evaluator,
    instrs_per_workload: usize,
    seed: u64,
    trace_seed: Option<u64>,
    threads: usize,
    cycle_budget: Option<u64>,
    max_retries: u32,
}

impl Session {
    /// Starts building a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The Table 4 design space.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// The session's workload suite.
    pub fn suite(&self) -> &[Workload] {
        &self.suite
    }

    /// The shared evaluator (design cache + simulation counter).
    pub fn evaluator(&self) -> &Evaluator {
        &self.evaluator
    }

    /// Simulates a design over the suite and returns its PPA evaluation.
    /// A design that fails past its retry budget is quarantined and the
    /// failure surfaced as [`SessionError::EvaluationFailed`].
    pub fn evaluate(&self, arch: &MicroArch) -> Result<DesignEval, SessionError> {
        self.evaluator
            .evaluate(arch)
            .map_err(|failure| SessionError::EvaluationFailed {
                arch: *arch,
                failure: Box::new(failure),
            })
    }

    /// Full bottleneck analysis of a design (new DEG, merged over the
    /// suite with Eq. 2 weights).
    pub fn analyze(&self, arch: &MicroArch) -> Result<BottleneckReport, SessionError> {
        self.evaluator
            .evaluate_with(arch, Analysis::NewDeg)
            .map_err(|failure| SessionError::EvaluationFailed {
                arch: *arch,
                failure: Box::new(failure),
            })?
            .report
            .ok_or(SessionError::MissingReport {
                analysis: Analysis::NewDeg,
            })
    }

    /// Runs one DSE method for `sim_budget` simulations on a **fresh**
    /// evaluator (so methods never share caches or budgets).
    pub fn explore(&self, method: Method, sim_budget: u64) -> Result<RunLog, SessionError> {
        self.explore_inner(method, sim_budget, None)
    }

    /// Like [`Session::explore`], but streams per-evaluation progress
    /// events (simulations done vs. budget, hypervolume, best trade-off)
    /// to `sink` while the search runs.
    pub fn explore_observed(
        &self,
        method: Method,
        sim_budget: u64,
        sink: Arc<dyn ProgressSink>,
    ) -> Result<RunLog, SessionError> {
        self.explore_inner(method, sim_budget, Some(sink))
    }

    fn explore_inner(
        &self,
        method: Method,
        sim_budget: u64,
        sink: Option<Arc<dyn ProgressSink>>,
    ) -> Result<RunLog, SessionError> {
        let cfg = CampaignConfig {
            sim_budget,
            instrs_per_workload: self.instrs_per_workload,
            seed: self.seed,
            trace_seed: self.trace_seed,
            threads: self.threads,
            cycle_budget: self.cycle_budget,
            max_retries: self.max_retries,
        };
        let log = run_method_observed(method, &self.space, &self.suite, &cfg, sink);
        if log.records.is_empty() {
            return Err(SessionError::EmptyExploration { method, sim_budget });
        }
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archx_telemetry::CollectingSink;

    fn tiny() -> Session {
        Session::builder()
            .suite(Suite::Spec06)
            .workload_limit(2)
            .instrs_per_workload(1_000)
            .threads(1)
            .build()
    }

    #[test]
    fn builder_limits_and_reweights() {
        let s = tiny();
        assert_eq!(s.suite().len(), 2);
        let total: f64 = s.suite().iter().map(|w| w.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn evaluate_and_analyze() {
        let s = tiny();
        let e = s.evaluate(&MicroArch::baseline()).expect("evaluates");
        assert!(e.ppa.ipc > 0.0);
        let rep = s
            .analyze(&MicroArch::baseline())
            .expect("analysis succeeds");
        assert!(rep.length > 0);
    }

    #[test]
    fn explore_runs_each_method_fresh() {
        let s = tiny();
        let log = s
            .explore(Method::Random, 6)
            .expect("nonzero budget explores");
        assert!(!log.records.is_empty());
        // The session evaluator is untouched by exploration.
        assert_eq!(s.evaluator().sim_count(), 0);
    }

    #[test]
    fn explore_with_zero_budget_is_an_error() {
        let s = tiny();
        let err = s.explore(Method::Random, 0).expect_err("zero budget");
        assert_eq!(
            err,
            SessionError::EmptyExploration {
                method: Method::Random,
                sim_budget: 0
            }
        );
        assert!(err.to_string().contains("budget of 0"));
    }

    #[test]
    fn explore_reports_exact_sim_count_through_sink() {
        let s = tiny(); // 2 workloads => 2 sims per design
        let sink = Arc::new(CollectingSink::new());
        let budget = 6;
        let log = s
            .explore_observed(Method::Random, budget, sink.clone())
            .expect("explores");
        // Random search evaluates whole designs: with 2 workloads and a
        // budget of 6, exactly 3 designs = 6 simulations are reported.
        assert_eq!(sink.max_sims_done(), budget);
        assert_eq!(sink.len(), log.records.len());
        let last = sink.last().expect("events were emitted");
        assert_eq!(last.sim_budget, budget);
        assert_eq!(last.source, Method::Random.to_string());
        assert!(last.hypervolume > 0.0);
    }

    #[test]
    fn trace_seed_decouples_search_from_traces() {
        let mk = |seed: u64| {
            Session::builder()
                .workload_limit(2)
                .instrs_per_workload(800)
                .threads(1)
                .seed(seed)
                .trace_seed(7)
                .build()
        };
        // Same trace seed: identical workload traces, so the same design
        // evaluates identically regardless of the search seed.
        let a = mk(1).evaluate(&MicroArch::baseline()).expect("evaluates");
        let b = mk(2).evaluate(&MicroArch::baseline()).expect("evaluates");
        assert_eq!(a, b);
    }

    #[test]
    fn cycle_budget_failure_surfaces_as_session_error() {
        let s = Session::builder()
            .workload_limit(1)
            .instrs_per_workload(500)
            .threads(1)
            .cycle_budget(Some(3))
            .max_retries(0)
            .build();
        let err = s
            .evaluate(&MicroArch::baseline())
            .expect_err("a 3-cycle budget cannot finish any workload");
        match &err {
            SessionError::EvaluationFailed { failure, .. } => {
                assert_eq!(failure.error.tag(), "cycle_budget");
            }
            other => panic!("unexpected error: {other}"),
        }
        assert!(err.to_string().contains("cycle budget"));
        assert_eq!(s.evaluator().quarantine_len(), 1);
    }

    #[test]
    fn spec17_suite_selectable() {
        let s = Session::builder()
            .suite(Suite::Spec17)
            .workload_limit(3)
            .instrs_per_workload(500)
            .threads(1)
            .build();
        assert_eq!(s.suite().len(), 3);
    }
}
