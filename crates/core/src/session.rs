//! A high-level session API tying the simulator, power model, DEG
//! analysis and explorers together behind one builder.

use archx_deg::BottleneckReport;
use archx_dse::campaign::{run_method, CampaignConfig, Method};
use archx_dse::eval::{Analysis, DesignEval, Evaluator, RunLog};
use archx_dse::space::DesignSpace;
use archx_sim::MicroArch;
use archx_workloads::{spec06_suite, spec17_suite, Workload};

/// Which bundled workload suite to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// The 12 SPEC CPU2006-like workloads.
    Spec06,
    /// The 14 SPEC CPU2017-like workloads.
    Spec17,
}

impl Suite {
    /// Materialises the workload list.
    pub fn workloads(self) -> Vec<Workload> {
        match self {
            Suite::Spec06 => spec06_suite(),
            Suite::Spec17 => spec17_suite(),
        }
    }
}

/// Builder for [`Session`].
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    suite: Suite,
    workload_limit: usize,
    instrs_per_workload: usize,
    seed: u64,
    threads: usize,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        SessionBuilder {
            suite: Suite::Spec06,
            workload_limit: usize::MAX,
            instrs_per_workload: 10_000,
            seed: 1,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get().min(8)),
        }
    }
}

impl SessionBuilder {
    /// Selects the workload suite.
    pub fn suite(mut self, suite: Suite) -> Self {
        self.suite = suite;
        self
    }

    /// Uses only the first `n` workloads (useful for fast experiments).
    pub fn workload_limit(mut self, n: usize) -> Self {
        self.workload_limit = n.max(1);
        self
    }

    /// Instructions simulated per workload (the paper's analysis window).
    pub fn instrs_per_workload(mut self, n: usize) -> Self {
        self.instrs_per_workload = n.max(100);
        self
    }

    /// Trace/search seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Worker threads for workload-parallel simulation.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Builds the session (synthesises the workload traces).
    pub fn build(self) -> Session {
        let mut suite = self.suite.workloads();
        suite.truncate(self.workload_limit);
        let w = 1.0 / suite.len() as f64;
        for wl in &mut suite {
            wl.weight = w;
        }
        let evaluator =
            Evaluator::new(suite.clone(), self.instrs_per_workload, self.seed).with_threads(self.threads);
        Session {
            space: DesignSpace::table4(),
            suite,
            evaluator,
            instrs_per_workload: self.instrs_per_workload,
            seed: self.seed,
            threads: self.threads,
        }
    }
}

/// A configured exploration/analysis session.
#[derive(Debug)]
pub struct Session {
    space: DesignSpace,
    suite: Vec<Workload>,
    evaluator: Evaluator,
    instrs_per_workload: usize,
    seed: u64,
    threads: usize,
}

impl Session {
    /// Starts building a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The Table 4 design space.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// The session's workload suite.
    pub fn suite(&self) -> &[Workload] {
        &self.suite
    }

    /// The shared evaluator (design cache + simulation counter).
    pub fn evaluator(&self) -> &Evaluator {
        &self.evaluator
    }

    /// Simulates a design over the suite and returns its PPA evaluation.
    pub fn evaluate(&self, arch: &MicroArch) -> DesignEval {
        self.evaluator.evaluate(arch, false)
    }

    /// Full bottleneck analysis of a design (new DEG, merged over the
    /// suite with Eq. 2 weights).
    pub fn analyze(&self, arch: &MicroArch) -> BottleneckReport {
        self.evaluator
            .evaluate_with(arch, Analysis::NewDeg)
            .report
            .expect("analysis requested")
    }

    /// Runs one DSE method for `sim_budget` simulations on a **fresh**
    /// evaluator (so methods never share caches or budgets).
    pub fn explore(&self, method: Method, sim_budget: u64) -> RunLog {
        let cfg = CampaignConfig {
            sim_budget,
            instrs_per_workload: self.instrs_per_workload,
            seed: self.seed,
        trace_seed: None,
            threads: self.threads,
        };
        run_method(method, &self.space, &self.suite, &cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Session {
        Session::builder()
            .suite(Suite::Spec06)
            .workload_limit(2)
            .instrs_per_workload(1_000)
            .threads(1)
            .build()
    }

    #[test]
    fn builder_limits_and_reweights() {
        let s = tiny();
        assert_eq!(s.suite().len(), 2);
        let total: f64 = s.suite().iter().map(|w| w.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn evaluate_and_analyze() {
        let s = tiny();
        let e = s.evaluate(&MicroArch::baseline());
        assert!(e.ppa.ipc > 0.0);
        let rep = s.analyze(&MicroArch::baseline());
        assert!(rep.length > 0);
    }

    #[test]
    fn explore_runs_each_method_fresh() {
        let s = tiny();
        let log = s.explore(Method::Random, 6);
        assert!(!log.records.is_empty());
        // The session evaluator is untouched by exploration.
        assert_eq!(s.evaluator().sim_count(), 0);
    }

    #[test]
    fn spec17_suite_selectable() {
        let s = Session::builder()
            .suite(Suite::Spec17)
            .workload_limit(3)
            .instrs_per_workload(500)
            .threads(1)
            .build();
        assert_eq!(s.suite().len(), 3);
    }
}
