//! Method-versus-method campaigns: run every DSE algorithm on identical
//! evaluators/budgets and collect their hypervolume-versus-simulations
//! curves (the machinery behind the paper's Figure 12 and Table 5).
//!
//! ## Concurrency model
//!
//! Every (method × seed) run owns a fresh evaluator and a deterministic
//! RNG, so runs are embarrassingly parallel. [`CampaignRunner`] fans runs
//! out across `jobs` worker threads under a shared [`ThreadGovernor`]
//! bounding *total* threads (campaign jobs plus each evaluator's workload
//! workers never exceed `total_threads`), with:
//!
//! * **deterministic ordering** — logs land in pre-allocated slots in the
//!   caller's (method, seed) order regardless of completion order, and a
//!   run's results are independent of worker-thread count, so `jobs = 4`
//!   produces byte-identical [`RunLog`]s to `jobs = 1`;
//! * **labelled progress** — a shared progress sink is wrapped per run in
//!   an [`archx_telemetry::LabelledSink`] so interleaved events remain
//!   attributable (`"ArchExplorer[s3]"`);
//! * **per-run journals** — [`run_journal_path`] gives each run its own
//!   journal file inside a campaign directory, so `--journal`/`--resume`
//!   keep working when runs execute concurrently.

use crate::archexplorer::{run_archexplorer, ArchExplorerOptions};
use crate::baselines::adaboost::AdaBoostOptions;
use crate::baselines::boom::BoomOptions;
use crate::baselines::ranker::RankerOptions;
use crate::baselines::{
    run_adaboost, run_archranker, run_boom_explorer, run_calipers_dse, run_random_search,
};
use crate::eval::{Evaluator, RunLog, SimLimits};
use crate::governor::ThreadGovernor;
use crate::pareto::RefPoint;
use crate::space::DesignSpace;
use archx_telemetry::{self as telemetry, LabelledSink, ProgressSink};
use archx_workloads::{TraceStore, Workload};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The DSE methods under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Bottleneck-removal-driven search with the new DEG (this paper).
    ArchExplorer,
    /// Uniform random search.
    Random,
    /// AdaBoost.RT surrogate screening.
    AdaBoost,
    /// Pairwise-ranking surrogate (ArchRanker).
    ArchRanker,
    /// Gaussian-process Bayesian optimisation (BOOM-Explorer).
    BoomExplorer,
    /// Bottleneck-removal with the prior DEG formulation (Calipers).
    Calipers,
}

impl Method {
    /// The methods of the paper's headline comparison (Fig. 12 / Table 5).
    pub const PAPER_SET: [Method; 4] = [
        Method::ArchExplorer,
        Method::AdaBoost,
        Method::ArchRanker,
        Method::BoomExplorer,
    ];

    /// All implemented methods.
    pub const ALL: [Method; 6] = [
        Method::ArchExplorer,
        Method::Random,
        Method::AdaBoost,
        Method::ArchRanker,
        Method::BoomExplorer,
        Method::Calipers,
    ];
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Method::ArchExplorer => "ArchExplorer",
            Method::Random => "Random",
            Method::AdaBoost => "AdaBoost",
            Method::ArchRanker => "ArchRanker",
            Method::BoomExplorer => "BOOM-Explorer",
            Method::Calipers => "Calipers",
        };
        f.write_str(s)
    }
}

/// Campaign configuration shared by all methods.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Simulation budget per method.
    pub sim_budget: u64,
    /// Instructions simulated per workload during DSE (the paper's 100 K
    /// analysis window, scaled to taste).
    pub instrs_per_workload: usize,
    /// Search seed (also the trace seed unless `trace_seed` is set).
    pub seed: u64,
    /// Fixes the workload-trace seed independently of the search seed —
    /// seed sweeps use this so their error bars measure search variance,
    /// not workload variance.
    pub trace_seed: Option<u64>,
    /// Worker threads per evaluator.
    pub threads: usize,
    /// Per-simulation cycle budget (`None` = unlimited). Designs that
    /// exceed it fail as data and are quarantined instead of hanging the
    /// campaign.
    pub cycle_budget: Option<u64>,
    /// Retries (with a halved instruction window each time) before a
    /// failing design is quarantined.
    pub max_retries: u32,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            sim_budget: 240,
            instrs_per_workload: 10_000,
            seed: 1,
            trace_seed: None,
            threads: crate::default_threads(),
            cycle_budget: None,
            max_retries: 1,
        }
    }
}

/// Builds the evaluator [`run_method`] would use for this configuration.
/// Exposed so callers can attach a journal / warm-start it before calling
/// [`run_method_on`]. Traces resolve through the process-global
/// [`TraceStore`], so every evaluator a campaign builds for the same
/// `(workload, trace seed, window)` shares one synthesised trace.
pub fn build_evaluator(suite: &[Workload], cfg: &CampaignConfig) -> Evaluator {
    build_evaluator_in(suite, cfg, TraceStore::global())
}

/// Like [`build_evaluator`], resolving traces through a caller-supplied
/// [`TraceStore`] — useful to isolate a campaign's hit/miss accounting or
/// to bound the store's lifetime to the campaign.
pub fn build_evaluator_in(
    suite: &[Workload],
    cfg: &CampaignConfig,
    store: Arc<TraceStore>,
) -> Evaluator {
    Evaluator::builder(suite.to_vec())
        .window(cfg.instrs_per_workload)
        .seed(cfg.trace_seed.unwrap_or(cfg.seed))
        .trace_store(store)
        .threads(cfg.threads)
        .limits(SimLimits {
            cycle_budget: cfg.cycle_budget,
            deadlock_watchdog: SimLimits::default().deadlock_watchdog,
        })
        .max_retries(cfg.max_retries)
        .build()
}

/// Runs one method on a fresh evaluator over the given suite.
pub fn run_method(
    method: Method,
    space: &DesignSpace,
    suite: &[Workload],
    cfg: &CampaignConfig,
) -> RunLog {
    run_method_observed(method, space, suite, cfg, None)
}

/// Like [`run_method`], but additionally streams per-evaluation
/// [`archx_telemetry::Progress`] events (simulations done vs. budget,
/// hypervolume, best trade-off) to `sink`. Events also reach any sinks
/// registered on the global telemetry registry either way.
pub fn run_method_observed(
    method: Method,
    space: &DesignSpace,
    suite: &[Workload],
    cfg: &CampaignConfig,
    sink: Option<std::sync::Arc<dyn archx_telemetry::ProgressSink>>,
) -> RunLog {
    let evaluator = build_evaluator(suite, cfg);
    if let Some(sink) = sink {
        evaluator.set_progress_sink(sink);
    }
    run_method_on(method, space, &evaluator, cfg.sim_budget, cfg.seed)
}

/// Runs one method on a caller-supplied evaluator — the entry point for
/// resumable campaigns, where the evaluator was warm-started from a
/// journal (and keeps journaling) before the search begins. The search is
/// deterministic given `seed`, so a warm-started evaluator replays the
/// journaled prefix from cache and spends simulations only past it.
pub fn run_method_on(
    method: Method,
    space: &DesignSpace,
    evaluator: &Evaluator,
    sim_budget: u64,
    seed: u64,
) -> RunLog {
    let _timed = archx_telemetry::span("dse/run_method");
    evaluator.set_progress_target(method.to_string(), sim_budget);
    let ax_opts = ArchExplorerOptions {
        seed,
        ..ArchExplorerOptions::default()
    };
    match method {
        Method::ArchExplorer => run_archexplorer(space, evaluator, sim_budget, &ax_opts),
        Method::Random => run_random_search(space, evaluator, sim_budget, seed),
        Method::AdaBoost => run_adaboost(
            space,
            evaluator,
            sim_budget,
            seed,
            &AdaBoostOptions::default(),
        ),
        Method::ArchRanker => run_archranker(
            space,
            evaluator,
            sim_budget,
            seed,
            &RankerOptions::default(),
        ),
        Method::BoomExplorer => {
            run_boom_explorer(space, evaluator, sim_budget, seed, &BoomOptions::default())
        }
        Method::Calipers => run_calipers_dse(space, evaluator, sim_budget, &ax_opts),
    }
}

/// One unit of campaign work: a method run under a specific search seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RunSpec {
    /// The method to run.
    pub method: Method,
    /// The search seed for this run.
    pub seed: u64,
}

impl RunSpec {
    /// Human-readable run label (`"ArchExplorer[s3]"`), used for progress
    /// events and error messages.
    pub fn label(&self) -> String {
        format!("{}[s{}]", self.method, self.seed)
    }
}

/// Journal file for one campaign run inside `dir`:
/// `<method-slug>-seed<seed>.jsonl`. The slug is filesystem-safe
/// (lowercase alphanumerics, other characters become `-`) and the name is
/// unique per (method, seed), so concurrent runs never share a journal.
pub fn run_journal_path(dir: &Path, spec: &RunSpec) -> PathBuf {
    let slug: String = spec
        .method
        .to_string()
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect();
    dir.join(format!("{slug}-seed{}.jsonl", spec.seed))
}

/// Campaign-level parallelism: how many runs execute concurrently and the
/// global thread budget they share.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Concurrent (method × seed) runs. 1 = sequential.
    pub jobs: usize,
    /// Global thread budget shared by campaign jobs *and* their
    /// evaluators' workload workers (see [`ThreadGovernor`]). When it is
    /// smaller than `jobs`, runs are throttled rather than oversubscribed.
    pub total_threads: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            jobs: 1,
            total_threads: crate::default_threads(),
        }
    }
}

impl ParallelConfig {
    /// `jobs` concurrent runs with a thread budget that accommodates them
    /// (`max(jobs, default_threads())`).
    pub fn with_jobs(jobs: usize) -> Self {
        let jobs = jobs.max(1);
        ParallelConfig {
            jobs,
            total_threads: jobs.max(crate::default_threads()),
        }
    }
}

/// Campaign execution and aggregation errors.
#[derive(Debug)]
pub enum CampaignError {
    /// Per-run setup (journal attach / warm start) failed.
    Setup {
        /// Label of the run whose setup failed.
        run: String,
        /// What went wrong.
        message: String,
    },
    /// Two seeds of one method disagreed on a hypervolume-curve budget
    /// coordinate — their curves cannot be aggregated point-by-point.
    BudgetMisaligned {
        /// Method whose curves disagree.
        method: String,
        /// Index of the first disagreeing point.
        index: usize,
        /// Coordinate of the first seed's curve at that index.
        expected: u64,
        /// The disagreeing coordinate.
        found: u64,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Setup { run, message } => {
                write!(f, "campaign run {run}: setup failed: {message}")
            }
            CampaignError::BudgetMisaligned {
                method,
                index,
                expected,
                found,
            } => write!(
                f,
                "sweep[{method}]: seeds disagree on budget coordinate at point {index} \
                 ({expected} vs {found}); curves were sampled on different grids"
            ),
        }
    }
}

impl std::error::Error for CampaignError {}

/// Per-run evaluator preparation hook (journal attachment, warm start),
/// invoked after the evaluator is built and before the search starts. May
/// run on a campaign worker thread.
pub type RunSetup<'a> = dyn Fn(&RunSpec, &Evaluator) -> Result<(), String> + Sync + 'a;

/// Executes campaign runs — sequentially or fanned out across a worker
/// pool under a global [`ThreadGovernor`] — with deterministic result
/// ordering, per-run progress labelling, and optional per-run setup.
pub struct CampaignRunner<'a> {
    parallel: ParallelConfig,
    sink: Option<Arc<dyn ProgressSink>>,
    setup: Option<&'a RunSetup<'a>>,
    trace_store: Option<Arc<TraceStore>>,
}

impl fmt::Debug for CampaignRunner<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CampaignRunner")
            .field("parallel", &self.parallel)
            .field("sink", &self.sink.is_some())
            .field("setup", &self.setup.is_some())
            .field("trace_store", &self.trace_store.is_some())
            .finish()
    }
}

impl Default for CampaignRunner<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> CampaignRunner<'a> {
    /// A sequential runner (jobs = 1, default thread budget).
    pub fn new() -> Self {
        CampaignRunner {
            parallel: ParallelConfig::default(),
            sink: None,
            setup: None,
            trace_store: None,
        }
    }

    /// Sets campaign-level parallelism.
    pub fn parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// Attaches a progress sink shared by every run; each run's events
    /// are relabelled with its [`RunSpec::label`] before forwarding.
    pub fn progress_sink(mut self, sink: Arc<dyn ProgressSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Attaches a per-run setup hook (journal attachment, warm start).
    pub fn setup(mut self, setup: &'a RunSetup<'a>) -> Self {
        self.setup = Some(setup);
        self
    }

    /// Resolves every run's traces through `store` instead of the
    /// process-global [`TraceStore`]. All runs of a campaign share one
    /// trace seed, so each `(workload, window)` pair is synthesised at
    /// most once for the whole campaign — even at `jobs > 1`, where the
    /// first-arriving job synthesises and the rest share the `Arc`.
    pub fn trace_store(mut self, store: Arc<TraceStore>) -> Self {
        self.trace_store = Some(store);
        self
    }

    /// Runs every spec and returns logs **in spec order**, regardless of
    /// completion order. Each run gets a fresh evaluator seeded with the
    /// spec's search seed; workload traces are pinned to
    /// `cfg.trace_seed.unwrap_or(cfg.seed)` for every run, so multi-seed
    /// campaigns measure search variance, not workload variance.
    pub fn run_specs(
        &self,
        specs: &[RunSpec],
        space: &DesignSpace,
        suite: &[Workload],
        cfg: &CampaignConfig,
    ) -> Result<Vec<RunLog>, CampaignError> {
        let _timed = telemetry::span("dse/campaign");
        let governor = ThreadGovernor::new(self.parallel.total_threads);
        let jobs = self.parallel.jobs.clamp(1, specs.len().max(1));
        telemetry::counter_add("campaign/runs", specs.len() as u64);

        let run_one = |spec: &RunSpec| -> Result<RunLog, CampaignError> {
            // A campaign job works under one base governor permit; the
            // evaluator claims extra worker permits only when free.
            let _base = governor.acquire();
            let run_cfg = CampaignConfig {
                seed: spec.seed,
                trace_seed: Some(cfg.trace_seed.unwrap_or(cfg.seed)),
                ..cfg.clone()
            };
            let store = self.trace_store.clone().unwrap_or_else(TraceStore::global);
            let evaluator =
                build_evaluator_in(suite, &run_cfg, store).with_governor(Arc::clone(&governor));
            if let Some(sink) = &self.sink {
                evaluator
                    .set_progress_sink(Arc::new(LabelledSink::new(spec.label(), Arc::clone(sink))));
            }
            if let Some(setup) = self.setup {
                setup(spec, &evaluator).map_err(|message| CampaignError::Setup {
                    run: spec.label(),
                    message,
                })?;
            }
            Ok(run_method_on(
                spec.method,
                space,
                &evaluator,
                run_cfg.sim_budget,
                run_cfg.seed,
            ))
        };

        if jobs <= 1 {
            return specs.iter().map(run_one).collect();
        }

        // Worker pool with deterministic, pre-allocated result slots:
        // workers pull the next spec index and write into slots[i], so
        // the output order is the caller's spec order however the runs
        // interleave.
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<RunLog, CampaignError>>>> =
            specs.iter().map(|_| Mutex::new(None)).collect();
        crossbeam::scope(|s| {
            for _ in 0..jobs {
                s.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= specs.len() {
                        break;
                    }
                    *slots[i].lock() = Some(run_one(&specs[i]));
                });
            }
        })
        .expect("campaign jobs do not panic");
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every spec ran"))
            .collect()
    }

    /// Runs `methods` at `cfg.seed` and collects the campaign.
    pub fn run(
        &self,
        methods: &[Method],
        space: &DesignSpace,
        suite: &[Workload],
        cfg: &CampaignConfig,
    ) -> Result<Campaign, CampaignError> {
        let specs: Vec<RunSpec> = methods
            .iter()
            .map(|&method| RunSpec {
                method,
                seed: cfg.seed,
            })
            .collect();
        Ok(Campaign {
            logs: self.run_specs(&specs, space, suite, cfg)?,
        })
    }

    /// Runs `methods` across `seeds` and aggregates each method's
    /// hypervolume curve on the shared budget grid (see
    /// [`aggregate_curves`] for the truncation accounting).
    ///
    /// # Panics
    ///
    /// Panics when `seeds` is empty or `step` is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn sweep(
        &self,
        methods: &[Method],
        space: &DesignSpace,
        suite: &[Workload],
        cfg: &CampaignConfig,
        seeds: &[u64],
        r: &RefPoint,
        step: u64,
    ) -> Result<Vec<SweepCurve>, CampaignError> {
        assert!(!seeds.is_empty(), "need at least one seed");
        assert!(step > 0, "step must be positive");
        let specs: Vec<RunSpec> = methods
            .iter()
            .flat_map(|&method| seeds.iter().map(move |&seed| RunSpec { method, seed }))
            .collect();
        let logs = self.run_specs(&specs, space, suite, cfg)?;
        methods
            .iter()
            .enumerate()
            .map(|(mi, &method)| {
                let curves: Vec<Vec<(u64, f64)>> = logs[mi * seeds.len()..(mi + 1) * seeds.len()]
                    .iter()
                    .map(|log| log.hypervolume_curve(r, step))
                    .collect();
                aggregate_curves(&method.to_string(), &curves)
            })
            .collect()
    }
}

/// Result of a full campaign: one log per method.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Campaign {
    /// Per-method run logs.
    pub logs: Vec<RunLog>,
}

impl Campaign {
    /// Runs `methods` sequentially with identical configuration.
    pub fn run(
        methods: &[Method],
        space: &DesignSpace,
        suite: &[Workload],
        cfg: &CampaignConfig,
    ) -> Self {
        Self::run_parallel(methods, space, suite, cfg, &ParallelConfig::default())
    }

    /// Runs `methods` with campaign-level parallelism. Logs are returned
    /// in method order and are byte-identical to a sequential run — only
    /// wall-clock changes.
    pub fn run_parallel(
        methods: &[Method],
        space: &DesignSpace,
        suite: &[Workload],
        cfg: &CampaignConfig,
        parallel: &ParallelConfig,
    ) -> Self {
        CampaignRunner::new()
            .parallel(*parallel)
            .run(methods, space, suite, cfg)
            .expect("infallible without per-run setup hooks")
    }

    /// Hypervolume curves per method, sampled every `step` simulations.
    pub fn curves(&self, r: &RefPoint, step: u64) -> Vec<(String, Vec<(u64, f64)>)> {
        self.logs
            .iter()
            .map(|log| (log.method.clone(), log.hypervolume_curve(r, step)))
            .collect()
    }

    /// Simulations a method needed to first reach hypervolume `target`.
    pub fn sims_to_reach(&self, method: &str, r: &RefPoint, target: f64, step: u64) -> Option<u64> {
        let log = self.logs.iter().find(|l| l.method == method)?;
        log.hypervolume_curve(r, step)
            .into_iter()
            .find(|&(_, hv)| hv >= target)
            .map(|(sims, _)| sims)
    }

    /// Hypervolume a method attained within `budget` simulations.
    pub fn hv_at(&self, method: &str, r: &RefPoint, budget: u64) -> Option<f64> {
        let log = self.logs.iter().find(|l| l.method == method)?;
        let pts: Vec<_> = log
            .records
            .iter()
            .take_while(|rec| rec.sims_after <= budget)
            .map(|rec| rec.ppa)
            .collect();
        Some(crate::pareto::hypervolume(&pts, r))
    }
}

/// Mean ± standard deviation of one method's hypervolume curve over
/// several seeds (the paper's curves are single runs; seed sweeps add the
/// error bars reviewers ask for).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCurve {
    /// Method label.
    pub method: String,
    /// Per budget point: `(simulations, mean hypervolume, std deviation)`.
    pub points: Vec<(u64, f64, f64)>,
}

/// Runs `methods` across `seeds` (fresh evaluator per run) and aggregates
/// each method's hypervolume-versus-simulations curve. Sequential
/// convenience wrapper over [`CampaignRunner::sweep`].
///
/// # Panics
///
/// Panics when `seeds` is empty or `step` is zero.
pub fn sweep(
    methods: &[Method],
    space: &DesignSpace,
    suite: &[Workload],
    cfg: &CampaignConfig,
    seeds: &[u64],
    r: &RefPoint,
    step: u64,
) -> Result<Vec<SweepCurve>, CampaignError> {
    CampaignRunner::new().sweep(methods, space, suite, cfg, seeds, r, step)
}

/// Aggregates one method's per-seed hypervolume curves (mean ± std per
/// budget point) on their **shared budget grid**.
///
/// Seeds can produce curves of different lengths — a search that stops
/// early (plateau, quarantine) spends fewer simulations, so its curve has
/// fewer points. Aggregation uses the shared prefix of the grid; tail
/// points beyond it are dropped **with accounting** (telemetry counter
/// `campaign/sweep/dropped_tail_points` plus a stderr warning), never
/// silently. Every curve's coordinates are verified against the grid:
/// seeds that disagree on a budget coordinate are an error
/// ([`CampaignError::BudgetMisaligned`]), not a garbage mean.
pub fn aggregate_curves(
    method: &str,
    curves: &[Vec<(u64, f64)>],
) -> Result<SweepCurve, CampaignError> {
    assert!(!curves.is_empty(), "need at least one curve");
    let shared = curves.iter().map(Vec::len).min().unwrap_or(0);
    for i in 0..shared {
        let expected = curves[0][i].0;
        for curve in curves {
            if curve[i].0 != expected {
                return Err(CampaignError::BudgetMisaligned {
                    method: method.to_string(),
                    index: i,
                    expected,
                    found: curve[i].0,
                });
            }
        }
    }
    let dropped: usize = curves.iter().map(|c| c.len() - shared).sum();
    if dropped > 0 {
        telemetry::counter_add("campaign/sweep/dropped_tail_points", dropped as u64);
        eprintln!(
            "warning: sweep[{method}]: seeds produced curves of different lengths; \
             dropped {dropped} tail point(s) beyond the shared {shared}-point budget grid"
        );
    }
    let mut points = Vec::with_capacity(shared);
    for i in 0..shared {
        let sims = curves[0][i].0;
        let vals: Vec<f64> = curves.iter().map(|c| c[i].1).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
        points.push((sims, mean, var.sqrt()));
    }
    Ok(SweepCurve {
        method: method.to_string(),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use archx_workloads::spec06_suite;

    #[test]
    fn tiny_campaign_runs_all_methods() {
        let suite: Vec<_> = spec06_suite().into_iter().take(2).collect();
        let cfg = CampaignConfig {
            sim_budget: 16,
            instrs_per_workload: 800,
            seed: 3,
            trace_seed: None,
            threads: 1,
            ..CampaignConfig::default()
        };
        let space = DesignSpace::table4();
        let campaign = Campaign::run(&Method::ALL, &space, &suite, &cfg);
        assert_eq!(campaign.logs.len(), Method::ALL.len());
        for log in &campaign.logs {
            assert!(
                !log.records.is_empty(),
                "{} produced no records",
                log.method
            );
        }
        let curves = campaign.curves(&RefPoint::default(), 8);
        assert_eq!(curves.len(), Method::ALL.len());
        let hv = campaign.hv_at("Random", &RefPoint::default(), 16);
        assert!(hv.is_some());
    }

    #[test]
    fn sweep_aggregates_across_seeds() {
        let suite: Vec<_> = spec06_suite().into_iter().take(2).collect();
        let cfg = CampaignConfig {
            sim_budget: 12,
            instrs_per_workload: 600,
            seed: 0,
            trace_seed: None,
            threads: 1,
            ..CampaignConfig::default()
        };
        let curves = sweep(
            &[Method::Random],
            &DesignSpace::table4(),
            &suite,
            &cfg,
            &[1, 2, 3],
            &RefPoint::default(),
            4,
        )
        .expect("aligned grids");
        assert_eq!(curves.len(), 1);
        let c = &curves[0];
        assert!(!c.points.is_empty());
        for &(_, mean, std) in &c.points {
            assert!(mean >= 0.0 && std >= 0.0);
        }
        // Different seeds explore different designs: some variance exists
        // at the first budget point with overwhelming probability.
        assert!(c.points.iter().any(|&(_, _, std)| std > 0.0));
    }

    #[test]
    fn aggregate_uses_shared_grid_and_counts_dropped_tail() {
        // Seed 2 stopped early: its curve is one point short. The mean at
        // shared points must use every seed, and the tail is dropped with
        // accounting, not silently.
        let curves = vec![
            vec![(4, 1.0), (8, 2.0), (12, 3.0)],
            vec![(4, 3.0), (8, 4.0)],
        ];
        let before = archx_telemetry::global()
            .report()
            .counter("campaign/sweep/dropped_tail_points");
        let agg = aggregate_curves("Random", &curves).expect("aligned");
        let after = archx_telemetry::global()
            .report()
            .counter("campaign/sweep/dropped_tail_points");
        assert_eq!(agg.points.len(), 2);
        assert_eq!(agg.points[0].0, 4);
        assert_eq!(agg.points[1].0, 8);
        assert!((agg.points[0].1 - 2.0).abs() < 1e-12);
        assert!((agg.points[1].1 - 3.0).abs() < 1e-12);
        assert!((agg.points[0].2 - 1.0).abs() < 1e-12);
        assert!(after > before, "dropped tail must be counted");
    }

    #[test]
    fn aggregate_rejects_misaligned_budget_coordinates() {
        // The second seed was sampled on a different grid: hard error,
        // not a mean of apples and oranges.
        let curves = vec![vec![(4, 1.0), (8, 2.0)], vec![(5, 1.0), (10, 2.0)]];
        let err = aggregate_curves("Random", &curves).expect_err("misaligned");
        match err {
            CampaignError::BudgetMisaligned {
                method,
                index,
                expected,
                found,
            } => {
                assert_eq!(method, "Random");
                assert_eq!(index, 0);
                assert_eq!(expected, 4);
                assert_eq!(found, 5);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn journal_paths_are_unique_and_filesystem_safe() {
        let dir = Path::new("/tmp/campaign");
        let mut seen = std::collections::HashSet::new();
        for &method in &Method::ALL {
            for seed in [1u64, 2] {
                let p = run_journal_path(dir, &RunSpec { method, seed });
                let name = p.file_name().unwrap().to_str().unwrap().to_string();
                assert!(
                    name.chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '.'),
                    "unsafe journal name {name}"
                );
                assert!(seen.insert(p), "duplicate journal path");
            }
        }
        assert_eq!(
            run_journal_path(
                dir,
                &RunSpec {
                    method: Method::BoomExplorer,
                    seed: 7
                }
            ),
            dir.join("boom-explorer-seed7.jsonl")
        );
    }

    #[test]
    fn parallel_run_specs_match_sequential_order_and_content() {
        let suite: Vec<_> = spec06_suite().into_iter().take(2).collect();
        let cfg = CampaignConfig {
            sim_budget: 8,
            instrs_per_workload: 500,
            seed: 1,
            trace_seed: None,
            threads: 1,
            ..CampaignConfig::default()
        };
        let space = DesignSpace::table4();
        let specs: Vec<RunSpec> = [1u64, 2, 3]
            .iter()
            .map(|&seed| RunSpec {
                method: Method::Random,
                seed,
            })
            .collect();
        let serial = CampaignRunner::new()
            .run_specs(&specs, &space, &suite, &cfg)
            .expect("runs");
        let parallel = CampaignRunner::new()
            .parallel(ParallelConfig::with_jobs(3))
            .run_specs(&specs, &space, &suite, &cfg)
            .expect("runs");
        assert_eq!(serial, parallel, "jobs must not change results or order");
    }
}
