//! Method-versus-method campaigns: run every DSE algorithm on identical
//! evaluators/budgets and collect their hypervolume-versus-simulations
//! curves (the machinery behind the paper's Figure 12 and Table 5).

use crate::archexplorer::{run_archexplorer, ArchExplorerOptions};
use crate::baselines::adaboost::AdaBoostOptions;
use crate::baselines::boom::BoomOptions;
use crate::baselines::ranker::RankerOptions;
use crate::baselines::{
    run_adaboost, run_archranker, run_boom_explorer, run_calipers_dse, run_random_search,
};
use crate::eval::{Evaluator, RunLog, SimLimits};
use crate::pareto::RefPoint;
use crate::space::DesignSpace;
use archx_workloads::Workload;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The DSE methods under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Bottleneck-removal-driven search with the new DEG (this paper).
    ArchExplorer,
    /// Uniform random search.
    Random,
    /// AdaBoost.RT surrogate screening.
    AdaBoost,
    /// Pairwise-ranking surrogate (ArchRanker).
    ArchRanker,
    /// Gaussian-process Bayesian optimisation (BOOM-Explorer).
    BoomExplorer,
    /// Bottleneck-removal with the prior DEG formulation (Calipers).
    Calipers,
}

impl Method {
    /// The methods of the paper's headline comparison (Fig. 12 / Table 5).
    pub const PAPER_SET: [Method; 4] = [
        Method::ArchExplorer,
        Method::AdaBoost,
        Method::ArchRanker,
        Method::BoomExplorer,
    ];

    /// All implemented methods.
    pub const ALL: [Method; 6] = [
        Method::ArchExplorer,
        Method::Random,
        Method::AdaBoost,
        Method::ArchRanker,
        Method::BoomExplorer,
        Method::Calipers,
    ];
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Method::ArchExplorer => "ArchExplorer",
            Method::Random => "Random",
            Method::AdaBoost => "AdaBoost",
            Method::ArchRanker => "ArchRanker",
            Method::BoomExplorer => "BOOM-Explorer",
            Method::Calipers => "Calipers",
        };
        f.write_str(s)
    }
}

/// Campaign configuration shared by all methods.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Simulation budget per method.
    pub sim_budget: u64,
    /// Instructions simulated per workload during DSE (the paper's 100 K
    /// analysis window, scaled to taste).
    pub instrs_per_workload: usize,
    /// Search seed (also the trace seed unless `trace_seed` is set).
    pub seed: u64,
    /// Fixes the workload-trace seed independently of the search seed —
    /// seed sweeps use this so their error bars measure search variance,
    /// not workload variance.
    pub trace_seed: Option<u64>,
    /// Worker threads per evaluator.
    pub threads: usize,
    /// Per-simulation cycle budget (`None` = unlimited). Designs that
    /// exceed it fail as data and are quarantined instead of hanging the
    /// campaign.
    pub cycle_budget: Option<u64>,
    /// Retries (with a halved instruction window each time) before a
    /// failing design is quarantined.
    pub max_retries: u32,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            sim_budget: 240,
            instrs_per_workload: 10_000,
            seed: 1,
            trace_seed: None,
            threads: crate::default_threads(),
            cycle_budget: None,
            max_retries: 1,
        }
    }
}

/// Builds the evaluator [`run_method`] would use for this configuration.
/// Exposed so callers can attach a journal / warm-start it before calling
/// [`run_method_on`].
pub fn build_evaluator(suite: &[Workload], cfg: &CampaignConfig) -> Evaluator {
    Evaluator::new(
        suite.to_vec(),
        cfg.instrs_per_workload,
        cfg.trace_seed.unwrap_or(cfg.seed),
    )
    .with_threads(cfg.threads)
    .with_limits(SimLimits {
        cycle_budget: cfg.cycle_budget,
        deadlock_watchdog: SimLimits::default().deadlock_watchdog,
    })
    .with_max_retries(cfg.max_retries)
}

/// Runs one method on a fresh evaluator over the given suite.
pub fn run_method(
    method: Method,
    space: &DesignSpace,
    suite: &[Workload],
    cfg: &CampaignConfig,
) -> RunLog {
    run_method_observed(method, space, suite, cfg, None)
}

/// Like [`run_method`], but additionally streams per-evaluation
/// [`archx_telemetry::Progress`] events (simulations done vs. budget,
/// hypervolume, best trade-off) to `sink`. Events also reach any sinks
/// registered on the global telemetry registry either way.
pub fn run_method_observed(
    method: Method,
    space: &DesignSpace,
    suite: &[Workload],
    cfg: &CampaignConfig,
    sink: Option<std::sync::Arc<dyn archx_telemetry::ProgressSink>>,
) -> RunLog {
    let evaluator = build_evaluator(suite, cfg);
    if let Some(sink) = sink {
        evaluator.set_progress_sink(sink);
    }
    run_method_on(method, space, &evaluator, cfg.sim_budget, cfg.seed)
}

/// Runs one method on a caller-supplied evaluator — the entry point for
/// resumable campaigns, where the evaluator was warm-started from a
/// journal (and keeps journaling) before the search begins. The search is
/// deterministic given `seed`, so a warm-started evaluator replays the
/// journaled prefix from cache and spends simulations only past it.
pub fn run_method_on(
    method: Method,
    space: &DesignSpace,
    evaluator: &Evaluator,
    sim_budget: u64,
    seed: u64,
) -> RunLog {
    let _timed = archx_telemetry::span("dse/run_method");
    evaluator.set_progress_target(method.to_string(), sim_budget);
    let ax_opts = ArchExplorerOptions {
        seed,
        ..ArchExplorerOptions::default()
    };
    match method {
        Method::ArchExplorer => run_archexplorer(space, evaluator, sim_budget, &ax_opts),
        Method::Random => run_random_search(space, evaluator, sim_budget, seed),
        Method::AdaBoost => run_adaboost(
            space,
            evaluator,
            sim_budget,
            seed,
            &AdaBoostOptions::default(),
        ),
        Method::ArchRanker => run_archranker(
            space,
            evaluator,
            sim_budget,
            seed,
            &RankerOptions::default(),
        ),
        Method::BoomExplorer => {
            run_boom_explorer(space, evaluator, sim_budget, seed, &BoomOptions::default())
        }
        Method::Calipers => run_calipers_dse(space, evaluator, sim_budget, &ax_opts),
    }
}

/// Result of a full campaign: one log per method.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Campaign {
    /// Per-method run logs.
    pub logs: Vec<RunLog>,
}

impl Campaign {
    /// Runs `methods` sequentially with identical configuration.
    pub fn run(
        methods: &[Method],
        space: &DesignSpace,
        suite: &[Workload],
        cfg: &CampaignConfig,
    ) -> Self {
        Campaign {
            logs: methods
                .iter()
                .map(|&m| run_method(m, space, suite, cfg))
                .collect(),
        }
    }

    /// Hypervolume curves per method, sampled every `step` simulations.
    pub fn curves(&self, r: &RefPoint, step: u64) -> Vec<(String, Vec<(u64, f64)>)> {
        self.logs
            .iter()
            .map(|log| (log.method.clone(), log.hypervolume_curve(r, step)))
            .collect()
    }

    /// Simulations a method needed to first reach hypervolume `target`.
    pub fn sims_to_reach(&self, method: &str, r: &RefPoint, target: f64, step: u64) -> Option<u64> {
        let log = self.logs.iter().find(|l| l.method == method)?;
        log.hypervolume_curve(r, step)
            .into_iter()
            .find(|&(_, hv)| hv >= target)
            .map(|(sims, _)| sims)
    }

    /// Hypervolume a method attained within `budget` simulations.
    pub fn hv_at(&self, method: &str, r: &RefPoint, budget: u64) -> Option<f64> {
        let log = self.logs.iter().find(|l| l.method == method)?;
        let pts: Vec<_> = log
            .records
            .iter()
            .take_while(|rec| rec.sims_after <= budget)
            .map(|rec| rec.ppa)
            .collect();
        Some(crate::pareto::hypervolume(&pts, r))
    }
}

/// Mean ± standard deviation of one method's hypervolume curve over
/// several seeds (the paper's curves are single runs; seed sweeps add the
/// error bars reviewers ask for).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepCurve {
    /// Method label.
    pub method: String,
    /// Per budget point: `(simulations, mean hypervolume, std deviation)`.
    pub points: Vec<(u64, f64, f64)>,
}

/// Runs `methods` across `seeds` (fresh evaluator per run) and aggregates
/// each method's hypervolume-versus-simulations curve.
///
/// # Panics
///
/// Panics when `seeds` is empty or `step` is zero.
pub fn sweep(
    methods: &[Method],
    space: &DesignSpace,
    suite: &[Workload],
    cfg: &CampaignConfig,
    seeds: &[u64],
    r: &RefPoint,
    step: u64,
) -> Vec<SweepCurve> {
    assert!(!seeds.is_empty(), "need at least one seed");
    assert!(step > 0, "step must be positive");
    let mut out = Vec::with_capacity(methods.len());
    for &method in methods {
        // curves[seed][budget_idx]
        let curves: Vec<Vec<(u64, f64)>> = seeds
            .iter()
            .map(|&seed| {
                let run_cfg = CampaignConfig {
                    seed,
                    trace_seed: Some(cfg.trace_seed.unwrap_or(cfg.seed)),
                    ..cfg.clone()
                };
                run_method(method, space, suite, &run_cfg).hypervolume_curve(r, step)
            })
            .collect();
        let len = curves.iter().map(Vec::len).min().unwrap_or(0);
        let mut points = Vec::with_capacity(len);
        for i in 0..len {
            let sims = curves[0][i].0;
            let vals: Vec<f64> = curves.iter().map(|c| c[i].1).collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
            points.push((sims, mean, var.sqrt()));
        }
        out.push(SweepCurve {
            method: method.to_string(),
            points,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use archx_workloads::spec06_suite;

    #[test]
    fn tiny_campaign_runs_all_methods() {
        let suite: Vec<_> = spec06_suite().into_iter().take(2).collect();
        let cfg = CampaignConfig {
            sim_budget: 16,
            instrs_per_workload: 800,
            seed: 3,
            trace_seed: None,
            threads: 1,
            ..CampaignConfig::default()
        };
        let space = DesignSpace::table4();
        let campaign = Campaign::run(&Method::ALL, &space, &suite, &cfg);
        assert_eq!(campaign.logs.len(), Method::ALL.len());
        for log in &campaign.logs {
            assert!(
                !log.records.is_empty(),
                "{} produced no records",
                log.method
            );
        }
        let curves = campaign.curves(&RefPoint::default(), 8);
        assert_eq!(curves.len(), Method::ALL.len());
        let hv = campaign.hv_at("Random", &RefPoint::default(), 16);
        assert!(hv.is_some());
    }

    #[test]
    fn sweep_aggregates_across_seeds() {
        let suite: Vec<_> = spec06_suite().into_iter().take(2).collect();
        let cfg = CampaignConfig {
            sim_budget: 12,
            instrs_per_workload: 600,
            seed: 0,
            trace_seed: None,
            threads: 1,
            ..CampaignConfig::default()
        };
        let curves = sweep(
            &[Method::Random],
            &DesignSpace::table4(),
            &suite,
            &cfg,
            &[1, 2, 3],
            &RefPoint::default(),
            4,
        );
        assert_eq!(curves.len(), 1);
        let c = &curves[0];
        assert!(!c.points.is_empty());
        for &(_, mean, std) in &c.points {
            assert!(mean >= 0.0 && std >= 0.0);
        }
        // Different seeds explore different designs: some variance exists
        // at the first budget point with overwhelming probability.
        assert!(c.points.iter().any(|&(_, _, std)| std > 0.0));
    }
}
