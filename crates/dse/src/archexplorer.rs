//! The ArchExplorer search loop: bottleneck-removal-driven DSE
//! (paper Section 4.3, Figure 6).
//!
//! Each round starts from a (random or supplied) design, repeatedly
//! analyses the microexecution, grows the top bottlenecks and shrinks idle
//! resources, and stops when the PPA trade-off plateaus; then it restarts
//! from a fresh design. All evaluated designs feed one exploration set
//! whose Pareto frontier is the result.

use crate::eval::{Evaluator, RunLog};
use crate::reassign::{freezable, reassign, ReassignOptions};
use crate::space::{DesignSpace, ParamId};
use archx_sim::MicroArch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// What the bottleneck-removal trajectory climbs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// The paper's default: maximise `Perf²/(Power×Area)`.
    Tradeoff,
    /// Constrained DSE (as ArchRanker frames it): maximise performance
    /// subject to power and area budgets; infeasible designs score by how
    /// far outside the budgets they are (negative).
    ConstrainedPerf {
        /// Power budget in watts.
        power_cap: f64,
        /// Area budget in mm².
        area_cap: f64,
    },
}

impl Objective {
    /// Scalar score to maximise (higher is better).
    pub fn score(&self, ppa: &archx_power::PpaResult) -> f64 {
        match *self {
            Objective::Tradeoff => ppa.tradeoff(),
            Objective::ConstrainedPerf {
                power_cap,
                area_cap,
            } => {
                let violation = (ppa.power_w / power_cap - 1.0).max(0.0)
                    + (ppa.area_mm2 / area_cap - 1.0).max(0.0);
                if violation > 0.0 {
                    -violation
                } else {
                    ppa.ipc
                }
            }
        }
    }

    /// Whether a design satisfies this objective's constraints.
    pub fn feasible(&self, ppa: &archx_power::PpaResult) -> bool {
        match *self {
            Objective::Tradeoff => true,
            Objective::ConstrainedPerf {
                power_cap,
                area_cap,
            } => ppa.power_w <= power_cap && ppa.area_mm2 <= area_cap,
        }
    }
}

/// Tuning knobs of the ArchExplorer loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchExplorerOptions {
    /// Reassignment policy.
    pub reassign: ReassignOptions,
    /// Steps without PPA-trade-off improvement before a restart.
    pub plateau_patience: usize,
    /// Minimum relative trade-off improvement for a freezable parameter's
    /// growth to count as useful (the cache/BP freeze rule).
    pub freeze_threshold: f64,
    /// Probability that a restart perturbs the best design found so far
    /// instead of sampling uniformly (intensification vs exploration).
    pub intensify_prob: f64,
    /// Per-parameter mutation probability when perturbing the incumbent.
    pub mutate_prob: f64,
    /// RNG seed for initial designs.
    pub seed: u64,
    /// What each trajectory climbs.
    pub objective: Objective,
}

impl Default for ArchExplorerOptions {
    fn default() -> Self {
        ArchExplorerOptions {
            reassign: ReassignOptions::default(),
            plateau_patience: 5,
            freeze_threshold: 0.01,
            intensify_prob: 0.5,
            mutate_prob: 0.3,
            seed: 0xA5C3,
            objective: Objective::Tradeoff,
        }
    }
}

/// Perturbs `best` by moving each parameter one candidate step up or down
/// with probability `mutate_prob`.
fn perturb(space: &DesignSpace, best: &MicroArch, mutate_prob: f64, rng: &mut StdRng) -> MicroArch {
    let mut arch = *best;
    for &p in &ParamId::ALL {
        if rng.gen_bool(mutate_prob) {
            let v = p.get(&arch);
            let next = if rng.gen_bool(0.5) {
                space.next_larger(p, v)
            } else {
                space.next_smaller(p, v)
            };
            if let Some(nv) = next {
                p.set(&mut arch, nv);
            }
        }
    }
    arch
}

/// Runs ArchExplorer until `sim_budget` simulations have been spent.
///
/// Returns the log of every evaluated design in order.
pub fn run_archexplorer(
    space: &DesignSpace,
    evaluator: &Evaluator,
    sim_budget: u64,
    opts: &ArchExplorerOptions,
) -> RunLog {
    run_bottleneck_driven(
        space,
        evaluator,
        sim_budget,
        opts,
        "ArchExplorer",
        |ev, arch| {
            ev.evaluate_with(arch, crate::eval::Analysis::NewDeg)
                .map(|e| (e.ppa, e.report.expect("analysis requested")))
        },
    )
}

/// Generic bottleneck-removal loop, parameterised by the analysis backend
/// (the new DEG for ArchExplorer, the static model for the Calipers
/// baseline).
pub fn run_bottleneck_driven<F>(
    space: &DesignSpace,
    evaluator: &Evaluator,
    sim_budget: u64,
    opts: &ArchExplorerOptions,
    method: &str,
    mut analyze: F,
) -> RunLog
where
    F: FnMut(
        &Evaluator,
        &MicroArch,
    ) -> Result<
        (archx_power::PpaResult, archx_deg::BottleneckReport),
        crate::eval::EvalFailure,
    >,
{
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut log = RunLog::new(method);
    let mut frozen: HashSet<ParamId> = HashSet::new();
    let mut global_best: Option<(f64, MicroArch)> = None;

    'outer: while evaluator.sim_count() < sim_budget {
        // Fresh round: either a uniform random start (exploration) or a
        // perturbation of the best design found so far (intensification).
        // Freezes persist across rounds — they encode workload properties,
        // not start-point properties.
        let mut current = match &global_best {
            Some((_, best)) if rng.gen_bool(opts.intensify_prob) => {
                perturb(space, best, opts.mutate_prob, &mut rng)
            }
            _ => space.random(&mut rng),
        };
        // A quarantined start design scores as non-Pareto (it never
        // enters the log) and the round restarts from a fresh design —
        // the attempt still consumed budget, so this always terminates.
        let Ok((mut ppa, mut report)) = analyze(evaluator, &current) else {
            continue 'outer;
        };
        log.push(current, ppa, evaluator.sim_count());
        let mut best_score = opts.objective.score(&ppa);
        let mut stale = 0usize;
        if global_best
            .as_ref()
            .is_none_or(|(t, _)| opts.objective.score(&ppa) > *t)
        {
            global_best = Some((opts.objective.score(&ppa), current));
        }
        // Per-trajectory freezes: any grown parameter whose growth failed
        // to pay is not grown again this round, steering the tail of the
        // trajectory toward pure power/area reclamation (Fig. 10, step 4).
        let mut round_frozen: HashSet<ParamId> = frozen.clone();

        while evaluator.sim_count() < sim_budget {
            let step = reassign(space, &current, &report, &round_frozen, &opts.reassign);
            if step.arch == current {
                continue 'outer; // no move possible: restart
            }
            let prev_score = opts.objective.score(&ppa);
            let next = step.arch;
            // A failed step design ends the trajectory (there is no
            // bottleneck report to steer by); the search restarts.
            let Ok((next_ppa, next_report)) = analyze(evaluator, &next) else {
                continue 'outer;
            };
            log.push(next, next_ppa, evaluator.sim_count());

            // Freeze rules (paper §4.3): growth that did not clearly pay is
            // not retried — permanently for caches/predictors (their limits
            // are algorithmic, not capacity), for the rest of this round
            // otherwise.
            let gain = (opts.objective.score(&next_ppa) - prev_score) / prev_score.abs().max(1e-12);
            if gain < opts.freeze_threshold {
                for &p in &step.grown {
                    round_frozen.insert(p);
                    if freezable(p) {
                        frozen.insert(p);
                    }
                }
            }

            current = next;
            ppa = next_ppa;
            report = next_report;
            let score = opts.objective.score(&ppa);
            if global_best.as_ref().is_none_or(|(t, _)| score > *t) {
                global_best = Some((score, current));
            }
            if score > best_score + best_score.abs() * 1e-6 {
                best_score = score;
                stale = 0;
            } else {
                stale += 1;
                if stale >= opts.plateau_patience {
                    continue 'outer; // plateau: restart
                }
            }
        }
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use archx_workloads::spec06_suite;

    fn tiny_evaluator() -> Evaluator {
        let suite: Vec<_> = spec06_suite().into_iter().take(2).collect();
        Evaluator::builder(suite)
            .window(2_000)
            .seed(7)
            .threads(1)
            .build()
    }

    #[test]
    fn respects_budget_and_logs_everything() {
        let space = DesignSpace::table4();
        let ev = tiny_evaluator();
        let log = run_archexplorer(&space, &ev, 20, &ArchExplorerOptions::default());
        assert!(!log.records.is_empty());
        // Budget check: stops within one design evaluation of the budget.
        assert!(ev.sim_count() >= 20);
        assert!(ev.sim_count() <= 20 + 2);
        // Cumulative counts are monotone.
        for w in log.records.windows(2) {
            assert!(w[1].sims_after >= w[0].sims_after);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let space = DesignSpace::table4();
        let a = run_archexplorer(
            &space,
            &tiny_evaluator(),
            12,
            &ArchExplorerOptions::default(),
        );
        let b = run_archexplorer(
            &space,
            &tiny_evaluator(),
            12,
            &ArchExplorerOptions::default(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn improves_tradeoff_within_a_round() {
        let space = DesignSpace::table4();
        let ev = tiny_evaluator();
        let log = run_archexplorer(&space, &ev, 40, &ArchExplorerOptions::default());
        let first = log.records.first().unwrap().ppa.tradeoff();
        let best = log.best_tradeoff().unwrap().ppa.tradeoff();
        assert!(
            best >= first,
            "bottleneck removal must not end below the start: {best} vs {first}"
        );
    }
}
