//! The microarchitecture design space (paper Table 4).
//!
//! Twenty-two searchable parameters. Two notes on fidelity to the paper's
//! Table 4: (1) the table lists global/choice predictor on one row, but
//! the quoted design-space size only matches with both free, so they are
//! separate parameters here; (2) the table's `#` column claims 18
//! candidate values for the register files while its own range column
//! says `40:304:8` (34 values) — we honour the explicit ranges, giving a
//! slightly larger space of ~3.2 × 10¹⁵ designs.

use archx_sim::MicroArch;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one searchable parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ParamId {
    /// Unified pipeline width.
    Width,
    /// Fetch buffer size in bytes.
    FetchBuffer,
    /// Fetch queue size in micro-ops.
    FetchQueue,
    /// Local predictor entries.
    LocalPredictor,
    /// Global predictor entries.
    GlobalPredictor,
    /// Choice predictor entries.
    ChoicePredictor,
    /// Return address stack entries.
    Ras,
    /// Branch target buffer entries.
    Btb,
    /// Reorder buffer entries.
    Rob,
    /// Physical integer registers.
    IntRf,
    /// Physical floating-point registers.
    FpRf,
    /// Issue queue entries.
    Iq,
    /// Load queue entries.
    Lq,
    /// Store queue entries.
    Sq,
    /// Integer ALUs.
    IntAlu,
    /// Integer multiplier/dividers.
    IntMultDiv,
    /// Floating-point ALUs.
    FpAlu,
    /// Floating-point multiplier/dividers.
    FpMultDiv,
    /// I-cache size in KiB.
    ICacheKb,
    /// I-cache associativity.
    ICacheAssoc,
    /// D-cache size in KiB.
    DCacheKb,
    /// D-cache associativity.
    DCacheAssoc,
}

impl ParamId {
    /// All parameters in Table 4 order.
    pub const ALL: [ParamId; 22] = [
        ParamId::Width,
        ParamId::FetchBuffer,
        ParamId::FetchQueue,
        ParamId::LocalPredictor,
        ParamId::GlobalPredictor,
        ParamId::ChoicePredictor,
        ParamId::Ras,
        ParamId::Btb,
        ParamId::Rob,
        ParamId::IntRf,
        ParamId::FpRf,
        ParamId::Iq,
        ParamId::Lq,
        ParamId::Sq,
        ParamId::IntAlu,
        ParamId::IntMultDiv,
        ParamId::FpAlu,
        ParamId::FpMultDiv,
        ParamId::ICacheKb,
        ParamId::ICacheAssoc,
        ParamId::DCacheKb,
        ParamId::DCacheAssoc,
    ];

    /// Index within [`ParamId::ALL`].
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&p| p == self)
            .expect("all variants listed")
    }

    /// Reads this parameter's current value from a configuration.
    pub fn get(self, arch: &MicroArch) -> u32 {
        match self {
            ParamId::Width => arch.width,
            ParamId::FetchBuffer => arch.fetch_buffer_bytes,
            ParamId::FetchQueue => arch.fetch_queue_uops,
            ParamId::LocalPredictor => arch.local_predictor,
            ParamId::GlobalPredictor => arch.global_predictor,
            ParamId::ChoicePredictor => arch.choice_predictor,
            ParamId::Ras => arch.ras_entries,
            ParamId::Btb => arch.btb_entries,
            ParamId::Rob => arch.rob_entries,
            ParamId::IntRf => arch.int_rf,
            ParamId::FpRf => arch.fp_rf,
            ParamId::Iq => arch.iq_entries,
            ParamId::Lq => arch.lq_entries,
            ParamId::Sq => arch.sq_entries,
            ParamId::IntAlu => arch.int_alu,
            ParamId::IntMultDiv => arch.int_mult_div,
            ParamId::FpAlu => arch.fp_alu,
            ParamId::FpMultDiv => arch.fp_mult_div,
            ParamId::ICacheKb => arch.icache_kb,
            ParamId::ICacheAssoc => arch.icache_assoc,
            ParamId::DCacheKb => arch.dcache_kb,
            ParamId::DCacheAssoc => arch.dcache_assoc,
        }
    }

    /// Writes this parameter into a configuration.
    pub fn set(self, arch: &mut MicroArch, value: u32) {
        match self {
            ParamId::Width => arch.width = value,
            ParamId::FetchBuffer => arch.fetch_buffer_bytes = value,
            ParamId::FetchQueue => arch.fetch_queue_uops = value,
            ParamId::LocalPredictor => arch.local_predictor = value,
            ParamId::GlobalPredictor => arch.global_predictor = value,
            ParamId::ChoicePredictor => arch.choice_predictor = value,
            ParamId::Ras => arch.ras_entries = value,
            ParamId::Btb => arch.btb_entries = value,
            ParamId::Rob => arch.rob_entries = value,
            ParamId::IntRf => arch.int_rf = value,
            ParamId::FpRf => arch.fp_rf = value,
            ParamId::Iq => arch.iq_entries = value,
            ParamId::Lq => arch.lq_entries = value,
            ParamId::Sq => arch.sq_entries = value,
            ParamId::IntAlu => arch.int_alu = value,
            ParamId::IntMultDiv => arch.int_mult_div = value,
            ParamId::FpAlu => arch.fp_alu = value,
            ParamId::FpMultDiv => arch.fp_mult_div = value,
            ParamId::ICacheKb => arch.icache_kb = value,
            ParamId::ICacheAssoc => arch.icache_assoc = value,
            ParamId::DCacheKb => arch.dcache_kb = value,
            ParamId::DCacheAssoc => arch.dcache_assoc = value,
        }
    }
}

impl fmt::Display for ParamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

fn range(start: u32, end: u32, stride: u32) -> Vec<u32> {
    (start..=end).step_by(stride as usize).collect()
}

/// The Table 4 design space: candidate values per parameter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DesignSpace {
    candidates: Vec<Vec<u32>>,
}

impl DesignSpace {
    /// The paper's Table 4 space.
    pub fn table4() -> Self {
        let mut candidates = vec![Vec::new(); ParamId::ALL.len()];
        let mut set = |id: ParamId, v: Vec<u32>| candidates[id.index()] = v;
        set(ParamId::Width, range(1, 8, 1));
        set(ParamId::FetchBuffer, vec![16, 32, 64]);
        set(ParamId::FetchQueue, range(8, 48, 4));
        set(ParamId::LocalPredictor, vec![512, 1024, 2048]);
        set(ParamId::GlobalPredictor, vec![2048, 4096, 8192]);
        set(ParamId::ChoicePredictor, vec![2048, 4096, 8192]);
        set(ParamId::Ras, range(16, 40, 2));
        set(ParamId::Btb, vec![1024, 2048, 4096]);
        set(ParamId::Rob, range(32, 256, 16));
        set(ParamId::IntRf, range(40, 304, 8));
        set(ParamId::FpRf, range(40, 304, 8));
        set(ParamId::Iq, range(16, 80, 8));
        set(ParamId::Lq, range(20, 48, 4));
        set(ParamId::Sq, range(20, 48, 4));
        set(ParamId::IntAlu, range(3, 6, 1));
        set(ParamId::IntMultDiv, vec![1, 2]);
        set(ParamId::FpAlu, vec![1, 2]);
        set(ParamId::FpMultDiv, vec![1, 2]);
        set(ParamId::ICacheKb, vec![16, 32, 64]);
        set(ParamId::ICacheAssoc, vec![2, 4]);
        set(ParamId::DCacheKb, vec![16, 32, 64]);
        set(ParamId::DCacheAssoc, vec![2, 4]);
        DesignSpace { candidates }
    }

    /// Candidate values of one parameter, ascending.
    pub fn candidates(&self, id: ParamId) -> &[u32] {
        &self.candidates[id.index()]
    }

    /// Total number of designs.
    pub fn size(&self) -> u128 {
        self.candidates.iter().map(|c| c.len() as u128).product()
    }

    /// Whether `arch` lies exactly on the lattice.
    pub fn contains(&self, arch: &MicroArch) -> bool {
        ParamId::ALL
            .iter()
            .all(|&p| self.candidates(p).contains(&p.get(arch)))
    }

    /// Uniformly random design.
    pub fn random<R: Rng>(&self, rng: &mut R) -> MicroArch {
        let mut arch = MicroArch::baseline();
        for &p in &ParamId::ALL {
            let c = self.candidates(p);
            p.set(&mut arch, c[rng.gen_range(0..c.len())]);
        }
        debug_assert!(arch.validate().is_ok());
        arch
    }

    /// The next-larger candidate value, if any (the paper's "select the
    /// next larger candidate value from the specification").
    pub fn next_larger(&self, id: ParamId, value: u32) -> Option<u32> {
        self.candidates(id).iter().copied().find(|&v| v > value)
    }

    /// The next-smaller candidate value, if any.
    pub fn next_smaller(&self, id: ParamId, value: u32) -> Option<u32> {
        self.candidates(id)
            .iter()
            .rev()
            .copied()
            .find(|&v| v < value)
    }

    /// Snaps a configuration onto the lattice (each parameter to its
    /// nearest candidate).
    pub fn snap(&self, arch: &MicroArch) -> MicroArch {
        let mut out = *arch;
        for &p in &ParamId::ALL {
            let v = p.get(arch);
            let nearest = *self
                .candidates(p)
                .iter()
                .min_by_key(|&&c| v.abs_diff(c))
                .expect("non-empty candidates");
            p.set(&mut out, nearest);
        }
        out
    }

    /// Normalised feature vector in `[0, 1]^22` (for surrogate models).
    pub fn features(&self, arch: &MicroArch) -> Vec<f64> {
        ParamId::ALL
            .iter()
            .map(|&p| {
                let c = self.candidates(p);
                let lo = *c.first().expect("non-empty") as f64;
                let hi = *c.last().expect("non-empty") as f64;
                if hi > lo {
                    (p.get(arch) as f64 - lo) / (hi - lo)
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Mixed-radix index of a lattice design (unique per design).
    ///
    /// # Panics
    ///
    /// Panics if the design is off-lattice.
    pub fn index_of(&self, arch: &MicroArch) -> u128 {
        let mut idx: u128 = 0;
        for &p in &ParamId::ALL {
            let c = self.candidates(p);
            let pos = c
                .iter()
                .position(|&v| v == p.get(arch))
                .expect("design must be on the lattice") as u128;
            idx = idx * c.len() as u128 + pos;
        }
        idx
    }

    /// Inverse of [`DesignSpace::index_of`].
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn design_at(&self, mut index: u128) -> MicroArch {
        assert!(index < self.size(), "index out of range");
        let mut arch = MicroArch::baseline();
        for &p in ParamId::ALL.iter().rev() {
            let c = self.candidates(p);
            let pos = (index % c.len() as u128) as usize;
            index /= c.len() as u128;
            p.set(&mut arch, c[pos]);
        }
        arch
    }
}

impl Default for DesignSpace {
    fn default() -> Self {
        Self::table4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn size_matches_table4_ranges() {
        let s = DesignSpace::table4();
        // The paper quotes 8.9649e14 using 18 register-file candidates; the
        // explicit range 40:304:8 yields 34, giving (34/18)^2 times more.
        assert_eq!(s.size(), 3_198_573_639_106_560);
        assert_eq!(s.candidates(ParamId::IntRf).len(), 34);
        assert_eq!(s.candidates(ParamId::Rob).len(), 15);
        assert_eq!(s.candidates(ParamId::Ras).len(), 13);
    }

    #[test]
    fn random_designs_are_valid_and_on_lattice() {
        let s = DesignSpace::table4();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let a = s.random(&mut rng);
            assert!(a.validate().is_ok());
            assert!(s.contains(&a));
        }
    }

    #[test]
    fn index_roundtrip() {
        let s = DesignSpace::table4();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let a = s.random(&mut rng);
            let idx = s.index_of(&a);
            assert_eq!(s.design_at(idx), a);
        }
    }

    #[test]
    fn next_larger_smaller() {
        let s = DesignSpace::table4();
        assert_eq!(s.next_larger(ParamId::Rob, 32), Some(48));
        assert_eq!(s.next_larger(ParamId::Rob, 256), None);
        assert_eq!(s.next_smaller(ParamId::Rob, 48), Some(32));
        assert_eq!(s.next_smaller(ParamId::Rob, 32), None);
        assert_eq!(s.next_larger(ParamId::FetchBuffer, 16), Some(32));
    }

    #[test]
    fn snap_moves_baseline_onto_lattice() {
        let s = DesignSpace::table4();
        let base = MicroArch::baseline(); // ROB 50 is off-lattice
        assert!(!s.contains(&base));
        let snapped = s.snap(&base);
        assert!(s.contains(&snapped));
        assert!(snapped.validate().is_ok());
        assert_eq!(snapped.rob_entries, 48);
    }

    #[test]
    fn features_are_unit_range() {
        let s = DesignSpace::table4();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let a = s.random(&mut rng);
            for f in s.features(&a) {
                assert!((0.0..=1.0).contains(&f));
            }
        }
    }

    #[test]
    fn get_set_roundtrip_every_param() {
        let mut arch = MicroArch::baseline();
        for &p in &ParamId::ALL {
            let v = p.get(&arch);
            p.set(&mut arch, v); // identity write
            assert_eq!(p.get(&arch), v);
        }
    }
}
