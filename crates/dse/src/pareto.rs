//! Pareto dominance, frontier maintenance, and exact hypervolume
//! (paper Section 5.2, Eq. 3).
//!
//! Objectives: maximise performance (IPC), minimise power, minimise area.

use archx_power::PpaResult;
use serde::{Deserialize, Serialize};

/// Reference point for hypervolume: must be dominated by every explored
/// design (worse in all three objectives).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RefPoint {
    /// Lower bound on IPC.
    pub ipc: f64,
    /// Upper bound on power (W).
    pub power_w: f64,
    /// Upper bound on area (mm²).
    pub area_mm2: f64,
}

impl Default for RefPoint {
    /// A reference point comfortably dominated by every design in the
    /// Table 4 space under the bundled workloads.
    fn default() -> Self {
        RefPoint {
            ipc: 0.0,
            power_w: 2.5,
            area_mm2: 30.0,
        }
    }
}

/// Whether `a` dominates `b` (no worse in all objectives, better in one).
pub fn dominates(a: &PpaResult, b: &PpaResult) -> bool {
    let no_worse = a.ipc >= b.ipc && a.power_w <= b.power_w && a.area_mm2 <= b.area_mm2;
    let better = a.ipc > b.ipc || a.power_w < b.power_w || a.area_mm2 < b.area_mm2;
    no_worse && better
}

/// Whether every objective of a point is finite. Non-finite points come
/// only from callers bypassing the evaluator (whose PPA is always
/// finite); the frontier and hypervolume ignore them rather than letting
/// a NaN comparison corrupt the result.
fn finite(p: &PpaResult) -> bool {
    p.ipc.is_finite() && p.power_w.is_finite() && p.area_mm2.is_finite()
}

/// Indices of the Pareto frontier (mutually non-dominated points).
/// Points with a NaN or infinite objective are never on the frontier.
pub fn pareto_front(points: &[PpaResult]) -> Vec<usize> {
    let mut front = Vec::new();
    'outer: for (i, p) in points.iter().enumerate() {
        if !finite(p) {
            continue;
        }
        for (j, q) in points.iter().enumerate() {
            if i != j && finite(q) && (dominates(q, p) || (q == p && j < i)) {
                continue 'outer;
            }
        }
        front.push(i);
    }
    front
}

/// Exact 3-D Pareto hypervolume with respect to `r` (Eq. 3).
///
/// Points not dominating the reference point — and points with any NaN
/// or infinite objective — are ignored. Complexity is O(n² log n) via
/// z-slab sweeping with incremental 2-D hypervolume.
pub fn hypervolume(points: &[PpaResult], r: &RefPoint) -> f64 {
    // Transform to a maximisation problem anchored at the origin.
    let mut pts: Vec<[f64; 3]> = points
        .iter()
        .filter(|p| finite(p) && p.ipc > r.ipc && p.power_w < r.power_w && p.area_mm2 < r.area_mm2)
        .map(|p| {
            [
                p.ipc - r.ipc,
                r.power_w - p.power_w,
                r.area_mm2 - p.area_mm2,
            ]
        })
        .collect();
    if pts.is_empty() {
        return 0.0;
    }
    // Sweep z from high to low; between consecutive z levels the covered
    // xy-area is the 2-D hypervolume of all points with z >= level.
    pts.sort_by(|a, b| b[2].total_cmp(&a[2]));
    let mut volume = 0.0;
    let mut active: Vec<[f64; 2]> = Vec::new();
    for k in 0..pts.len() {
        active.push([pts[k][0], pts[k][1]]);
        let z_hi = pts[k][2];
        let z_lo = if k + 1 < pts.len() {
            pts[k + 1][2]
        } else {
            0.0
        };
        if z_hi > z_lo {
            volume += area2d(&active) * (z_hi - z_lo);
        }
    }
    volume
}

/// 2-D hypervolume (area dominated above the origin) of `(x, y)` points.
fn area2d(points: &[[f64; 2]]) -> f64 {
    let mut pts: Vec<[f64; 2]> = points.to_vec();
    // Sort by x descending; sweep accumulating strictly increasing y.
    pts.sort_by(|a, b| b[0].total_cmp(&a[0]));
    let mut area = 0.0;
    let mut best_y = 0.0f64;
    let mut i = 0;
    while i < pts.len() {
        let x = pts[i][0];
        // Max y among points with this x (and any further right already seen).
        let mut y = best_y;
        while i < pts.len() && pts[i][0] == x {
            y = y.max(pts[i][1]);
            i += 1;
        }
        if y > best_y {
            let x_next = if i < pts.len() { pts[i][0] } else { 0.0 };
            // The strip between x and the next distinct x gains height y;
            // account the full column [x_next, x] with height y, minus what
            // was already counted: handled by accumulating column-wise.
            let _ = x_next;
            area += x * (y - best_y);
            best_y = y;
        }
    }
    area
}

/// Maintains the frontier of all explored designs and exposes the
/// hypervolume-versus-simulations curve.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExplorationSet {
    points: Vec<PpaResult>,
}

impl ExplorationSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an evaluated design.
    pub fn push(&mut self, ppa: PpaResult) {
        self.points.push(ppa);
    }

    /// All points in insertion order.
    pub fn points(&self) -> &[PpaResult] {
        &self.points
    }

    /// Current Pareto-frontier points.
    pub fn frontier(&self) -> Vec<PpaResult> {
        pareto_front(&self.points)
            .into_iter()
            .map(|i| self.points[i])
            .collect()
    }

    /// Hypervolume of the set explored so far.
    pub fn hypervolume(&self, r: &RefPoint) -> f64 {
        hypervolume(&self.points, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(ipc: f64, power: f64, area: f64) -> PpaResult {
        PpaResult {
            ipc,
            power_w: power,
            area_mm2: area,
        }
    }

    #[test]
    fn dominance_basics() {
        assert!(dominates(&p(2.0, 0.2, 5.0), &p(1.0, 0.3, 6.0)));
        assert!(!dominates(&p(2.0, 0.2, 5.0), &p(1.0, 0.1, 6.0)));
        assert!(
            !dominates(&p(1.0, 0.2, 5.0), &p(1.0, 0.2, 5.0)),
            "equal points don't dominate"
        );
    }

    #[test]
    fn frontier_excludes_dominated_and_dedups() {
        let pts = vec![
            p(2.0, 0.2, 5.0),
            p(1.0, 0.3, 6.0), // dominated
            p(1.5, 0.1, 7.0),
            p(2.0, 0.2, 5.0), // duplicate
        ];
        let f = pareto_front(&pts);
        assert_eq!(f, vec![0, 2]);
    }

    #[test]
    fn hypervolume_single_point_is_box() {
        let r = RefPoint {
            ipc: 0.0,
            power_w: 1.0,
            area_mm2: 10.0,
        };
        let hv = hypervolume(&[p(2.0, 0.5, 4.0)], &r);
        assert!((hv - 2.0 * 0.5 * 6.0).abs() < 1e-9);
    }

    #[test]
    fn hypervolume_union_not_sum() {
        let r = RefPoint {
            ipc: 0.0,
            power_w: 1.0,
            area_mm2: 10.0,
        };
        let a = p(2.0, 0.5, 4.0);
        let b = p(1.0, 0.2, 2.0);
        let hv_both = hypervolume(&[a, b], &r);
        let hv_a = hypervolume(&[a], &r);
        let hv_b = hypervolume(&[b], &r);
        assert!(hv_both < hv_a + hv_b, "overlap must not double count");
        assert!(hv_both >= hv_a.max(hv_b));
    }

    #[test]
    fn hypervolume_monotone_under_added_points() {
        let r = RefPoint::default();
        let mut pts = vec![p(1.0, 0.3, 6.0)];
        let hv1 = hypervolume(&pts, &r);
        pts.push(p(1.5, 0.25, 5.0));
        let hv2 = hypervolume(&pts, &r);
        assert!(hv2 >= hv1);
        // A dominated addition changes nothing.
        pts.push(p(0.5, 0.4, 7.0));
        let hv3 = hypervolume(&pts, &r);
        assert!((hv3 - hv2).abs() < 1e-12);
    }

    #[test]
    fn points_outside_reference_are_ignored() {
        let r = RefPoint {
            ipc: 0.0,
            power_w: 1.0,
            area_mm2: 10.0,
        };
        assert_eq!(hypervolume(&[p(1.0, 2.0, 4.0)], &r), 0.0);
        assert_eq!(hypervolume(&[], &r), 0.0);
    }

    #[test]
    fn dominated_point_adds_no_volume() {
        let r = RefPoint {
            ipc: 0.0,
            power_w: 1.0,
            area_mm2: 10.0,
        };
        let big = p(2.0, 0.2, 2.0);
        let small = p(1.0, 0.5, 5.0); // dominated by big
        let hv = hypervolume(&[big, small], &r);
        assert!((hv - hypervolume(&[big], &r)).abs() < 1e-12);
    }

    #[test]
    fn non_finite_points_are_ignored_everywhere() {
        let good = p(2.0, 0.2, 5.0);
        let pts = vec![
            p(f64::NAN, 0.1, 1.0),
            p(f64::INFINITY, 0.1, 1.0), // would dominate everything
            good,
            p(1.0, f64::NEG_INFINITY, 1.0),
        ];
        assert_eq!(pareto_front(&pts), vec![2], "only the finite point");
        let r = RefPoint::default();
        let hv = hypervolume(&pts, &r);
        assert!(hv.is_finite());
        assert!((hv - hypervolume(&[good], &r)).abs() < 1e-12);
    }

    #[test]
    fn exploration_set_tracks_frontier() {
        let mut set = ExplorationSet::new();
        set.push(p(1.0, 0.3, 6.0));
        set.push(p(2.0, 0.2, 5.0));
        set.push(p(0.5, 0.5, 8.0));
        let f = set.frontier();
        assert_eq!(f.len(), 1);
        assert!((f[0].ipc - 2.0).abs() < 1e-12);
        assert!(set.hypervolume(&RefPoint::default()) > 0.0);
    }
}
