//! Write-ahead evaluation journal: one JSONL line per evaluated design,
//! flushed immediately, so a killed campaign can resume where it stopped.
//!
//! The first line is a fingerprint header describing the evaluator
//! configuration (workloads, instruction window, trace seed, simulation
//! limits); resuming against a journal written under a different
//! configuration is rejected rather than silently producing wrong
//! results. Record lines carry the design parameters, the per-workload
//! PPA and merged bottleneck report (or the failure that quarantined the
//! design), and the simulation cost, so a resumed evaluator can replay
//! the cache and the budget without re-simulating anything.
//!
//! A journal written by a process killed mid-line is still readable: a
//! truncated or corrupt *final* line is discarded (the evaluation it
//! described never completed its write, so it is simply redone);
//! corruption anywhere earlier is an error.
//!
//! Serialisation uses the telemetry crate's dependency-free
//! [`JsonValue`] — the workspace deliberately carries no JSON-framework
//! dependency.

use crate::eval::{Analysis, DesignEval, EvalError, EvalFailure};
use crate::space::ParamId;
use archx_deg::{BottleneckReport, NUM_SOURCES};
use archx_power::PpaResult;
use archx_sim::MicroArch;
use archx_telemetry::{self as telemetry, JsonValue};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// Evaluator configuration a journal is only valid for.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalFingerprint {
    /// Workload names, in evaluator order.
    pub workloads: Vec<String>,
    /// Instructions simulated per workload.
    pub instrs_per_workload: usize,
    /// Seed used to synthesise the workload traces.
    pub trace_seed: u64,
    /// Per-simulation cycle budget (`None` = unlimited).
    pub cycle_budget: Option<u64>,
    /// Deadlock-watchdog interval (cycles without a commit).
    pub deadlock_watchdog: u64,
    /// Free-form campaign metadata (method, search seed, budget, …);
    /// compared like every other field on resume.
    pub extra: Vec<(String, String)>,
}

/// One journaled evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// The design point.
    pub arch: MicroArch,
    /// Analysis backend the evaluation ran with.
    pub analysis: Analysis,
    /// Simulations this evaluation cost (all attempts included).
    pub sims_cost: u64,
    /// What came out.
    pub outcome: Result<DesignEval, EvalFailure>,
}

/// Journal I/O and consistency errors.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying file error.
    Io {
        /// Journal path.
        path: PathBuf,
        /// Rendered I/O error.
        message: String,
    },
    /// A non-final line failed to parse.
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The journal was written under a different configuration.
    Mismatch {
        /// Which fingerprint field differs.
        field: String,
        /// Value expected by the resuming evaluator.
        expected: String,
        /// Value found in the journal header.
        found: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { path, message } => {
                write!(f, "journal {}: {message}", path.display())
            }
            JournalError::Corrupt { line, message } => {
                write!(f, "journal line {line}: {message}")
            }
            JournalError::Mismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "journal was written under a different configuration: {field} is {found}, this campaign needs {expected}"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

/// An open, append-only evaluation journal.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Starts a fresh journal at `path` (truncating any existing file)
    /// and writes the fingerprint header.
    pub fn create(
        path: impl AsRef<Path>,
        fp: &JournalFingerprint,
    ) -> Result<Journal, JournalError> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::create(&path).map_err(|e| io_err(&path, &e))?;
        let mut line = header_to_json(fp).render();
        line.push('\n');
        file.write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| io_err(&path, &e))?;
        Ok(Journal { file, path })
    }

    /// Opens an existing journal for resumption: validates the header
    /// against `fp`, loads every complete record, and reopens the file in
    /// append mode. A missing file behaves like [`Journal::create`] (so
    /// the first run of a `--resume` campaign needs no special-casing).
    /// A truncated or corrupt final line is dropped; the design it
    /// described is simply re-evaluated.
    pub fn resume(
        path: impl AsRef<Path>,
        fp: &JournalFingerprint,
    ) -> Result<(Journal, Vec<JournalRecord>), JournalError> {
        let path = path.as_ref().to_path_buf();
        if !path.exists() {
            return Journal::create(&path, fp).map(|j| (j, Vec::new()));
        }
        let reader = BufReader::new(File::open(&path).map_err(|e| io_err(&path, &e))?);
        let lines: Vec<String> = reader
            .lines()
            .collect::<Result<_, _>>()
            .map_err(|e| io_err(&path, &e))?;
        let non_empty: Vec<(usize, &str)> = lines
            .iter()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty())
            .collect();
        let Some(&(_, header_line)) = non_empty.first() else {
            // Header never made it to disk: start over.
            return Journal::create(&path, fp).map(|j| (j, Vec::new()));
        };
        let header = JsonValue::parse(header_line).map_err(|e| JournalError::Corrupt {
            line: 1,
            message: format!("bad header: {e}"),
        })?;
        check_header(&header, fp)?;

        let mut records = Vec::new();
        let last = non_empty.len() - 1;
        for (pos, &(lineno, line)) in non_empty.iter().enumerate().skip(1) {
            match JsonValue::parse(line)
                .map_err(|e| e.to_string())
                .and_then(|v| record_from_json(&v))
            {
                Ok(rec) => records.push(rec),
                Err(message) if pos == last => {
                    // The write this line belonged to never completed
                    // (the process died mid-append); redo that evaluation.
                    telemetry::counter_add("journal/truncated_tail", 1);
                    let _ = message;
                }
                Err(message) => {
                    return Err(JournalError::Corrupt {
                        line: lineno,
                        message,
                    })
                }
            }
        }
        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| io_err(&path, &e))?;
        Ok((Journal { file, path }, records))
    }

    /// Appends one record and flushes it to the OS immediately (the
    /// write-ahead property: a `kill -9` after this call loses nothing).
    pub fn append(&mut self, rec: &JournalRecord) -> Result<(), JournalError> {
        let mut line = record_to_json(rec).render();
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| io_err(&self.path, &e))?;
        telemetry::counter_add("journal/appended", 1);
        Ok(())
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn io_err(path: &Path, e: &std::io::Error) -> JournalError {
    JournalError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

fn header_to_json(fp: &JournalFingerprint) -> JsonValue {
    JsonValue::Obj(vec![
        ("archx_journal".into(), JsonValue::Int(1)),
        (
            "workloads".into(),
            JsonValue::Arr(
                fp.workloads
                    .iter()
                    .map(|w| JsonValue::Str(w.clone()))
                    .collect(),
            ),
        ),
        (
            "instrs_per_workload".into(),
            JsonValue::Int(fp.instrs_per_workload as u64),
        ),
        ("trace_seed".into(), JsonValue::Int(fp.trace_seed)),
        (
            "cycle_budget".into(),
            fp.cycle_budget.map_or(JsonValue::Null, JsonValue::Int),
        ),
        (
            "deadlock_watchdog".into(),
            JsonValue::Int(fp.deadlock_watchdog),
        ),
        (
            "extra".into(),
            JsonValue::Obj(
                fp.extra
                    .iter()
                    .map(|(k, v)| (k.clone(), JsonValue::Str(v.clone())))
                    .collect(),
            ),
        ),
    ])
}

fn check_header(header: &JsonValue, fp: &JournalFingerprint) -> Result<(), JournalError> {
    let mismatch = |field: &str, expected: String, found: String| JournalError::Mismatch {
        field: field.to_string(),
        expected,
        found,
    };
    if header.get("archx_journal").is_none() {
        return Err(JournalError::Corrupt {
            line: 1,
            message: "not an archx journal (missing `archx_journal` field)".into(),
        });
    }
    let found_workloads: Vec<String> = match header.get("workloads") {
        Some(JsonValue::Arr(items)) => items
            .iter()
            .filter_map(|v| match v {
                JsonValue::Str(s) => Some(s.clone()),
                _ => None,
            })
            .collect(),
        _ => Vec::new(),
    };
    if found_workloads != fp.workloads {
        return Err(mismatch(
            "workloads",
            format!("{:?}", fp.workloads),
            format!("{found_workloads:?}"),
        ));
    }
    let int_field = |key: &str| -> Option<u64> {
        match header.get(key) {
            Some(JsonValue::Int(n)) => Some(*n),
            _ => None,
        }
    };
    let checks: [(&str, Option<u64>, Option<u64>); 3] = [
        (
            "instrs_per_workload",
            int_field("instrs_per_workload"),
            Some(fp.instrs_per_workload as u64),
        ),
        ("trace_seed", int_field("trace_seed"), Some(fp.trace_seed)),
        (
            "deadlock_watchdog",
            int_field("deadlock_watchdog"),
            Some(fp.deadlock_watchdog),
        ),
    ];
    for (field, found, expected) in checks {
        if found != expected {
            return Err(mismatch(
                field,
                format!("{expected:?}"),
                format!("{found:?}"),
            ));
        }
    }
    let found_budget = match header.get("cycle_budget") {
        Some(JsonValue::Int(n)) => Some(*n),
        _ => None,
    };
    if found_budget != fp.cycle_budget {
        return Err(mismatch(
            "cycle_budget",
            format!("{:?}", fp.cycle_budget),
            format!("{found_budget:?}"),
        ));
    }
    let found_extra: Vec<(String, String)> = match header.get("extra") {
        Some(JsonValue::Obj(pairs)) => pairs
            .iter()
            .filter_map(|(k, v)| match v {
                JsonValue::Str(s) => Some((k.clone(), s.clone())),
                _ => None,
            })
            .collect(),
        _ => Vec::new(),
    };
    if found_extra != fp.extra {
        return Err(mismatch(
            "extra",
            format!("{:?}", fp.extra),
            format!("{found_extra:?}"),
        ));
    }
    Ok(())
}

fn analysis_name(a: Analysis) -> &'static str {
    match a {
        Analysis::None => "none",
        Analysis::NewDeg => "new_deg",
        Analysis::Calipers => "calipers",
    }
}

fn analysis_from(name: &str) -> Option<Analysis> {
    Some(match name {
        "none" => Analysis::None,
        "new_deg" => Analysis::NewDeg,
        "calipers" => Analysis::Calipers,
        _ => return None,
    })
}

fn arch_to_json(arch: &MicroArch) -> JsonValue {
    JsonValue::Obj(
        ParamId::ALL
            .iter()
            .map(|&p| (p.to_string(), JsonValue::Int(u64::from(p.get(arch)))))
            .collect(),
    )
}

fn arch_from_json(v: &JsonValue) -> Result<MicroArch, String> {
    let mut arch = MicroArch::baseline();
    for &p in &ParamId::ALL {
        let name = p.to_string();
        match v.get(&name) {
            Some(JsonValue::Int(n)) => p.set(&mut arch, *n as u32),
            _ => return Err(format!("missing parameter `{name}`")),
        }
    }
    Ok(arch)
}

fn ppa_to_json(p: &PpaResult) -> JsonValue {
    JsonValue::Obj(vec![
        ("ipc".into(), JsonValue::Float(p.ipc)),
        ("power_w".into(), JsonValue::Float(p.power_w)),
        ("area_mm2".into(), JsonValue::Float(p.area_mm2)),
    ])
}

fn float_field(v: &JsonValue, key: &str) -> Result<f64, String> {
    match v.get(key) {
        Some(JsonValue::Float(x)) => Ok(*x),
        Some(JsonValue::Int(n)) => Ok(*n as f64),
        _ => Err(format!("missing float field `{key}`")),
    }
}

fn ppa_from_json(v: &JsonValue) -> Result<PpaResult, String> {
    Ok(PpaResult {
        ipc: float_field(v, "ipc")?,
        power_w: float_field(v, "power_w")?,
        area_mm2: float_field(v, "area_mm2")?,
    })
}

fn report_to_json(r: &BottleneckReport) -> JsonValue {
    JsonValue::Obj(vec![
        (
            "contributions".into(),
            JsonValue::Arr(
                r.contributions
                    .iter()
                    .map(|&c| JsonValue::Float(c))
                    .collect(),
            ),
        ),
        ("length".into(), JsonValue::Int(r.length)),
    ])
}

fn report_from_json(v: &JsonValue) -> Result<BottleneckReport, String> {
    let items = match v.get("contributions") {
        Some(JsonValue::Arr(items)) => items,
        _ => return Err("missing `contributions`".into()),
    };
    if items.len() != NUM_SOURCES {
        return Err(format!(
            "expected {NUM_SOURCES} contributions, found {}",
            items.len()
        ));
    }
    let mut contributions = [0.0f64; NUM_SOURCES];
    for (i, item) in items.iter().enumerate() {
        contributions[i] = match item {
            JsonValue::Float(x) => *x,
            JsonValue::Int(n) => *n as f64,
            _ => return Err("contribution not a number".into()),
        };
    }
    let length = match v.get("length") {
        Some(JsonValue::Int(n)) => *n,
        _ => return Err("missing `length`".into()),
    };
    Ok(BottleneckReport {
        contributions,
        length,
    })
}

fn record_to_json(rec: &JournalRecord) -> JsonValue {
    let mut pairs = vec![
        ("params".into(), arch_to_json(&rec.arch)),
        (
            "analysis".into(),
            JsonValue::Str(analysis_name(rec.analysis).into()),
        ),
        ("sims_cost".into(), JsonValue::Int(rec.sims_cost)),
    ];
    match &rec.outcome {
        Ok(eval) => {
            pairs.push(("outcome".into(), JsonValue::Str("ok".into())));
            pairs.push(("ppa".into(), ppa_to_json(&eval.ppa)));
            pairs.push((
                "per_workload".into(),
                JsonValue::Arr(eval.per_workload.iter().map(ppa_to_json).collect()),
            ));
            pairs.push((
                "report".into(),
                eval.report.as_ref().map_or(JsonValue::Null, report_to_json),
            ));
        }
        Err(failure) => {
            pairs.push(("outcome".into(), JsonValue::Str("failed".into())));
            pairs.push(("workload".into(), JsonValue::Str(failure.workload.clone())));
            pairs.push((
                "error".into(),
                JsonValue::Str(failure.error.tag().to_string()),
            ));
            pairs.push(("message".into(), JsonValue::Str(failure.error.to_string())));
            pairs.push((
                "attempts".into(),
                JsonValue::Int(u64::from(failure.attempts)),
            ));
        }
    }
    JsonValue::Obj(pairs)
}

fn record_from_json(v: &JsonValue) -> Result<JournalRecord, String> {
    let arch = arch_from_json(v.get("params").ok_or("missing `params`")?)?;
    let analysis = match v.get("analysis") {
        Some(JsonValue::Str(s)) => {
            analysis_from(s).ok_or_else(|| format!("unknown analysis `{s}`"))?
        }
        _ => return Err("missing `analysis`".into()),
    };
    let sims_cost = match v.get("sims_cost") {
        Some(JsonValue::Int(n)) => *n,
        _ => return Err("missing `sims_cost`".into()),
    };
    let str_field = |key: &str| -> Result<String, String> {
        match v.get(key) {
            Some(JsonValue::Str(s)) => Ok(s.clone()),
            _ => Err(format!("missing string field `{key}`")),
        }
    };
    let outcome = match str_field("outcome")?.as_str() {
        "ok" => {
            let ppa = ppa_from_json(v.get("ppa").ok_or("missing `ppa`")?)?;
            let per_workload = match v.get("per_workload") {
                Some(JsonValue::Arr(items)) => items
                    .iter()
                    .map(ppa_from_json)
                    .collect::<Result<Vec<_>, _>>()?,
                _ => return Err("missing `per_workload`".into()),
            };
            let report = match v.get("report") {
                Some(JsonValue::Null) | None => None,
                Some(r) => Some(report_from_json(r)?),
            };
            Ok(DesignEval {
                ppa,
                per_workload,
                report,
                analysis,
            })
        }
        "failed" => {
            let attempts = match v.get("attempts") {
                Some(JsonValue::Int(n)) => *n as u32,
                _ => return Err("missing `attempts`".into()),
            };
            Err(EvalFailure {
                workload: str_field("workload")?,
                error: EvalError::Journaled {
                    tag: str_field("error")?,
                    message: str_field("message")?,
                },
                attempts,
            })
        }
        other => return Err(format!("unknown outcome `{other}`")),
    };
    Ok(JournalRecord {
        arch,
        analysis,
        sims_cost,
        outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp() -> JournalFingerprint {
        JournalFingerprint {
            workloads: vec!["a".into(), "b".into()],
            instrs_per_workload: 1000,
            trace_seed: 7,
            cycle_budget: Some(50_000),
            deadlock_watchdog: 1_000_000,
            extra: vec![("method".into(), "Random".into())],
        }
    }

    fn ok_record() -> JournalRecord {
        let ppa = PpaResult {
            ipc: 1.25,
            power_w: 0.31,
            area_mm2: 9.5,
        };
        let mut report = BottleneckReport {
            contributions: [0.0; NUM_SOURCES],
            length: 4321,
        };
        report.contributions[0] = 0.25;
        report.contributions[3] = 0.125;
        JournalRecord {
            arch: MicroArch::baseline(),
            analysis: Analysis::NewDeg,
            sims_cost: 2,
            outcome: Ok(DesignEval {
                ppa,
                per_workload: vec![ppa, ppa],
                report: Some(report),
                analysis: Analysis::NewDeg,
            }),
        }
    }

    fn failed_record() -> JournalRecord {
        JournalRecord {
            arch: MicroArch::tiny(),
            analysis: Analysis::None,
            sims_cost: 4,
            outcome: Err(EvalFailure {
                workload: "b".into(),
                error: EvalError::Journaled {
                    tag: "deadlock".into(),
                    message: "pipeline deadlock at cycle 9".into(),
                },
                attempts: 2,
            }),
        }
    }

    #[test]
    fn records_round_trip_exactly() {
        for rec in [ok_record(), failed_record()] {
            let line = record_to_json(&rec).render();
            let back = record_from_json(&JsonValue::parse(&line).unwrap()).unwrap();
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn create_append_resume_roundtrip() {
        let dir = std::env::temp_dir().join(format!("archx-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.jsonl");
        {
            let mut j = Journal::create(&path, &fp()).unwrap();
            j.append(&ok_record()).unwrap();
            j.append(&failed_record()).unwrap();
        }
        let (_, records) = Journal::resume(&path, &fp()).unwrap();
        assert_eq!(records, vec![ok_record(), failed_record()]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_tail_is_dropped_not_fatal() {
        let dir = std::env::temp_dir().join(format!("archx-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.jsonl");
        {
            let mut j = Journal::create(&path, &fp()).unwrap();
            j.append(&ok_record()).unwrap();
        }
        // Simulate a crash mid-append: half a record at the end.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"params\":{\"Width\":4,\"Fetch").unwrap();
        }
        let (_, records) = Journal::resume(&path, &fp()).unwrap();
        assert_eq!(records, vec![ok_record()]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mismatched_fingerprint_is_rejected() {
        let dir = std::env::temp_dir().join(format!("archx-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mismatch.jsonl");
        {
            Journal::create(&path, &fp()).unwrap();
        }
        let mut other = fp();
        other.trace_seed = 8;
        match Journal::resume(&path, &other) {
            Err(JournalError::Mismatch { field, .. }) => assert_eq!(field, "trace_seed"),
            other => panic!("expected mismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_resumes_as_fresh() {
        let dir = std::env::temp_dir().join(format!("archx-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fresh.jsonl");
        let _ = std::fs::remove_file(&path);
        let (_, records) = Journal::resume(&path, &fp()).unwrap();
        assert!(records.is_empty());
        // The header was written, so a second resume also works.
        let (_, records) = Journal::resume(&path, &fp()).unwrap();
        assert!(records.is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
