//! Bottleneck-driven DSE guided by the *previous* DEG formulation
//! (the paper's Calipers comparison): the same reassignment loop as
//! ArchExplorer, but with bottleneck reports from the static-weight model —
//! so mis-estimated contributions steer the search.

use crate::archexplorer::{run_bottleneck_driven, ArchExplorerOptions};
use crate::eval::{Analysis, Evaluator, RunLog};
use crate::space::DesignSpace;

/// Runs the Calipers-guided bottleneck-removal DSE.
pub fn run_calipers_dse(
    space: &DesignSpace,
    evaluator: &Evaluator,
    sim_budget: u64,
    opts: &ArchExplorerOptions,
) -> RunLog {
    run_bottleneck_driven(
        space,
        evaluator,
        sim_budget,
        opts,
        "Calipers",
        |ev, arch| {
            ev.evaluate_with(arch, Analysis::Calipers)
                .map(|e| (e.ppa, e.report.expect("analysis requested")))
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use archx_workloads::spec06_suite;

    #[test]
    fn runs_and_uses_static_reports() {
        let suite: Vec<_> = spec06_suite().into_iter().take(2).collect();
        let ev = Evaluator::builder(suite)
            .window(1_000)
            .seed(1)
            .threads(1)
            .build();
        let log = run_calipers_dse(
            &DesignSpace::table4(),
            &ev,
            16,
            &ArchExplorerOptions::default(),
        );
        assert!(ev.sim_count() >= 16);
        assert_eq!(log.method, "Calipers");
        assert!(!log.records.is_empty());
    }
}
