//! ArchRanker-style DSE: a pairwise ranking model over design features
//! (Chen et al.). The model learns "which of two designs is better" from
//! simulated comparisons, then each round ranks a candidate pool by
//! tournament against the incumbent set and simulates the designs ranked
//! most promising.

use crate::eval::{Evaluator, RunLog};
use crate::ml::RankBoost;
use crate::space::DesignSpace;
use archx_sim::MicroArch;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// Tuning knobs for the ArchRanker baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankerOptions {
    /// Random designs simulated before the first fit.
    pub init_designs: usize,
    /// Candidate pool per round.
    pub pool: usize,
    /// Designs simulated per round.
    pub batch: usize,
    /// Boosting rounds of the ranking model.
    pub rounds: usize,
    /// Incumbents each candidate is compared against.
    pub tournament: usize,
}

impl Default for RankerOptions {
    fn default() -> Self {
        RankerOptions {
            init_designs: 10,
            pool: 256,
            batch: 4,
            rounds: 20,
            tournament: 8,
        }
    }
}

/// Runs the pairwise-ranking DSE until the budget is exhausted.
pub fn run_archranker(
    space: &DesignSpace,
    evaluator: &Evaluator,
    sim_budget: u64,
    seed: u64,
    opts: &RankerOptions,
) -> RunLog {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut log = RunLog::new("ArchRanker");
    let mut seen: HashSet<MicroArch> = HashSet::new();
    // (features, tradeoff) of every simulated design.
    let mut evaluated: Vec<(Vec<f64>, f64)> = Vec::new();

    let simulate = |arch: MicroArch,
                    log: &mut RunLog,
                    evaluated: &mut Vec<(Vec<f64>, f64)>,
                    seen: &mut HashSet<MicroArch>| {
        if !seen.insert(arch) {
            return;
        }
        // A quarantined design trains nothing; its budget is spent.
        let Ok(e) = evaluator.evaluate(&arch) else {
            return;
        };
        log.push(arch, e.ppa, evaluator.sim_count());
        evaluated.push((space.features(&arch), e.ppa.tradeoff()));
    };

    for _ in 0..opts.init_designs {
        if evaluator.sim_count() >= sim_budget {
            return log;
        }
        let arch = space.random(&mut rng);
        simulate(arch, &mut log, &mut evaluated, &mut seen);
    }

    while evaluator.sim_count() < sim_budget {
        // All ordered pairs with distinct outcomes become training data.
        let mut pairs: Vec<(Vec<f64>, Vec<f64>)> = Vec::new();
        for i in 0..evaluated.len() {
            for j in i + 1..evaluated.len() {
                let (fi, ti) = &evaluated[i];
                let (fj, tj) = &evaluated[j];
                if ti > tj {
                    pairs.push((fi.clone(), fj.clone()));
                } else if tj > ti {
                    pairs.push((fj.clone(), fi.clone()));
                }
            }
        }
        if pairs.is_empty() {
            let arch = space.random(&mut rng);
            simulate(arch, &mut log, &mut evaluated, &mut seen);
            continue;
        }
        // Cap pair count to keep fitting cheap on long runs.
        pairs.truncate(2_000);
        let ranker = RankBoost::fit(&pairs, opts.rounds);

        // Rank candidates by wins against the best incumbents.
        let mut incumbents: Vec<&(Vec<f64>, f64)> = evaluated.iter().collect();
        incumbents.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite tradeoffs"));
        incumbents.truncate(opts.tournament);
        let mut scored: Vec<(f64, MicroArch)> = (0..opts.pool)
            .map(|_| {
                let a = space.random(&mut rng);
                let f = space.features(&a);
                let wins: f64 = incumbents
                    .iter()
                    .map(|(inc, _)| ranker.compare(&f, inc))
                    .sum();
                (wins, a)
            })
            .filter(|(_, a)| !seen.contains(a))
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));
        for (_, arch) in scored.into_iter().take(opts.batch) {
            if evaluator.sim_count() >= sim_budget {
                break;
            }
            simulate(arch, &mut log, &mut evaluated, &mut seen);
        }
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use archx_workloads::spec06_suite;

    #[test]
    fn respects_budget() {
        let suite: Vec<_> = spec06_suite().into_iter().take(2).collect();
        let ev = Evaluator::builder(suite)
            .window(1_000)
            .seed(1)
            .threads(1)
            .build();
        let log = run_archranker(
            &DesignSpace::table4(),
            &ev,
            26,
            3,
            &RankerOptions::default(),
        );
        assert!(ev.sim_count() >= 26);
        assert!(log.records.len() >= 13);
        assert_eq!(log.method, "ArchRanker");
    }
}
