//! Uniform random search over the design space.

use crate::eval::{Evaluator, RunLog};
use crate::space::DesignSpace;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Evaluates uniformly random designs until the budget is exhausted.
pub fn run_random_search(
    space: &DesignSpace,
    evaluator: &Evaluator,
    sim_budget: u64,
    seed: u64,
) -> RunLog {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut log = RunLog::new("Random");
    while evaluator.sim_count() < sim_budget {
        let arch = space.random(&mut rng);
        // Quarantined designs consumed budget but produce no record;
        // the search just keeps sampling.
        let Ok(e) = evaluator.evaluate(&arch) else {
            continue;
        };
        log.push(arch, e.ppa, evaluator.sim_count());
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use archx_workloads::spec06_suite;

    #[test]
    fn explores_until_budget() {
        let suite: Vec<_> = spec06_suite().into_iter().take(2).collect();
        let ev = Evaluator::builder(suite)
            .window(1_000)
            .seed(1)
            .threads(1)
            .build();
        let log = run_random_search(&DesignSpace::table4(), &ev, 10, 42);
        assert!(ev.sim_count() >= 10);
        assert!(log.records.len() >= 5);
        // Designs should (almost surely) be distinct.
        let distinct: std::collections::HashSet<_> = log.records.iter().map(|r| r.arch).collect();
        assert!(distinct.len() > 1);
    }
}
