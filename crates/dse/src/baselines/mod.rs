//! Baseline DSE methods the paper compares against: random search,
//! AdaBoost(.RT), ArchRanker-style pairwise ranking, a
//! BOOM-Explorer-style Gaussian-process Bayesian optimiser, and the
//! Calipers-guided variant of bottleneck-driven search.
//!
//! Fidelity notes (also in DESIGN.md): the published baselines target
//! multi-objective spaces with method-specific machinery (ArchRanker's
//! constrained binary search, BOOM-Explorer's DKL-GP with EIPV). Here each
//! keeps its algorithmic core — the surrogate/ranking model and its
//! acquisition loop — while sharing this crate's evaluator; acquisition is
//! driven by the paper's scalar PPA trade-off `Perf²/(Power×Area)` and the
//! Pareto frontier is computed from all simulated designs, exactly as the
//! paper evaluates every method by the hypervolume of its exploration set.

pub mod adaboost;
pub mod boom;
pub mod calipers_dse;
pub mod random;
pub mod ranker;

pub use adaboost::run_adaboost;
pub use boom::run_boom_explorer;
pub use calipers_dse::run_calipers_dse;
pub use random::run_random_search;
pub use ranker::run_archranker;
