//! AdaBoost(.RT)-driven DSE (the paper's AdaBoost baseline, after
//! Li et al.'s "efficient sampling + ensemble learning" methodology).
//!
//! An initial random sample trains an AdaBoost.RT regressor from design
//! features to the PPA trade-off; each round the model screens a large
//! random candidate pool and the top predictions are simulated and added
//! to the training set.

use crate::eval::{Evaluator, RunLog};
use crate::ml::AdaBoostRt;
use crate::space::DesignSpace;
use archx_sim::MicroArch;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// Tuning knobs for the AdaBoost baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaBoostOptions {
    /// Random designs simulated before the first model fit.
    pub init_designs: usize,
    /// Candidate pool screened per round.
    pub pool: usize,
    /// Designs simulated per round.
    pub batch: usize,
    /// Boosting rounds per fit.
    pub rounds: usize,
}

impl Default for AdaBoostOptions {
    fn default() -> Self {
        AdaBoostOptions {
            init_designs: 8,
            pool: 512,
            batch: 4,
            rounds: 25,
        }
    }
}

/// Runs the AdaBoost.RT DSE until the budget is exhausted.
pub fn run_adaboost(
    space: &DesignSpace,
    evaluator: &Evaluator,
    sim_budget: u64,
    seed: u64,
    opts: &AdaBoostOptions,
) -> RunLog {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut log = RunLog::new("AdaBoost");
    let mut seen: HashSet<MicroArch> = HashSet::new();
    let mut x: Vec<Vec<f64>> = Vec::new();
    let mut y: Vec<f64> = Vec::new();

    let simulate = |arch: MicroArch,
                    log: &mut RunLog,
                    x: &mut Vec<Vec<f64>>,
                    y: &mut Vec<f64>,
                    seen: &mut HashSet<MicroArch>| {
        if !seen.insert(arch) {
            return;
        }
        // A quarantined design trains nothing; its budget is spent.
        let Ok(e) = evaluator.evaluate(&arch) else {
            return;
        };
        log.push(arch, e.ppa, evaluator.sim_count());
        x.push(space.features(&arch));
        y.push(e.ppa.tradeoff());
    };

    for _ in 0..opts.init_designs {
        if evaluator.sim_count() >= sim_budget {
            return log;
        }
        let arch = space.random(&mut rng);
        simulate(arch, &mut log, &mut x, &mut y, &mut seen);
    }

    while evaluator.sim_count() < sim_budget {
        let model = AdaBoostRt::fit(&x, &y, opts.rounds, 2, 0.05);
        // Screen a pool, keep the best-predicted unseen designs.
        let mut scored: Vec<(f64, MicroArch)> = (0..opts.pool)
            .map(|_| {
                let a = space.random(&mut rng);
                (model.predict(&space.features(&a)), a)
            })
            .filter(|(_, a)| !seen.contains(a))
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite predictions"));
        for (_, arch) in scored.into_iter().take(opts.batch) {
            if evaluator.sim_count() >= sim_budget {
                break;
            }
            simulate(arch, &mut log, &mut x, &mut y, &mut seen);
        }
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::random::run_random_search;
    use crate::pareto::RefPoint;
    use archx_workloads::spec06_suite;

    #[test]
    fn runs_within_budget_and_learns() {
        let suite: Vec<_> = spec06_suite().into_iter().take(2).collect();
        let space = DesignSpace::table4();
        let ev = Evaluator::builder(suite.clone())
            .window(1_000)
            .seed(1)
            .threads(1)
            .build();
        let log = run_adaboost(&space, &ev, 30, 7, &AdaBoostOptions::default());
        assert!(ev.sim_count() >= 30);
        assert!(!log.records.is_empty());
        // Sanity: the curve exists and is monotone.
        let curve = log.hypervolume_curve(&RefPoint::default(), 10);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        // And a random run on the same budget also works (smoke parity).
        let ev2 = Evaluator::builder(suite)
            .window(1_000)
            .seed(1)
            .threads(1)
            .build();
        let _ = run_random_search(&space, &ev2, 30, 7);
    }
}
