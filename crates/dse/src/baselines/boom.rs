//! BOOM-Explorer-style Bayesian optimisation (Bai et al.): a
//! Gaussian-process surrogate with diversity-aware initial sampling and an
//! expected-improvement acquisition, batched per round.

use crate::eval::{Evaluator, RunLog};
use crate::ml::GaussianProcess;
use crate::space::DesignSpace;
use archx_sim::MicroArch;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// Tuning knobs for the BOOM-Explorer baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoomOptions {
    /// Initial designs chosen by maximin diversity sampling.
    pub init_designs: usize,
    /// Pool size for both initial sampling and acquisition.
    pub pool: usize,
    /// Designs simulated per acquisition round.
    pub batch: usize,
    /// GP observation noise.
    pub noise: f64,
}

impl Default for BoomOptions {
    fn default() -> Self {
        BoomOptions {
            init_designs: 8,
            pool: 512,
            batch: 2,
            noise: 1e-4,
        }
    }
}

/// Maximin (farthest-point) selection of `k` diverse designs from a pool —
/// the stand-in for BOOM-Explorer's clustered initial sampling.
fn maximin_sample(space: &DesignSpace, pool: &[MicroArch], k: usize) -> Vec<MicroArch> {
    if pool.is_empty() {
        return Vec::new();
    }
    let feats: Vec<Vec<f64>> = pool.iter().map(|a| space.features(a)).collect();
    let mut chosen = vec![0usize];
    while chosen.len() < k.min(pool.len()) {
        let next = (0..pool.len())
            .filter(|i| !chosen.contains(i))
            .max_by(|&a, &b| {
                let da = chosen
                    .iter()
                    .map(|&c| sq(&feats[a], &feats[c]))
                    .fold(f64::INFINITY, f64::min);
                let db = chosen
                    .iter()
                    .map(|&c| sq(&feats[b], &feats[c]))
                    .fold(f64::INFINITY, f64::min);
                da.partial_cmp(&db).expect("finite distances")
            })
            .expect("non-empty remainder");
        chosen.push(next);
    }
    chosen.into_iter().map(|i| pool[i]).collect()
}

fn sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Runs GP Bayesian optimisation until the budget is exhausted.
pub fn run_boom_explorer(
    space: &DesignSpace,
    evaluator: &Evaluator,
    sim_budget: u64,
    seed: u64,
    opts: &BoomOptions,
) -> RunLog {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut log = RunLog::new("BOOM-Explorer");
    let mut seen: HashSet<MicroArch> = HashSet::new();
    let mut x: Vec<Vec<f64>> = Vec::new();
    let mut y: Vec<f64> = Vec::new();

    let simulate = |arch: MicroArch,
                    log: &mut RunLog,
                    x: &mut Vec<Vec<f64>>,
                    y: &mut Vec<f64>,
                    seen: &mut HashSet<MicroArch>| {
        if !seen.insert(arch) {
            return;
        }
        // A quarantined design trains nothing; its budget is spent.
        let Ok(e) = evaluator.evaluate(&arch) else {
            return;
        };
        log.push(arch, e.ppa, evaluator.sim_count());
        x.push(space.features(&arch));
        y.push(e.ppa.tradeoff());
    };

    // Diversity-aware initialisation.
    let pool: Vec<MicroArch> = (0..opts.pool).map(|_| space.random(&mut rng)).collect();
    for arch in maximin_sample(space, &pool, opts.init_designs) {
        if evaluator.sim_count() >= sim_budget {
            return log;
        }
        simulate(arch, &mut log, &mut x, &mut y, &mut seen);
    }

    while evaluator.sim_count() < sim_budget {
        let gp = GaussianProcess::fit(x.clone(), &y, opts.noise);
        let best = y.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut scored: Vec<(f64, MicroArch)> = (0..opts.pool)
            .map(|_| {
                let a = space.random(&mut rng);
                (gp.expected_improvement(&space.features(&a), best), a)
            })
            .filter(|(_, a)| !seen.contains(a))
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite EI"));
        let mut advanced = false;
        for (_, arch) in scored.into_iter().take(opts.batch) {
            if evaluator.sim_count() >= sim_budget {
                break;
            }
            simulate(arch, &mut log, &mut x, &mut y, &mut seen);
            advanced = true;
        }
        if !advanced {
            // Degenerate pool (all seen): fall back to random.
            let arch = space.random(&mut rng);
            simulate(arch, &mut log, &mut x, &mut y, &mut seen);
        }
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use archx_workloads::spec06_suite;

    #[test]
    fn maximin_prefers_spread() {
        let space = DesignSpace::table4();
        let mut rng = StdRng::seed_from_u64(1);
        let pool: Vec<MicroArch> = (0..50).map(|_| space.random(&mut rng)).collect();
        let chosen = maximin_sample(&space, &pool, 5);
        assert_eq!(chosen.len(), 5);
        let distinct: HashSet<_> = chosen.iter().collect();
        assert_eq!(distinct.len(), 5);
    }

    #[test]
    fn respects_budget() {
        let suite: Vec<_> = spec06_suite().into_iter().take(2).collect();
        let ev = Evaluator::builder(suite)
            .window(1_000)
            .seed(1)
            .threads(1)
            .build();
        let log = run_boom_explorer(&DesignSpace::table4(), &ev, 24, 5, &BoomOptions::default());
        assert!(ev.sim_count() >= 24);
        assert!(log.records.len() >= 12);
        assert_eq!(log.method, "BOOM-Explorer");
    }
}
