//! Design evaluation: simulate a workload suite, model power/area, and
//! (for bottleneck-driven explorers) produce the merged bottleneck report.
//!
//! Mirrors the paper's methodology: DSE-time analysis uses a bounded
//! instruction window per workload (the paper uses the first 100 K
//! instructions of each Simpoint), every workload simulation counts as one
//! simulation toward the budget, and results are cached per design.

use crate::pareto::{ExplorationSet, RefPoint};
use archx_deg::{build_deg, critical, induce, merge_reports, BottleneckReport};
use archx_power::{PowerModel, PpaResult};
use archx_sim::isa::Instruction;
use archx_sim::{MicroArch, OooCore};
use archx_telemetry::{self as telemetry, Progress, ProgressSink};
use archx_workloads::Workload;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Which bottleneck analysis to run alongside the simulations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Analysis {
    /// Simulation only.
    None,
    /// The paper's new DEG formulation (induced DEG + Algorithm 1).
    NewDeg,
    /// The prior static formulation (Calipers baseline).
    Calipers,
}

/// Evaluation of one design over the whole suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignEval {
    /// Suite-average PPA (arithmetic mean of IPC and power; area is
    /// workload independent).
    pub ppa: PpaResult,
    /// Per-workload PPA, aligned with the evaluator's workload list.
    pub per_workload: Vec<PpaResult>,
    /// Weighted bottleneck report (Eq. 2), present when analysis was
    /// requested.
    pub report: Option<BottleneckReport>,
    /// Which analysis produced `report`.
    pub analysis: Analysis,
}

/// Campaign-progress state carried by the evaluator: who is searching,
/// against what budget, and the frontier statistics accumulated so far.
struct ProgressMeta {
    source: String,
    sim_budget: u64,
    sink: Option<Arc<dyn ProgressSink>>,
    set: ExplorationSet,
    best_tradeoff: f64,
}

impl Default for ProgressMeta {
    fn default() -> Self {
        ProgressMeta {
            source: "eval".to_string(),
            sim_budget: 0,
            sink: None,
            set: ExplorationSet::new(),
            best_tradeoff: 0.0,
        }
    }
}

/// Shared evaluator with a design cache and a simulation budget counter.
pub struct Evaluator {
    workloads: Vec<Workload>,
    traces: Vec<Vec<Instruction>>,
    power: PowerModel,
    threads: usize,
    sims: AtomicU64,
    cache: Mutex<HashMap<MicroArch, DesignEval>>,
    progress: Mutex<ProgressMeta>,
}

impl std::fmt::Debug for Evaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Evaluator")
            .field("workloads", &self.workloads.len())
            .field("instrs", &self.traces.first().map_or(0, Vec::len))
            .field("sims", &self.sim_count())
            .finish()
    }
}

impl Evaluator {
    /// Builds an evaluator over `workloads`, synthesising
    /// `instrs_per_workload` instructions per trace with the given seed.
    pub fn new(workloads: Vec<Workload>, instrs_per_workload: usize, seed: u64) -> Self {
        let traces = workloads
            .iter()
            .map(|w| w.generate(instrs_per_workload, seed))
            .collect();
        Evaluator {
            workloads,
            traces,
            power: PowerModel::default(),
            threads: crate::default_threads(),
            sims: AtomicU64::new(0),
            cache: Mutex::new(HashMap::new()),
            progress: Mutex::new(ProgressMeta::default()),
        }
    }

    /// Restricts worker threads (1 = fully serial, deterministic ordering
    /// is preserved either way).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The workload suite.
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    /// Simulations performed so far (one per workload per uncached design).
    pub fn sim_count(&self) -> u64 {
        self.sims.load(Ordering::Relaxed)
    }

    /// Labels this evaluator's progress events (`source`, typically the
    /// search method's name) and the simulation budget they report against.
    pub fn set_progress_target(&self, source: impl Into<String>, sim_budget: u64) {
        let mut meta = self.progress.lock();
        meta.source = source.into();
        meta.sim_budget = sim_budget;
    }

    /// Attaches a per-evaluator progress sink (in addition to any sinks on
    /// the global telemetry registry). One sink per evaluator; a second
    /// call replaces the first.
    pub fn set_progress_sink(&self, sink: Arc<dyn ProgressSink>) {
        self.progress.lock().sink = Some(sink);
    }

    /// Evaluates a design (simulation + PPA only, no bottleneck analysis).
    ///
    /// Cached: re-evaluating a design costs no simulations.
    pub fn evaluate(&self, arch: &MicroArch) -> DesignEval {
        self.evaluate_with(arch, Analysis::None)
    }

    /// Evaluates a design with an explicit bottleneck-analysis backend:
    /// [`Analysis::NewDeg`] additionally builds the induced DEG and merges
    /// per-workload bottleneck reports (Eq. 2).
    ///
    /// Cached: re-evaluating a design costs no simulations. A cached
    /// design evaluated without a report will be re-simulated if a report
    /// is later requested (counting simulations again, as the paper's
    /// trace-dumping runs would).
    pub fn evaluate_with(&self, arch: &MicroArch, analysis: Analysis) -> DesignEval {
        if let Some(hit) = self.cache.lock().get(arch) {
            if analysis == Analysis::None || hit.analysis == analysis {
                telemetry::counter_add("eval/cache/hit", 1);
                return hit.clone();
            }
        }
        telemetry::counter_add("eval/cache/miss", 1);
        let eval = self.evaluate_uncached(arch, analysis);
        self.cache.lock().insert(*arch, eval.clone());
        eval
    }

    fn evaluate_uncached(&self, arch: &MicroArch, analysis: Analysis) -> DesignEval {
        let n = self.workloads.len();
        let mut per_workload = vec![
            PpaResult {
                ipc: 0.0,
                power_w: 0.0,
                area_mm2: 0.0
            };
            n
        ];
        let mut reports: Vec<Option<BottleneckReport>> = vec![None; n];

        let run_one = |i: usize| -> (PpaResult, Option<BottleneckReport>) {
            // Everything below is attributed under `eval/...` — absolute,
            // so names match whether this runs on the caller's thread
            // (serial path) or on a worker. Scopes are thread-local.
            let _root = telemetry::root_scope();
            let _scope = telemetry::scope("eval");
            let started = Instant::now();
            let result = {
                let _timed = telemetry::span("simulate");
                OooCore::new(*arch).run(&self.traces[i])
            };
            telemetry::record("eval/sim_latency_us", started.elapsed().as_micros() as u64);
            result.stats.export_telemetry();
            let ppa = self.power.evaluate(arch, &result.stats);
            let report = match analysis {
                Analysis::None => None,
                Analysis::NewDeg => {
                    let mut deg = induce(build_deg(&result));
                    let path = critical::critical_path_mut(&mut deg);
                    Some(archx_deg::bottleneck::analyze(&deg, &path))
                }
                Analysis::Calipers => {
                    Some(archx_deg::CalipersModel::from_arch(arch).analyze(&result).1)
                }
            };
            (ppa, report)
        };

        if self.threads <= 1 || n <= 1 {
            for i in 0..n {
                let (ppa, rep) = run_one(i);
                per_workload[i] = ppa;
                reports[i] = rep;
            }
        } else {
            let next = AtomicU64::new(0);
            let results: Mutex<Vec<(usize, PpaResult, Option<BottleneckReport>)>> =
                Mutex::new(Vec::with_capacity(n));
            crossbeam::scope(|s| {
                for _ in 0..self.threads.min(n) {
                    s.spawn(|_| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                        if i >= n {
                            break;
                        }
                        let (ppa, rep) = run_one(i);
                        results.lock().push((i, ppa, rep));
                    });
                }
            })
            .expect("worker panicked");
            for (i, ppa, rep) in results.into_inner() {
                per_workload[i] = ppa;
                reports[i] = rep;
            }
        }

        self.sims.fetch_add(n as u64, Ordering::Relaxed);

        let ipc = per_workload.iter().map(|p| p.ipc).sum::<f64>() / n as f64;
        let power = per_workload.iter().map(|p| p.power_w).sum::<f64>() / n as f64;
        let area = per_workload[0].area_mm2;
        let mean_ppa = PpaResult {
            ipc,
            power_w: power,
            area_mm2: area,
        };
        self.emit_progress(mean_ppa);
        let report = if analysis != Analysis::None {
            let reps: Vec<BottleneckReport> = reports
                .into_iter()
                .map(|r| r.expect("analysis requested"))
                .collect();
            let weights: Vec<f64> = self.workloads.iter().map(|w| w.weight).collect();
            Some(merge_reports(&reps, &weights))
        } else {
            None
        };
        DesignEval {
            ppa: mean_ppa,
            per_workload,
            report,
            analysis,
        }
    }

    /// Publishes one progress event (after each uncached evaluation) to the
    /// per-evaluator sink and the global telemetry sinks.
    fn emit_progress(&self, ppa: PpaResult) {
        let (event, sink) = {
            let mut meta = self.progress.lock();
            meta.set.push(ppa);
            meta.best_tradeoff = meta.best_tradeoff.max(ppa.tradeoff());
            let event = Progress {
                source: meta.source.clone(),
                sims_done: self.sim_count(),
                sim_budget: meta.sim_budget,
                hypervolume: meta.set.hypervolume(&RefPoint::default()),
                best_tradeoff: meta.best_tradeoff,
            };
            (event, meta.sink.clone())
        };
        if let Some(sink) = sink {
            sink.on_progress(&event);
        }
        telemetry::progress(&event);
    }
}

/// One evaluated design within an exploration run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalRecord {
    /// The design.
    pub arch: MicroArch,
    /// Suite-average PPA.
    pub ppa: PpaResult,
    /// Cumulative simulation count after this evaluation.
    pub sims_after: u64,
}

/// Log of an exploration run: every design in evaluation order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunLog {
    /// Method label.
    pub method: String,
    /// Records in evaluation order.
    pub records: Vec<EvalRecord>,
}

impl RunLog {
    /// Empty log for a method.
    pub fn new(method: impl Into<String>) -> Self {
        RunLog {
            method: method.into(),
            records: Vec::new(),
        }
    }

    /// Appends a record (one search iteration).
    pub fn push(&mut self, arch: MicroArch, ppa: PpaResult, sims_after: u64) {
        telemetry::counter_add("dse/iteration", 1);
        self.records.push(EvalRecord {
            arch,
            ppa,
            sims_after,
        });
    }

    /// Hypervolume as a function of cumulative simulations, sampled at
    /// each multiple of `step`.
    pub fn hypervolume_curve(&self, r: &crate::pareto::RefPoint, step: u64) -> Vec<(u64, f64)> {
        assert!(step > 0, "step must be positive");
        let mut curve = Vec::new();
        let max_sims = self.records.last().map_or(0, |r| r.sims_after);
        let mut set = ExplorationSet::new();
        let mut it = self.records.iter().peekable();
        let mut budget = step;
        while budget <= max_sims {
            while let Some(rec) = it.peek() {
                if rec.sims_after <= budget {
                    set.push(rec.ppa);
                    it.next();
                } else {
                    break;
                }
            }
            curve.push((budget, set.hypervolume(r)));
            budget += step;
        }
        curve
    }

    /// Pareto frontier over all records: `(arch, ppa)` pairs.
    pub fn frontier(&self) -> Vec<(MicroArch, PpaResult)> {
        let pts: Vec<PpaResult> = self.records.iter().map(|r| r.ppa).collect();
        crate::pareto::pareto_front(&pts)
            .into_iter()
            .map(|i| (self.records[i].arch, self.records[i].ppa))
            .collect()
    }

    /// Best design by the paper's PPA trade-off metric.
    pub fn best_tradeoff(&self) -> Option<&EvalRecord> {
        self.records.iter().max_by(|a, b| {
            a.ppa
                .tradeoff()
                .partial_cmp(&b.ppa.tradeoff())
                .expect("finite tradeoff")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archx_workloads::spec06_suite;

    fn small_eval() -> Evaluator {
        let suite: Vec<Workload> = spec06_suite().into_iter().take(2).collect();
        Evaluator::new(suite, 2_000, 1).with_threads(1)
    }

    #[test]
    fn evaluation_counts_sims_and_caches() {
        let ev = small_eval();
        let arch = MicroArch::baseline();
        let e1 = ev.evaluate(&arch);
        assert_eq!(ev.sim_count(), 2);
        let e2 = ev.evaluate(&arch);
        assert_eq!(ev.sim_count(), 2, "cache hit must not count");
        assert_eq!(e1, e2);
        assert!(e1.ppa.ipc > 0.0);
        assert_eq!(e1.per_workload.len(), 2);
    }

    #[test]
    fn analysis_produces_merged_report() {
        let ev = small_eval();
        let e = ev.evaluate_with(&MicroArch::tiny(), Analysis::NewDeg);
        let rep = e.report.expect("requested analysis");
        assert!(rep.total() > 0.5);
    }

    #[test]
    fn parallel_matches_serial() {
        let suite: Vec<Workload> = spec06_suite().into_iter().take(3).collect();
        let serial = Evaluator::new(suite.clone(), 2_000, 1).with_threads(1);
        let parallel = Evaluator::new(suite, 2_000, 1).with_threads(3);
        let a = serial.evaluate_with(&MicroArch::baseline(), Analysis::NewDeg);
        let b = parallel.evaluate_with(&MicroArch::baseline(), Analysis::NewDeg);
        assert_eq!(a, b, "thread count must not change results");
    }

    #[test]
    fn progress_events_reach_the_sink() {
        let ev = small_eval();
        let sink = Arc::new(telemetry::CollectingSink::new());
        ev.set_progress_target("test", 4);
        ev.set_progress_sink(sink.clone());
        ev.evaluate(&MicroArch::baseline());
        ev.evaluate(&MicroArch::baseline()); // cached: no new event
        let events = sink.events();
        assert_eq!(events.len(), 1, "one event per uncached evaluation");
        assert_eq!(events[0].source, "test");
        assert_eq!(events[0].sims_done, 2);
        assert_eq!(events[0].sim_budget, 4);
        assert!(events[0].hypervolume > 0.0);
        assert!(events[0].best_tradeoff > 0.0);
    }

    #[test]
    fn runlog_curve_is_monotone() {
        let mut log = RunLog::new("test");
        let mk = |ipc: f64| PpaResult {
            ipc,
            power_w: 0.2,
            area_mm2: 5.0,
        };
        log.push(MicroArch::baseline(), mk(0.5), 2);
        log.push(MicroArch::baseline(), mk(1.0), 4);
        log.push(MicroArch::baseline(), mk(0.8), 6);
        let curve = log.hypervolume_curve(&crate::pareto::RefPoint::default(), 2);
        assert_eq!(curve.len(), 3);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "hypervolume must be non-decreasing");
        }
        assert!((log.best_tradeoff().unwrap().ppa.ipc - 1.0).abs() < 1e-12);
    }
}
