//! Design evaluation: simulate a workload suite, model power/area, and
//! (for bottleneck-driven explorers) produce the merged bottleneck report.
//!
//! Mirrors the paper's methodology: DSE-time analysis uses a bounded
//! instruction window per workload (the paper uses the first 100 K
//! instructions of each Simpoint), every workload simulation counts as one
//! simulation toward the budget, and results are cached per design.
//!
//! ## Failure handling
//!
//! Long campaigns evaluate thousands of design points, so a pathological
//! one must not abort the search. Every per-workload simulation runs
//! behind `catch_unwind` with the simulator's typed errors mapped into
//! [`EvalError`]; a failed design gets one bounded retry with a halved
//! instruction window (transient blow-ups — deadlock watchdogs, cycle
//! budgets — often clear in a smaller window), and a persistently failing
//! design is **quarantined**: recorded in the evaluator's quarantine log,
//! cached as failed (so it is never re-simulated), journaled, and
//! reported to the caller as `Err`. Searches skip quarantined designs and
//! keep spending the remaining budget. Every attempt costs one simulation
//! per workload regardless of outcome, so a budget always terminates even
//! if every sampled design fails.

use crate::governor::ThreadGovernor;
use crate::journal::{Journal, JournalFingerprint, JournalRecord};
use crate::pareto::{ExplorationSet, RefPoint};
use archx_deg::{build_deg_in, critical, induce, merge_reports, BottleneckReport, DegArena};
use archx_power::{PowerModel, PpaResult};
use archx_sim::arena::SimArena;
use archx_sim::isa::Instruction;
use archx_sim::pipeline::DEADLOCK_WATCHDOG;
use archx_sim::{Cycle, MicroArch, OooCore, SimError};
use archx_telemetry::{self as telemetry, Progress, ProgressSink};
use archx_workloads::{TraceStore, Workload};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Per-worker-thread scratch memory for the evaluation hot path: the
/// simulator's working set plus the DEG builder/critical-path buffers.
/// Cleared (never reallocated) between evaluations; see the arena docs for
/// the identity guarantee.
#[derive(Default)]
struct EvalArena {
    sim: SimArena,
    deg: DegArena,
    used: bool,
}

thread_local! {
    /// One arena per worker thread. Campaign jobs evaluate with
    /// `threads = 1` on a long-lived worker thread, so this persists
    /// across the thousands of evaluations of a run — the intended hot
    /// path. Threads spawned per-attempt (multi-threaded evaluators) get
    /// fresh arenas and merely lose the reuse benefit.
    static EVAL_ARENA: RefCell<EvalArena> = RefCell::new(EvalArena::default());
}

/// Outcome of one workload's simulation attempt: its PPA and (when
/// requested) bottleneck report, or the typed error that stopped it.
type AttemptOutcome = Result<(PpaResult, Option<BottleneckReport>), EvalError>;

/// Which bottleneck analysis to run alongside the simulations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Analysis {
    /// Simulation only.
    None,
    /// The paper's new DEG formulation (induced DEG + Algorithm 1).
    NewDeg,
    /// The prior static formulation (Calipers baseline).
    Calipers,
}

/// Evaluation of one design over the whole suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignEval {
    /// Suite-average PPA (arithmetic mean of IPC and power; area is
    /// workload independent).
    pub ppa: PpaResult,
    /// Per-workload PPA, aligned with the evaluator's workload list.
    pub per_workload: Vec<PpaResult>,
    /// Weighted bottleneck report (Eq. 2), present when analysis was
    /// requested.
    pub report: Option<BottleneckReport>,
    /// Which analysis produced `report`.
    pub analysis: Analysis,
}

/// Why an evaluation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// The simulator returned a typed error.
    Sim(SimError),
    /// The PPA model produced a NaN or infinite figure — treated as an
    /// evaluation failure so it can never corrupt a Pareto frontier.
    NonFinitePpa,
    /// A worker panicked; the panic was caught and the message preserved.
    WorkerPanic {
        /// The panic payload, rendered.
        message: String,
    },
    /// A failure replayed from an evaluation journal (the original typed
    /// error is preserved as its tag + rendered message).
    Journaled {
        /// Machine-readable tag of the original error.
        tag: String,
        /// Rendered original error.
        message: String,
    },
}

impl EvalError {
    /// Short machine-readable tag (stable; used by telemetry counters and
    /// the evaluation journal).
    pub fn tag(&self) -> &str {
        match self {
            EvalError::Sim(e) => e.tag(),
            EvalError::NonFinitePpa => "non_finite_ppa",
            EvalError::WorkerPanic { .. } => "worker_panic",
            EvalError::Journaled { tag, .. } => tag,
        }
    }

    /// Whether a retry with a smaller instruction window could plausibly
    /// succeed. Deterministic design properties (invalid configurations,
    /// non-finite PPA) and journaled verdicts are never retried.
    pub fn retryable(&self) -> bool {
        match self {
            EvalError::Sim(e) => e.retryable(),
            EvalError::NonFinitePpa | EvalError::Journaled { .. } => false,
            EvalError::WorkerPanic { .. } => true,
        }
    }
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Sim(e) => write!(f, "{e}"),
            EvalError::NonFinitePpa => write!(f, "PPA model produced a non-finite value"),
            EvalError::WorkerPanic { message } => write!(f, "worker panicked: {message}"),
            EvalError::Journaled { message, .. } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// A design evaluation that failed past its retry budget.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalFailure {
    /// Name of the first workload (by suite order) that failed; empty for
    /// design-level failures detected before any workload ran.
    pub workload: String,
    /// The error from the final attempt.
    pub error: EvalError,
    /// Total attempts made (1 = no retry).
    pub attempts: u32,
}

impl std::fmt::Display for EvalFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.workload.is_empty() {
            write!(f, "{} after {} attempt(s)", self.error, self.attempts)
        } else {
            write!(
                f,
                "workload {}: {} after {} attempt(s)",
                self.workload, self.error, self.attempts
            )
        }
    }
}

/// One quarantined design point: the ISSUE-mandated
/// `(arch, workload, error, attempts)` record.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineEntry {
    /// The design that failed.
    pub arch: MicroArch,
    /// First failing workload (empty for design-level failures).
    pub workload: String,
    /// The error from the final attempt.
    pub error: EvalError,
    /// Attempts made before giving up.
    pub attempts: u32,
}

/// Per-simulation safety limits applied to every run the evaluator makes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimLimits {
    /// Per-run cycle budget (`None` = unlimited).
    pub cycle_budget: Option<Cycle>,
    /// Deadlock watchdog: cycles without a commit before the run fails.
    pub deadlock_watchdog: Cycle,
}

impl Default for SimLimits {
    fn default() -> Self {
        SimLimits {
            cycle_budget: None,
            deadlock_watchdog: DEADLOCK_WATCHDOG,
        }
    }
}

/// Campaign-progress state carried by the evaluator: who is searching,
/// against what budget, and the frontier statistics accumulated so far.
struct ProgressMeta {
    source: String,
    sim_budget: u64,
    sink: Option<Arc<dyn ProgressSink>>,
    set: ExplorationSet,
    best_tradeoff: f64,
}

impl Default for ProgressMeta {
    fn default() -> Self {
        ProgressMeta {
            source: "eval".to_string(),
            sim_budget: 0,
            sink: None,
            set: ExplorationSet::new(),
            best_tradeoff: 0.0,
        }
    }
}

/// Staged construction for [`Evaluator`].
///
/// Replaces the positional `Evaluator::new(workloads, instrs, seed)`
/// constructor: every knob is named, defaults are explicit, and traces are
/// resolved through a shared [`TraceStore`] so concurrent evaluators over
/// the same `(workload, seed, window)` key share one synthesised trace
/// zero-copy instead of regenerating it.
///
/// ```
/// use archx_dse::eval::Evaluator;
/// use archx_workloads::spec06_suite;
/// let eval = Evaluator::builder(spec06_suite())
///     .window(5_000)
///     .seed(1)
///     .threads(1)
///     .build();
/// assert_eq!(eval.workloads().len(), spec06_suite().len());
/// ```
#[derive(Debug)]
pub struct EvaluatorBuilder {
    workloads: Vec<Workload>,
    window: usize,
    seed: u64,
    trace_store: Option<Arc<TraceStore>>,
    threads: usize,
    governor: Option<Arc<ThreadGovernor>>,
    limits: SimLimits,
    max_retries: u32,
    journal: Option<Journal>,
    arena_reuse: bool,
}

impl EvaluatorBuilder {
    /// Starts a builder over `workloads` with the defaults the paper
    /// experiments use: a 20 000-instruction window, trace seed 1, all
    /// available threads, no governor, default [`SimLimits`], one retry,
    /// the process-global trace store, and arena reuse on.
    pub fn new(workloads: Vec<Workload>) -> Self {
        EvaluatorBuilder {
            workloads,
            window: 20_000,
            seed: 1,
            trace_store: None,
            threads: crate::default_threads(),
            governor: None,
            limits: SimLimits::default(),
            max_retries: 1,
            journal: None,
            arena_reuse: true,
        }
    }

    /// Instruction window per workload trace (clamped to at least 1).
    pub fn window(mut self, instrs: usize) -> Self {
        self.window = instrs.max(1);
        self
    }

    /// Seed for trace synthesis.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Resolves traces through `store` instead of the process-global
    /// [`TraceStore::global`]. Evaluators sharing a store share traces
    /// zero-copy; a dedicated store also makes its hit/miss counters
    /// observable in isolation.
    pub fn trace_store(mut self, store: Arc<TraceStore>) -> Self {
        self.trace_store = Some(store);
        self
    }

    /// Worker threads (1 = fully serial; results are identical either
    /// way).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Subjects worker threads beyond the caller's to a shared
    /// [`ThreadGovernor`]; see [`Evaluator::with_governor`].
    pub fn governor(mut self, governor: Arc<ThreadGovernor>) -> Self {
        self.governor = Some(governor);
        self
    }

    /// Per-simulation limits (cycle budget, deadlock watchdog).
    pub fn limits(mut self, limits: SimLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Bounds retries of retryable failures (each retry halves the
    /// instruction window again). Default: 1.
    pub fn max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Attaches a write-ahead journal from the start; equivalent to
    /// calling [`Evaluator::set_journal`] on the built evaluator.
    pub fn journal(mut self, journal: Journal) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Toggles per-worker-thread scratch arenas for the sim/DEG hot path
    /// (on by default). Results are byte-identical either way; off is
    /// only useful for benchmarking the cold allocation path.
    pub fn arena_reuse(mut self, on: bool) -> Self {
        self.arena_reuse = on;
        self
    }

    /// Resolves every trace through the store (synthesising at most once
    /// per `(workload, seed, window)` key per store) and builds the
    /// evaluator.
    pub fn build(self) -> Evaluator {
        let store = self.trace_store.unwrap_or_else(TraceStore::global);
        let traces = self
            .workloads
            .iter()
            .map(|w| store.get(w, self.window, self.seed))
            .collect();
        Evaluator {
            workloads: self.workloads,
            traces,
            instrs_per_workload: self.window,
            trace_seed: self.seed,
            power: PowerModel::default(),
            threads: self.threads,
            governor: self.governor,
            limits: self.limits,
            max_retries: self.max_retries,
            arena_reuse: self.arena_reuse,
            sims: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            cache: Mutex::new(HashMap::new()),
            quarantine: Mutex::new(Vec::new()),
            journal: Mutex::new(self.journal),
            journal_error: Mutex::new(None),
            progress: Mutex::new(ProgressMeta::default()),
        }
    }
}

/// Shared evaluator with a design cache and a simulation budget counter.
pub struct Evaluator {
    workloads: Vec<Workload>,
    traces: Vec<Arc<[Instruction]>>,
    instrs_per_workload: usize,
    trace_seed: u64,
    power: PowerModel,
    threads: usize,
    governor: Option<Arc<ThreadGovernor>>,
    limits: SimLimits,
    max_retries: u32,
    arena_reuse: bool,
    sims: AtomicU64,
    retries: AtomicU64,
    cache: Mutex<HashMap<MicroArch, Result<DesignEval, EvalFailure>>>,
    quarantine: Mutex<Vec<QuarantineEntry>>,
    journal: Mutex<Option<Journal>>,
    journal_error: Mutex<Option<String>>,
    progress: Mutex<ProgressMeta>,
}

impl std::fmt::Debug for Evaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Evaluator")
            .field("workloads", &self.workloads.len())
            .field("instrs", &self.traces.first().map_or(0, |t| t.len()))
            .field("sims", &self.sim_count())
            .field("quarantined", &self.quarantine_len())
            .finish()
    }
}

impl Evaluator {
    /// Starts an [`EvaluatorBuilder`] over `workloads`.
    pub fn builder(workloads: Vec<Workload>) -> EvaluatorBuilder {
        EvaluatorBuilder::new(workloads)
    }

    /// Restricts worker threads (1 = fully serial, deterministic ordering
    /// is preserved either way).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Subjects this evaluator's worker threads to a shared
    /// [`ThreadGovernor`]. The thread the caller evaluates on is always
    /// allowed to work (campaign jobs hold a base permit for it); workers
    /// *beyond* it are only spawned when the governor has spare permits,
    /// so nested campaign parallelism never oversubscribes the configured
    /// total. Results are identical with or without a governor — worker
    /// count never changes what an evaluation produces.
    pub fn with_governor(mut self, governor: Arc<ThreadGovernor>) -> Self {
        self.governor = Some(governor);
        self
    }

    /// Applies per-simulation limits (cycle budget, deadlock watchdog) to
    /// every run this evaluator makes.
    pub fn with_limits(mut self, limits: SimLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Bounds how many times a retryable failure is retried (each retry
    /// halves the instruction window again). Default: 1.
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// The workload suite.
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    /// The per-simulation limits in force.
    pub fn limits(&self) -> SimLimits {
        self.limits
    }

    /// Simulations performed so far (one per workload per attempt on
    /// every uncached design, failures included).
    pub fn sim_count(&self) -> u64 {
        self.sims.load(Ordering::Relaxed)
    }

    /// Retries performed so far.
    pub fn retry_count(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Snapshot of the quarantine log.
    pub fn quarantine(&self) -> Vec<QuarantineEntry> {
        self.quarantine.lock().clone()
    }

    /// Number of quarantined designs.
    pub fn quarantine_len(&self) -> usize {
        self.quarantine.lock().len()
    }

    /// The configuration fingerprint a journal for this evaluator must
    /// match; `extra` carries campaign-level metadata (method, seed, …).
    pub fn fingerprint(&self, extra: Vec<(String, String)>) -> JournalFingerprint {
        JournalFingerprint {
            workloads: self.workloads.iter().map(|w| w.id.to_string()).collect(),
            instrs_per_workload: self.instrs_per_workload,
            trace_seed: self.trace_seed,
            cycle_budget: self.limits.cycle_budget,
            deadlock_watchdog: self.limits.deadlock_watchdog,
            extra,
        }
    }

    /// Attaches a write-ahead journal: every subsequent uncached
    /// evaluation is appended and flushed before its result is returned.
    pub fn set_journal(&self, journal: Journal) {
        *self.journal.lock() = Some(journal);
    }

    /// The first journal-append error, if any occurred (appends never
    /// abort a campaign; the error is surfaced here instead).
    pub fn journal_error(&self) -> Option<String> {
        self.journal_error.lock().clone()
    }

    /// Replays journaled evaluations into the cache and the simulation
    /// counter, so a resumed deterministic search spends budget only past
    /// the replayed prefix. Returns the simulations replayed.
    pub fn warm_start(&self, records: Vec<JournalRecord>) -> u64 {
        let replayed = records.len() as u64;
        let mut sims = 0u64;
        {
            let mut cache = self.cache.lock();
            for rec in records {
                sims += rec.sims_cost;
                if let Err(failure) = &rec.outcome {
                    self.quarantine.lock().push(QuarantineEntry {
                        arch: rec.arch,
                        workload: failure.workload.clone(),
                        error: failure.error.clone(),
                        attempts: failure.attempts,
                    });
                }
                cache.insert(rec.arch, rec.outcome);
            }
        }
        self.sims.fetch_add(sims, Ordering::Relaxed);
        telemetry::counter_add("journal/replayed", replayed);
        sims
    }

    /// Labels this evaluator's progress events (`source`, typically the
    /// search method's name) and the simulation budget they report against.
    pub fn set_progress_target(&self, source: impl Into<String>, sim_budget: u64) {
        let mut meta = self.progress.lock();
        meta.source = source.into();
        meta.sim_budget = sim_budget;
    }

    /// Attaches a per-evaluator progress sink (in addition to any sinks on
    /// the global telemetry registry). One sink per evaluator; a second
    /// call replaces the first.
    pub fn set_progress_sink(&self, sink: Arc<dyn ProgressSink>) {
        self.progress.lock().sink = Some(sink);
    }

    /// Evaluates a design (simulation + PPA only, no bottleneck analysis).
    ///
    /// Cached: re-evaluating a design costs no simulations. `Err` means
    /// the design failed past its retry budget and is quarantined; the
    /// failure is cached too, so a quarantined design is never
    /// re-simulated.
    pub fn evaluate(&self, arch: &MicroArch) -> Result<DesignEval, EvalFailure> {
        self.evaluate_with(arch, Analysis::None)
    }

    /// Evaluates a design with an explicit bottleneck-analysis backend:
    /// [`Analysis::NewDeg`] additionally builds the induced DEG and merges
    /// per-workload bottleneck reports (Eq. 2).
    ///
    /// Cached: re-evaluating a design costs no simulations. A cached
    /// design evaluated without a report will be re-simulated if a report
    /// is later requested (counting simulations again, as the paper's
    /// trace-dumping runs would). A cached *failure* is returned for any
    /// requested analysis — quarantine is a property of the design.
    pub fn evaluate_with(
        &self,
        arch: &MicroArch,
        analysis: Analysis,
    ) -> Result<DesignEval, EvalFailure> {
        if let Some(hit) = self.cache.lock().get(arch) {
            match hit {
                Ok(eval) if analysis == Analysis::None || eval.analysis == analysis => {
                    telemetry::counter_add("eval/cache/hit", 1);
                    return Ok(eval.clone());
                }
                Err(failure) => {
                    telemetry::counter_add("eval/cache/hit", 1);
                    telemetry::counter_add("eval/cache/quarantined_hit", 1);
                    return Err(failure.clone());
                }
                Ok(_) => {}
            }
        }
        telemetry::counter_add("eval/cache/miss", 1);
        let sims_before = self.sim_count();
        let outcome = self.evaluate_uncached(arch, analysis);
        let sims_cost = self.sim_count() - sims_before;
        if let Err(failure) = &outcome {
            self.quarantine.lock().push(QuarantineEntry {
                arch: *arch,
                workload: failure.workload.clone(),
                error: failure.error.clone(),
                attempts: failure.attempts,
            });
            telemetry::counter_add("eval/quarantine", 1);
            telemetry::counter_add(&format!("eval/failure/{}", failure.error.tag()), 1);
        }
        self.cache.lock().insert(*arch, outcome.clone());
        self.journal_append(arch, analysis, sims_cost, &outcome);
        outcome
    }

    fn journal_append(
        &self,
        arch: &MicroArch,
        analysis: Analysis,
        sims_cost: u64,
        outcome: &Result<DesignEval, EvalFailure>,
    ) {
        let mut guard = self.journal.lock();
        if let Some(journal) = guard.as_mut() {
            let rec = JournalRecord {
                arch: *arch,
                analysis,
                sims_cost,
                outcome: outcome.clone(),
            };
            if let Err(e) = journal.append(&rec) {
                telemetry::counter_add("journal/error", 1);
                let mut slot = self.journal_error.lock();
                if slot.is_none() {
                    *slot = Some(e.to_string());
                }
            }
        }
    }

    fn evaluate_uncached(
        &self,
        arch: &MicroArch,
        analysis: Analysis,
    ) -> Result<DesignEval, EvalFailure> {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            // Attempt k runs the first `len >> (k-1)` instructions of
            // each trace: retries halve the window.
            let divisor = 1usize << (attempts - 1).min(16);
            match self.attempt(arch, analysis, divisor) {
                Ok(eval) => {
                    self.emit_progress(eval.ppa);
                    return Ok(eval);
                }
                Err((workload, error)) => {
                    if error.retryable() && attempts <= self.max_retries {
                        telemetry::counter_add("eval/retry", 1);
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    return Err(EvalFailure {
                        workload,
                        error,
                        attempts,
                    });
                }
            }
        }
    }

    /// Simulates one trace and runs the requested analysis, borrowing all
    /// scratch memory from `arena`. Consumed buffers are recycled back
    /// into the arena on every exit path that still owns them; a panic
    /// mid-simulation loses the checked-out buffers (they regrow on the
    /// next use), never corrupts them.
    fn run_workload(
        &self,
        arch: &MicroArch,
        analysis: Analysis,
        trace: &[Instruction],
        arena: &mut EvalArena,
    ) -> Result<(PpaResult, Option<BottleneckReport>), EvalError> {
        let mut core = OooCore::try_new(*arch)
            .map_err(EvalError::Sim)?
            .with_deadlock_watchdog(self.limits.deadlock_watchdog);
        if let Some(budget) = self.limits.cycle_budget {
            core = core.with_cycle_budget(budget);
        }
        let started = Instant::now();
        let result = {
            let _timed = telemetry::span("simulate");
            core.run_in(&mut arena.sim, trace).map_err(EvalError::Sim)?
        };
        telemetry::record("eval/sim_latency_us", started.elapsed().as_micros() as u64);
        result.stats.export_telemetry();
        let ppa = self.power.evaluate(arch, &result.stats);
        if !(ppa.ipc.is_finite() && ppa.power_w.is_finite() && ppa.area_mm2.is_finite()) {
            arena.sim.recycle(result);
            return Err(EvalError::NonFinitePpa);
        }
        let report = match analysis {
            Analysis::None => None,
            Analysis::NewDeg => {
                let mut deg = induce(build_deg_in(&mut arena.deg, &result));
                let path = critical::critical_path_in(&mut arena.deg, &mut deg);
                let report = archx_deg::bottleneck::analyze(&deg, &path);
                arena.deg.recycle(deg);
                Some(report)
            }
            Analysis::Calipers => {
                Some(archx_deg::CalipersModel::from_arch(arch).analyze(&result).1)
            }
        };
        arena.sim.recycle(result);
        Ok((ppa, report))
    }

    /// One evaluation attempt over the whole suite. Costs one simulation
    /// per workload whatever happens (so budgets terminate even under
    /// total failure, and accounting is identical for any thread count).
    /// On failure, reports the error of the smallest-index workload —
    /// deterministic regardless of worker scheduling.
    fn attempt(
        &self,
        arch: &MicroArch,
        analysis: Analysis,
        divisor: usize,
    ) -> Result<DesignEval, (String, EvalError)> {
        let n = self.workloads.len();
        self.sims.fetch_add(n as u64, Ordering::Relaxed);

        let run_one = |i: usize| -> Result<(PpaResult, Option<BottleneckReport>), EvalError> {
            // Everything below is attributed under `eval/...` — absolute,
            // so names match whether this runs on the caller's thread
            // (serial path) or on a worker. Scopes are thread-local.
            let _root = telemetry::root_scope();
            let _scope = telemetry::scope("eval");
            let full = &self.traces[i];
            // Retry sub-slicing: attempt k reads the first `len >> (k-1)`
            // instructions of the shared trace — a prefix view, never a
            // regeneration (the synthesiser's stream is prefix-stable).
            let window = (full.len() / divisor).max(1).min(full.len());
            let trace = &full[..window];
            if self.arena_reuse {
                EVAL_ARENA.with(|cell| {
                    let arena = &mut *cell.borrow_mut();
                    if arena.used {
                        telemetry::counter_add("arena/reuse", 1);
                    }
                    arena.used = true;
                    self.run_workload(arch, analysis, trace, arena)
                })
            } else {
                self.run_workload(arch, analysis, trace, &mut EvalArena::default())
            }
        };
        // A panicking worker must fail the design, not the campaign.
        let guarded = |i: usize| -> AttemptOutcome {
            catch_unwind(AssertUnwindSafe(|| run_one(i))).unwrap_or_else(|payload| {
                Err(EvalError::WorkerPanic {
                    message: panic_message(&payload),
                })
            })
        };

        // Worker count: the configured thread cap, further bounded by the
        // governor when one is attached. The caller's thread always counts
        // as one worker's worth of capacity (campaign jobs hold a base
        // permit for it); only the extras need spare permits.
        let want = self.threads.min(n);
        let extra_lease = match &self.governor {
            Some(governor) if want > 1 => Some(governor.try_acquire(want - 1)),
            _ => None,
        };
        let workers = match &extra_lease {
            Some(lease) => 1 + lease.held(),
            None => want,
        };

        let mut outcomes: Vec<Option<AttemptOutcome>> = (0..n).map(|_| None).collect();
        if workers <= 1 || n <= 1 {
            for (i, slot) in outcomes.iter_mut().enumerate() {
                *slot = Some(guarded(i));
            }
        } else {
            // One pre-allocated slot per workload index: each worker
            // writes its outcome straight into its own slot, so workers
            // never serialize on a shared results lock and no reorder
            // pass is needed afterwards.
            let next = AtomicU64::new(0);
            let slots: Vec<Mutex<Option<AttemptOutcome>>> =
                (0..n).map(|_| Mutex::new(None)).collect();
            // The scope join itself cannot panic: every worker body is
            // wrapped in `catch_unwind` above.
            crossbeam::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|_| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                        if i >= n {
                            break;
                        }
                        *slots[i].lock() = Some(guarded(i));
                    });
                }
            })
            .expect("workers are panic-isolated");
            for (slot, out) in slots.into_iter().zip(outcomes.iter_mut()) {
                *out = slot.into_inner();
            }
        }
        drop(extra_lease);

        let mut per_workload = Vec::with_capacity(n);
        let mut reports: Vec<Option<BottleneckReport>> = Vec::with_capacity(n);
        for (i, outcome) in outcomes.into_iter().enumerate() {
            match outcome.expect("every workload ran") {
                Ok((ppa, rep)) => {
                    per_workload.push(ppa);
                    reports.push(rep);
                }
                Err(error) => return Err((self.workloads[i].id.to_string(), error)),
            }
        }

        let ipc = per_workload.iter().map(|p| p.ipc).sum::<f64>() / n as f64;
        let power = per_workload.iter().map(|p| p.power_w).sum::<f64>() / n as f64;
        let area = per_workload[0].area_mm2;
        let mean_ppa = PpaResult {
            ipc,
            power_w: power,
            area_mm2: area,
        };
        let report = if analysis != Analysis::None {
            let reps: Vec<BottleneckReport> = reports
                .into_iter()
                .map(|r| r.expect("analysis requested"))
                .collect();
            let weights: Vec<f64> = self.workloads.iter().map(|w| w.weight).collect();
            Some(merge_reports(&reps, &weights))
        } else {
            None
        };
        Ok(DesignEval {
            ppa: mean_ppa,
            per_workload,
            report,
            analysis,
        })
    }

    /// Publishes one progress event (after each successful uncached
    /// evaluation) to the per-evaluator sink and the global telemetry
    /// sinks.
    fn emit_progress(&self, ppa: PpaResult) {
        let (event, sink) = {
            let mut meta = self.progress.lock();
            meta.set.push(ppa);
            meta.best_tradeoff = meta.best_tradeoff.max(ppa.tradeoff());
            let event = Progress {
                source: meta.source.clone(),
                sims_done: self.sim_count(),
                sim_budget: meta.sim_budget,
                hypervolume: meta.set.hypervolume(&RefPoint::default()),
                best_tradeoff: meta.best_tradeoff,
            };
            (event, meta.sink.clone())
        };
        if let Some(sink) = sink {
            sink.on_progress(&event);
        }
        telemetry::progress(&event);
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// One evaluated design within an exploration run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalRecord {
    /// The design.
    pub arch: MicroArch,
    /// Suite-average PPA.
    pub ppa: PpaResult,
    /// Cumulative simulation count after this evaluation.
    pub sims_after: u64,
}

/// Log of an exploration run: every design in evaluation order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunLog {
    /// Method label.
    pub method: String,
    /// Records in evaluation order.
    pub records: Vec<EvalRecord>,
}

impl RunLog {
    /// Empty log for a method.
    pub fn new(method: impl Into<String>) -> Self {
        RunLog {
            method: method.into(),
            records: Vec::new(),
        }
    }

    /// Appends a record (one search iteration).
    pub fn push(&mut self, arch: MicroArch, ppa: PpaResult, sims_after: u64) {
        telemetry::counter_add("dse/iteration", 1);
        self.records.push(EvalRecord {
            arch,
            ppa,
            sims_after,
        });
    }

    /// Hypervolume as a function of cumulative simulations, sampled at
    /// each multiple of `step`.
    pub fn hypervolume_curve(&self, r: &crate::pareto::RefPoint, step: u64) -> Vec<(u64, f64)> {
        assert!(step > 0, "step must be positive");
        let mut curve = Vec::new();
        let max_sims = self.records.last().map_or(0, |r| r.sims_after);
        let mut set = ExplorationSet::new();
        let mut it = self.records.iter().peekable();
        let mut budget = step;
        while budget <= max_sims {
            while let Some(rec) = it.peek() {
                if rec.sims_after <= budget {
                    set.push(rec.ppa);
                    it.next();
                } else {
                    break;
                }
            }
            curve.push((budget, set.hypervolume(r)));
            budget += step;
        }
        curve
    }

    /// Pareto frontier over all records: `(arch, ppa)` pairs.
    pub fn frontier(&self) -> Vec<(MicroArch, PpaResult)> {
        let pts: Vec<PpaResult> = self.records.iter().map(|r| r.ppa).collect();
        crate::pareto::pareto_front(&pts)
            .into_iter()
            .map(|i| (self.records[i].arch, self.records[i].ppa))
            .collect()
    }

    /// Best design by the paper's PPA trade-off metric. Records with a
    /// non-finite trade-off (which only enter a log built outside the
    /// evaluator, whose PPA is always finite) are ignored rather than
    /// allowed to poison the comparison.
    pub fn best_tradeoff(&self) -> Option<&EvalRecord> {
        self.records
            .iter()
            .filter(|r| r.ppa.tradeoff().is_finite())
            .max_by(|a, b| a.ppa.tradeoff().total_cmp(&b.ppa.tradeoff()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archx_workloads::spec06_suite;

    fn small_eval() -> Evaluator {
        let suite: Vec<Workload> = spec06_suite().into_iter().take(2).collect();
        Evaluator::builder(suite)
            .window(2_000)
            .seed(1)
            .threads(1)
            .build()
    }

    #[test]
    fn evaluation_counts_sims_and_caches() {
        let ev = small_eval();
        let arch = MicroArch::baseline();
        let e1 = ev.evaluate(&arch).expect("evaluates");
        assert_eq!(ev.sim_count(), 2);
        let e2 = ev.evaluate(&arch).expect("evaluates");
        assert_eq!(ev.sim_count(), 2, "cache hit must not count");
        assert_eq!(e1, e2);
        assert!(e1.ppa.ipc > 0.0);
        assert_eq!(e1.per_workload.len(), 2);
    }

    #[test]
    fn analysis_produces_merged_report() {
        let ev = small_eval();
        let e = ev
            .evaluate_with(&MicroArch::tiny(), Analysis::NewDeg)
            .expect("evaluates");
        let rep = e.report.expect("requested analysis");
        assert!(rep.total() > 0.5);
    }

    #[test]
    fn parallel_matches_serial() {
        let suite: Vec<Workload> = spec06_suite().into_iter().take(3).collect();
        let serial = Evaluator::builder(suite.clone())
            .window(2_000)
            .seed(1)
            .threads(1)
            .build();
        let parallel = Evaluator::builder(suite)
            .window(2_000)
            .seed(1)
            .threads(3)
            .build();
        let a = serial
            .evaluate_with(&MicroArch::baseline(), Analysis::NewDeg)
            .expect("evaluates");
        let b = parallel
            .evaluate_with(&MicroArch::baseline(), Analysis::NewDeg)
            .expect("evaluates");
        assert_eq!(a, b, "thread count must not change results");
    }

    #[test]
    fn progress_events_reach_the_sink() {
        let ev = small_eval();
        let sink = Arc::new(telemetry::CollectingSink::new());
        ev.set_progress_target("test", 4);
        ev.set_progress_sink(sink.clone());
        ev.evaluate(&MicroArch::baseline()).expect("evaluates");
        ev.evaluate(&MicroArch::baseline()).expect("evaluates"); // cached: no new event
        let events = sink.events();
        assert_eq!(events.len(), 1, "one event per uncached evaluation");
        assert_eq!(events[0].source, "test");
        assert_eq!(events[0].sims_done, 2);
        assert_eq!(events[0].sim_budget, 4);
        assert!(events[0].hypervolume > 0.0);
        assert!(events[0].best_tradeoff > 0.0);
    }

    #[test]
    fn watchdog_failure_is_retried_then_quarantined() {
        // A 1-cycle watchdog trips before the pipeline can possibly
        // commit, on the full window and on the halved retry window.
        let ev = {
            let suite: Vec<Workload> = spec06_suite().into_iter().take(2).collect();
            Evaluator::builder(suite)
                .window(2_000)
                .seed(1)
                .threads(1)
                .limits(SimLimits {
                    cycle_budget: None,
                    deadlock_watchdog: 1,
                })
                .build()
        };
        let arch = MicroArch::baseline();
        let failure = ev.evaluate(&arch).expect_err("must fail");
        assert_eq!(failure.error.tag(), "deadlock");
        assert_eq!(failure.attempts, 2, "one retry then quarantine");
        assert_eq!(ev.retry_count(), 1);
        assert_eq!(ev.quarantine_len(), 1);
        assert_eq!(ev.quarantine()[0].arch, arch);
        assert!(!ev.quarantine()[0].workload.is_empty());
        // Both attempts cost the full suite.
        assert_eq!(ev.sim_count(), 4);
        // The failure is cached: no re-simulation, same error.
        let again = ev.evaluate(&arch).expect_err("still quarantined");
        assert_eq!(again.error.tag(), "deadlock");
        assert_eq!(ev.sim_count(), 4, "quarantined design never re-simulates");
        assert_eq!(ev.quarantine_len(), 1, "no duplicate quarantine entry");
    }

    #[test]
    fn cycle_budget_trips_as_typed_failure() {
        let suite: Vec<Workload> = spec06_suite().into_iter().take(2).collect();
        let ev = Evaluator::builder(suite)
            .window(2_000)
            .seed(1)
            .threads(1)
            .limits(SimLimits {
                cycle_budget: Some(3),
                deadlock_watchdog: 1_000_000,
            })
            .build();
        let failure = ev.evaluate(&MicroArch::baseline()).expect_err("must fail");
        assert_eq!(failure.error.tag(), "cycle_budget");
        assert_eq!(ev.quarantine_len(), 1);
    }

    #[test]
    fn retry_with_halved_window_can_succeed() {
        // Self-calibrating: pick a cycle budget strictly between the
        // cycles of the half window and the full window, so the first
        // attempt fails and the halved retry succeeds.
        let suite: Vec<Workload> = spec06_suite().into_iter().take(1).collect();
        let arch = MicroArch::baseline();
        let trace = suite[0].generate(2_000, 1);
        let full = OooCore::new(arch)
            .run(&trace)
            .expect("simulates")
            .stats
            .cycles;
        let half = OooCore::new(arch)
            .run(&trace[..trace.len() / 2])
            .expect("simulates")
            .stats
            .cycles;
        assert!(half < full);
        let budget = (half + full) / 2;
        let ev = Evaluator::builder(suite)
            .window(2_000)
            .seed(1)
            .threads(1)
            .limits(SimLimits {
                cycle_budget: Some(budget),
                deadlock_watchdog: 1_000_000,
            })
            .build();
        let eval = ev.evaluate(&arch).expect("retry succeeds");
        assert!(eval.ppa.ipc > 0.0);
        assert_eq!(ev.retry_count(), 1);
        assert_eq!(ev.quarantine_len(), 0);
        assert_eq!(ev.sim_count(), 2, "both attempts count");
    }

    #[test]
    fn journal_warm_start_skips_simulation() {
        let dir = std::env::temp_dir().join(format!("archx-eval-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("warmstart.jsonl");
        let _ = std::fs::remove_file(&path);

        let ev = small_eval();
        let journal = Journal::create(&path, &ev.fingerprint(Vec::new())).unwrap();
        ev.set_journal(journal);
        let a = MicroArch::baseline();
        let b = MicroArch::tiny();
        let ea = ev.evaluate(&a).expect("evaluates");
        let eb = ev.evaluate_with(&b, Analysis::NewDeg).expect("evaluates");
        assert_eq!(ev.sim_count(), 4);
        assert!(ev.journal_error().is_none());

        // A fresh evaluator resumes from the journal: same results, same
        // budget position, zero new simulations.
        let ev2 = small_eval();
        let (journal2, records) = Journal::resume(&path, &ev2.fingerprint(Vec::new())).unwrap();
        assert_eq!(records.len(), 2);
        ev2.set_journal(journal2);
        ev2.warm_start(records);
        assert_eq!(ev2.sim_count(), 4, "budget replays from the journal");
        let ra = ev2.evaluate(&a).expect("cached");
        let rb = ev2.evaluate_with(&b, Analysis::NewDeg).expect("cached");
        assert_eq!(ra, ea);
        assert_eq!(rb, eb);
        assert_eq!(ev2.sim_count(), 4, "no re-simulation after warm start");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn runlog_curve_is_monotone() {
        let mut log = RunLog::new("test");
        let mk = |ipc: f64| PpaResult {
            ipc,
            power_w: 0.2,
            area_mm2: 5.0,
        };
        log.push(MicroArch::baseline(), mk(0.5), 2);
        log.push(MicroArch::baseline(), mk(1.0), 4);
        log.push(MicroArch::baseline(), mk(0.8), 6);
        let curve = log.hypervolume_curve(&crate::pareto::RefPoint::default(), 2);
        assert_eq!(curve.len(), 3);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "hypervolume must be non-decreasing");
        }
        assert!((log.best_tradeoff().unwrap().ppa.ipc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn best_tradeoff_ignores_non_finite_records() {
        let mut log = RunLog::new("test");
        let mk = |ipc: f64| PpaResult {
            ipc,
            power_w: 0.2,
            area_mm2: 5.0,
        };
        log.push(MicroArch::baseline(), mk(1.0), 2);
        log.push(
            MicroArch::baseline(),
            PpaResult {
                ipc: f64::NAN,
                power_w: 0.2,
                area_mm2: 5.0,
            },
            4,
        );
        log.push(
            MicroArch::baseline(),
            PpaResult {
                ipc: f64::INFINITY,
                power_w: 0.2,
                area_mm2: 5.0,
            },
            6,
        );
        let best = log.best_tradeoff().expect("finite record exists");
        assert!((best.ppa.ipc - 1.0).abs() < 1e-12);
        // An all-non-finite log yields None, not a panic.
        let mut bad = RunLog::new("bad");
        bad.push(
            MicroArch::baseline(),
            PpaResult {
                ipc: f64::NAN,
                power_w: 0.2,
                area_mm2: 5.0,
            },
            1,
        );
        assert!(bad.best_tradeoff().is_none());
    }
}
