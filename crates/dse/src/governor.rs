//! Global thread governor for nested campaign parallelism.
//!
//! A campaign fans (method × seed) runs out across job threads, and each
//! run's evaluator can itself fan workload simulations out across worker
//! threads. Without coordination the two layers multiply: 4 jobs × 8
//! evaluator workers oversubscribes a laptop by 4×, while forcing either
//! layer to 1 leaves cores idle whenever the other layer stalls. The
//! [`ThreadGovernor`] bounds the *product*: it holds a fixed pool of
//! thread permits shared by every layer, so campaign jobs plus evaluator
//! workload workers never exceed the configured total, and spare permits
//! flow to whichever layer can use them.
//!
//! Two acquisition modes keep the scheme deadlock-free:
//!
//! * [`ThreadGovernor::acquire`] — **blocking**, used by campaign jobs for
//!   their base permit. A job always eventually gets exactly one permit,
//!   so every run makes progress even when `jobs > total`.
//! * [`ThreadGovernor::try_acquire`] — **non-blocking**, used by
//!   evaluators for *extra* worker threads beyond the caller's own. It
//!   takes whatever is available up to the request (possibly zero) and
//!   never waits, so a holder of a base permit can never deadlock waiting
//!   for permits held by peers.
//!
//! Permits are released through RAII [`Lease`] guards, so a panicking
//! worker returns its permits like any other.

use std::sync::{Arc, Condvar, Mutex};

/// A shared pool of thread permits bounding total campaign parallelism.
#[derive(Debug)]
pub struct ThreadGovernor {
    total: usize,
    available: Mutex<usize>,
    freed: Condvar,
}

impl ThreadGovernor {
    /// A governor with `total` permits (clamped to at least 1).
    pub fn new(total: usize) -> Arc<Self> {
        let total = total.max(1);
        Arc::new(ThreadGovernor {
            total,
            available: Mutex::new(total),
            freed: Condvar::new(),
        })
    }

    /// The configured permit total.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Permits currently unclaimed.
    pub fn available(&self) -> usize {
        *lock_ok(&self.available)
    }

    /// Blocks until one permit is free and takes it. Campaign jobs call
    /// this once per run; because each job holds at most this single
    /// blocking permit, acquisition order cannot deadlock.
    pub fn acquire(self: &Arc<Self>) -> Lease {
        let mut available = lock_ok(&self.available);
        while *available == 0 {
            available = self
                .freed
                .wait(available)
                .unwrap_or_else(|e| e.into_inner());
        }
        *available -= 1;
        Lease {
            governor: Arc::clone(self),
            held: 1,
        }
    }

    /// Takes up to `want` permits without blocking and returns a lease
    /// over however many were granted (possibly zero). Evaluators use
    /// this for worker threads beyond the one their caller already
    /// represents.
    pub fn try_acquire(self: &Arc<Self>, want: usize) -> Lease {
        let mut available = lock_ok(&self.available);
        let granted = want.min(*available);
        *available -= granted;
        Lease {
            governor: Arc::clone(self),
            held: granted,
        }
    }

    fn release(&self, n: usize) {
        if n == 0 {
            return;
        }
        let mut available = lock_ok(&self.available);
        *available += n;
        debug_assert!(*available <= self.total, "permit over-release");
        drop(available);
        self.freed.notify_all();
    }
}

fn lock_ok(m: &Mutex<usize>) -> std::sync::MutexGuard<'_, usize> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// RAII holder of governor permits; returns them on drop.
#[derive(Debug)]
pub struct Lease {
    governor: Arc<ThreadGovernor>,
    held: usize,
}

impl Lease {
    /// Permits this lease holds.
    pub fn held(&self) -> usize {
        self.held
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        self.governor.release(self.held);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn permits_are_bounded_and_returned() {
        let g = ThreadGovernor::new(3);
        assert_eq!(g.total(), 3);
        let a = g.acquire();
        let b = g.try_acquire(5);
        assert_eq!(a.held(), 1);
        assert_eq!(b.held(), 2, "try_acquire grants only what is free");
        assert_eq!(g.available(), 0);
        let c = g.try_acquire(1);
        assert_eq!(c.held(), 0, "exhausted pool grants zero without blocking");
        drop(b);
        assert_eq!(g.available(), 2);
        drop(a);
        drop(c);
        assert_eq!(g.available(), 3);
    }

    #[test]
    fn zero_total_is_clamped_to_one() {
        let g = ThreadGovernor::new(0);
        assert_eq!(g.total(), 1);
        let lease = g.acquire();
        assert_eq!(lease.held(), 1);
    }

    #[test]
    fn blocking_acquire_never_exceeds_total() {
        let g = ThreadGovernor::new(2);
        let running = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        crossbeam::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    let _lease = g.acquire();
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    running.fetch_sub(1, Ordering::SeqCst);
                });
            }
        })
        .expect("no panics");
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "governor must bound concurrency"
        );
        assert_eq!(g.available(), 2, "all permits returned");
    }
}
