//! Hardware resource reassignment (paper Section 4.3).
//!
//! Top-ranked bottleneck sources get the next-larger candidate value of
//! their backing parameter(s); resources with (near-)zero contribution are
//! shrunk to the next-smaller candidate. Branch-predictor and cache
//! parameters obey the paper's freeze rule: once growing them stops
//! improving the PPA trade-off they are not grown again (their returns are
//! limited by the prediction algorithm / access pattern, not capacity).

use crate::space::{DesignSpace, ParamId};
use archx_deg::{BottleneckReport, BottleneckSource};
use archx_power::PowerModel;
use archx_sim::MicroArch;
use std::collections::HashSet;

/// Parameters that back a bottleneck source, in priority order.
pub fn params_for(source: BottleneckSource) -> &'static [ParamId] {
    match source {
        BottleneckSource::Rob => &[ParamId::Rob],
        BottleneckSource::Iq => &[ParamId::Iq],
        BottleneckSource::Lq => &[ParamId::Lq],
        BottleneckSource::Sq => &[ParamId::Sq],
        BottleneckSource::IntRf => &[ParamId::IntRf],
        BottleneckSource::FpRf => &[ParamId::FpRf],
        BottleneckSource::IntAlu => &[ParamId::IntAlu],
        BottleneckSource::IntMultDiv => &[ParamId::IntMultDiv],
        BottleneckSource::FpAlu => &[ParamId::FpAlu],
        BottleneckSource::FpMultDiv => &[ParamId::FpMultDiv],
        // Memory ports are not searchable in Table 4; bigger/faster D-cache
        // paths are the nearest lever.
        BottleneckSource::RdWrPort => &[ParamId::DCacheKb],
        BottleneckSource::ICache => &[ParamId::ICacheKb, ParamId::ICacheAssoc],
        BottleneckSource::DCache => &[ParamId::DCacheKb, ParamId::DCacheAssoc],
        BottleneckSource::BPred => &[
            ParamId::GlobalPredictor,
            ParamId::LocalPredictor,
            ParamId::ChoicePredictor,
            ParamId::Btb,
            ParamId::Ras,
        ],
        BottleneckSource::FetchQueue => &[ParamId::FetchQueue, ParamId::FetchBuffer],
        BottleneckSource::Width => &[ParamId::Width],
        BottleneckSource::TrueDep
        | BottleneckSource::MemDep
        | BottleneckSource::Base
        | BottleneckSource::Unattributed => &[],
    }
}

/// The source a parameter serves (inverse of [`params_for`], first match).
pub fn source_of(param: ParamId) -> BottleneckSource {
    for &s in &BottleneckSource::ALL {
        if params_for(s).contains(&param) {
            return s;
        }
    }
    unreachable!("every parameter backs a source")
}

/// Whether a parameter falls under the paper's cache/branch-predictor
/// freeze rule.
pub fn freezable(param: ParamId) -> bool {
    matches!(
        param,
        ParamId::LocalPredictor
            | ParamId::GlobalPredictor
            | ParamId::ChoicePredictor
            | ParamId::Btb
            | ParamId::Ras
            | ParamId::ICacheKb
            | ParamId::ICacheAssoc
            | ParamId::DCacheKb
            | ParamId::DCacheAssoc
    )
}

/// Reassignment policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReassignOptions {
    /// How many top-ranked bottlenecks to grow per step.
    pub grow_top_k: usize,
    /// Contribution below which a resource counts as redundant.
    pub shrink_threshold: f64,
    /// How many redundant resources to shrink per step.
    pub shrink_max: usize,
    /// Extra candidate rungs to climb per 10% of contribution (dominant
    /// bottlenecks take bigger steps; capped at 3 rungs per move).
    pub rungs_per_contribution: f64,
    /// When false, fall back to the naive rule (shrink only
    /// zero-contribution resources, ignoring their area cost) — kept for
    /// the ablation study.
    pub cost_aware_shrink: bool,
}

impl Default for ReassignOptions {
    fn default() -> Self {
        ReassignOptions {
            grow_top_k: 2,
            shrink_threshold: 0.002,
            shrink_max: 5,
            rungs_per_contribution: 10.0,
            cost_aware_shrink: true,
        }
    }
}

/// Outcome of one reassignment step.
#[derive(Debug, Clone, PartialEq)]
pub struct Reassignment {
    /// The proposed design (equal to the input when no move was possible).
    pub arch: MicroArch,
    /// Parameters grown this step.
    pub grown: Vec<ParamId>,
    /// Parameters shrunk this step.
    pub shrunk: Vec<ParamId>,
}

/// Proposes the next design from a bottleneck report (paper Section 4.3).
///
/// `frozen` parameters are never grown (the caller maintains the freeze
/// set per the PPA-improvement rule).
pub fn reassign(
    space: &DesignSpace,
    arch: &MicroArch,
    report: &BottleneckReport,
    frozen: &HashSet<ParamId>,
    opts: &ReassignOptions,
) -> Reassignment {
    let mut next = *arch;
    let mut grown = Vec::new();
    let mut shrunk = Vec::new();

    // Grow the top-ranked reassignable bottlenecks.
    for (source, contribution) in report.ranked() {
        if grown.len() >= opts.grow_top_k {
            break;
        }
        if !source.is_reassignable() || contribution <= opts.shrink_threshold {
            continue;
        }
        let rungs = (1.0 + contribution * opts.rungs_per_contribution).min(4.0) as usize;
        for &param in params_for(source) {
            if frozen.contains(&param) {
                continue;
            }
            let mut moved = false;
            for _ in 0..rungs {
                if let Some(v) = space.next_larger(param, param.get(&next)) {
                    param.set(&mut next, v);
                    moved = true;
                } else {
                    break;
                }
            }
            if moved {
                grown.push(param);
                break;
            }
        }
    }

    // Shrink over-provisioned resources to balance power and area
    // (paper §4.3). A resource is over-provisioned when its runtime
    // contribution is small compared to the relative area it would give
    // back when stepped down one candidate — so expensive structures
    // (pipeline width, caches, predictors) shrink even with a small
    // residual contribution, while a cheap queue only shrinks when truly
    // idle.
    let power = PowerModel::default();
    let area_now = power.area(&next);
    let mut shrinkable: Vec<(f64, ParamId)> = ParamId::ALL
        .iter()
        .copied()
        .filter(|&p| !grown.contains(&p))
        .filter_map(|p| {
            let v = space.next_smaller(p, p.get(&next))?;
            let mut smaller = next;
            p.set(&mut smaller, v);
            let saving = (area_now - power.area(&smaller)) / area_now;
            let contribution = report.contribution(source_of(p));
            // Benefit of shrinking minus (bounded) performance risk.
            let score = saving - 0.5 * contribution;
            let limit = if opts.cost_aware_shrink {
                opts.shrink_threshold.max(2.0 * saving)
            } else {
                opts.shrink_threshold
            };
            (contribution <= limit).then_some((score, p))
        })
        .collect();
    shrinkable.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));
    for (_, param) in shrinkable.into_iter().take(opts.shrink_max) {
        if let Some(v) = space.next_smaller(param, param.get(&next)) {
            param.set(&mut next, v);
            shrunk.push(param);
        }
    }

    Reassignment {
        arch: next,
        grown,
        shrunk,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(entries: &[(BottleneckSource, f64)]) -> BottleneckReport {
        let mut contributions = [0.0; archx_deg::NUM_SOURCES];
        for &(s, c) in entries {
            contributions[s.index()] = c;
        }
        BottleneckReport {
            contributions,
            length: 1000,
        }
    }

    #[test]
    fn grows_top_bottleneck_and_shrinks_idle() {
        let space = DesignSpace::table4();
        let arch = space.snap(&MicroArch::baseline());
        let report = report_with(&[
            (BottleneckSource::Sq, 0.38),
            (BottleneckSource::IntRf, 0.10),
            (BottleneckSource::Base, 0.2),
        ]);
        let r = reassign(
            &space,
            &arch,
            &report,
            &HashSet::new(),
            &ReassignOptions::default(),
        );
        assert!(r.grown.contains(&ParamId::Sq), "top bottleneck must grow");
        assert!(r.grown.contains(&ParamId::IntRf));
        assert!(r.arch.sq_entries > arch.sq_entries);
        assert!(!r.shrunk.is_empty(), "idle resources must shrink");
        assert!(r.arch.validate().is_ok());
    }

    #[test]
    fn frozen_params_are_skipped() {
        let space = DesignSpace::table4();
        let arch = space.snap(&MicroArch::baseline());
        let report = report_with(&[(BottleneckSource::BPred, 0.5)]);
        let mut frozen = HashSet::new();
        for p in [
            ParamId::GlobalPredictor,
            ParamId::LocalPredictor,
            ParamId::ChoicePredictor,
            ParamId::Btb,
            ParamId::Ras,
        ] {
            frozen.insert(p);
        }
        let r = reassign(&space, &arch, &report, &frozen, &ReassignOptions::default());
        assert!(r.grown.iter().all(|p| !frozen.contains(p)));
    }

    #[test]
    fn saturated_params_cannot_grow() {
        let space = DesignSpace::table4();
        let mut arch = space.snap(&MicroArch::baseline());
        arch.sq_entries = 48; // lattice max
        let report = report_with(&[(BottleneckSource::Sq, 0.9)]);
        let r = reassign(
            &space,
            &arch,
            &report,
            &HashSet::new(),
            &ReassignOptions::default(),
        );
        assert!(!r.grown.contains(&ParamId::Sq));
        assert_eq!(r.arch.sq_entries, 48);
    }

    #[test]
    fn non_reassignable_sources_ignored() {
        let space = DesignSpace::table4();
        let arch = space.snap(&MicroArch::baseline());
        let report = report_with(&[(BottleneckSource::TrueDep, 0.9)]);
        let r = reassign(
            &space,
            &arch,
            &report,
            &HashSet::new(),
            &ReassignOptions::default(),
        );
        assert!(r.grown.is_empty());
    }

    #[test]
    fn every_param_maps_to_a_source() {
        for &p in &ParamId::ALL {
            let s = source_of(p);
            assert!(params_for(s).contains(&p));
        }
    }

    #[test]
    fn freeze_set_membership() {
        assert!(freezable(ParamId::DCacheKb));
        assert!(freezable(ParamId::Btb));
        assert!(!freezable(ParamId::Rob));
        assert!(!freezable(ParamId::Width));
    }
}
