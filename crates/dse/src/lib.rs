#![warn(missing_docs)]
//! # archx-dse — design-space exploration
//!
//! The search layer of the ArchExplorer reproduction:
//!
//! * [`space`] — the Table 4 design space (22 parameters, ~9 × 10¹⁴
//!   designs): candidate lattices, random sampling, next-larger /
//!   next-smaller moves, normalised features, mixed-radix indexing;
//! * [`eval`] — the shared design evaluator: workload-suite simulation,
//!   McPAT-lite power/area, design cache, simulation budget accounting,
//!   bottleneck analysis backends, run logs, and the failure-isolation
//!   layer (typed errors, bounded retry, quarantine);
//! * [`journal`] — the write-ahead evaluation journal (JSONL) that makes
//!   campaigns crash-safe and resumable;
//! * [`pareto`] — dominance, frontier maintenance, and exact 3-D Pareto
//!   hypervolume (Eq. 3);
//! * [`reassign`] + [`archexplorer`] — the bottleneck-removal-driven
//!   search of Section 4.3, with the cache/branch-predictor freeze rule,
//!   plateau early-stopping and restarts;
//! * [`baselines`] — random search, AdaBoost.RT, ArchRanker-style pairwise
//!   ranking, BOOM-Explorer-style GP Bayesian optimisation, and the
//!   Calipers-guided variant;
//! * [`ml`] — the self-contained surrogate toolkit (Cholesky, GP,
//!   regression trees, boosting, ranking);
//! * [`campaign`] — method-versus-method comparisons producing the
//!   hypervolume-versus-simulations curves of Figure 12 / Table 5;
//! * [`verify`] — the differential verification harness (`archx verify`):
//!   seeded design × workload × window sweeps under `CheckedCore`
//!   invariants and the DEG validation oracles, with metamorphic checks
//!   and shrinking reproducers.
//!
//! ```no_run
//! use archx_dse::prelude::*;
//! use archx_workloads::spec06_suite;
//!
//! let space = DesignSpace::table4();
//! let cfg = CampaignConfig { sim_budget: 120, ..Default::default() };
//! let log = run_method(Method::ArchExplorer, &space, &spec06_suite(), &cfg);
//! println!("explored {} designs", log.records.len());
//! ```

pub mod archexplorer;
pub mod baselines;
pub mod campaign;
pub mod eval;
pub mod governor;
pub mod journal;
pub mod ml;
pub mod pareto;
pub mod reassign;
pub mod space;
pub mod verify;

/// Default worker-thread count for workload-parallel simulation: the
/// machine's parallelism, capped at 8 (suites have ≤14 workloads, and the
/// cap keeps laptop runs polite). The single source of truth for every
/// layer's default.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
}

/// Convenient re-exports of the main entry points.
pub mod prelude {
    pub use crate::archexplorer::{run_archexplorer, ArchExplorerOptions};
    pub use crate::campaign::{
        aggregate_curves, build_evaluator, build_evaluator_in, run_journal_path, run_method,
        run_method_observed, run_method_on, sweep, Campaign, CampaignConfig, CampaignError,
        CampaignRunner, Method, ParallelConfig, RunSpec, SweepCurve,
    };
    pub use crate::default_threads;
    pub use crate::eval::{
        Analysis, DesignEval, EvalError, EvalFailure, EvalRecord, Evaluator, EvaluatorBuilder,
        QuarantineEntry, RunLog, SimLimits,
    };
    pub use crate::governor::{Lease, ThreadGovernor};
    pub use crate::journal::{Journal, JournalError, JournalFingerprint, JournalRecord};
    pub use crate::pareto::{dominates, hypervolume, pareto_front, ExplorationSet, RefPoint};
    pub use crate::space::{DesignSpace, ParamId};
    pub use crate::verify::{run_verify, VerifyConfig, VerifyReport, Violation};
}

pub use archexplorer::{run_archexplorer, ArchExplorerOptions};
pub use campaign::{
    aggregate_curves, build_evaluator, build_evaluator_in, run_journal_path, run_method,
    run_method_on, sweep, Campaign, CampaignConfig, CampaignError, CampaignRunner, Method,
    ParallelConfig, RunSpec, SweepCurve,
};
pub use eval::{
    Analysis, DesignEval, EvalError, EvalFailure, Evaluator, EvaluatorBuilder, QuarantineEntry,
    RunLog, SimLimits,
};
pub use governor::{Lease, ThreadGovernor};
pub use journal::{Journal, JournalError, JournalFingerprint, JournalRecord};
pub use pareto::{hypervolume, pareto_front, ExplorationSet, RefPoint};
pub use space::{DesignSpace, ParamId};
pub use verify::{run_verify, VerifyConfig, VerifyReport, Violation};
