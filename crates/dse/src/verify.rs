//! The differential verification harness behind `archx verify`.
//!
//! Sweeps seeded-random design points × workloads × instruction windows
//! through the full sim → DEG → bottleneck chain with the `CheckedCore`
//! per-cycle invariants enabled and the [`archx_deg::validate`] oracle
//! hierarchy applied to every graph, plus metamorphic checks:
//!
//! * **resource enlargement** — growing a single back-end capacity (ROB,
//!   IQ, integer RF) never increases cycles. Checked on a compute-bound
//!   independent-ALU stream, where the property is a theorem of the model;
//!   on cache-bound streams LRU reordering and cache warming by younger
//!   instructions make it empirically-but-not-universally true, so random
//!   workloads are deliberately not used here;
//! * **window prefix** — the trace synthesiser is prefix-stable (a window
//!   of `w` instructions is exactly the first `w` of a longer window),
//!   the property the evaluator's retry-on-halved-window path depends on;
//! * **determinism** — re-running a design yields bit-identical traces.
//!
//! Failures shrink (halve the window, walk the design back toward the
//! baseline parameter by parameter while the failure persists) and are
//! reported as [`Violation`]s with a ready-to-run `archx verify` repro
//! command, alongside `verify/violation/<check>` telemetry counters.

use crate::space::{DesignSpace, ParamId};
use archx_deg::bottleneck::analyze;
use archx_deg::naive::naive_stall_report;
use archx_deg::validate::validate_exactness;
use archx_deg::{build_deg, induce};
use archx_sim::check::{CheckConfig, InjectedFault};
use archx_sim::{trace_gen, MicroArch, OooCore};
use archx_telemetry::JsonValue;
use archx_workloads::{spec06_suite, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Capacity parameters whose enlargement is checked for monotonicity on
/// the compute-bound stream.
const ENLARGEABLE: [ParamId; 3] = [ParamId::Rob, ParamId::Iq, ParamId::IntRf];

/// Instruction count of the synthetic stream used by the enlargement
/// metamorphic check.
const ENLARGE_STREAM: usize = 3_000;

/// Smallest window the shrinker will try.
const MIN_WINDOW: usize = 64;

/// Configuration of one verification sweep.
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// Number of seeded-random design points to sweep.
    pub designs: usize,
    /// Seed for design sampling and trace synthesis.
    pub seed: u64,
    /// Largest instruction window; the sweep cycles through `window`,
    /// `window/2` and `window/4` across designs.
    pub window: usize,
    /// Workload suite to rotate through (defaults to SPEC06).
    pub workloads: Vec<Workload>,
    /// Optional intentionally injected fault (fault-injection testing).
    pub fault: Option<InjectedFault>,
    /// Whether to run the metamorphic checks.
    pub metamorphic: bool,
    /// Verify exactly this design instead of sampling (CLI `PARAM=V`
    /// overrides; `designs` is ignored when set).
    pub only_design: Option<MicroArch>,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            designs: 16,
            seed: 1,
            window: 2_000,
            workloads: spec06_suite(),
            fault: None,
            metamorphic: true,
            only_design: None,
        }
    }
}

/// A shrunk reproducer for a violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Repro {
    /// The smallest design (Table 4 parameters) still showing the failure.
    pub design: MicroArch,
    /// The smallest window still showing the failure.
    pub window: usize,
    /// Trace seed of the failing run.
    pub trace_seed: u64,
    /// Ready-to-run command line reproducing the failure.
    pub command: String,
}

/// One verification failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Machine-readable check tag (matches the
    /// `verify/violation/<check>` telemetry counter).
    pub check: String,
    /// Rendered diagnostic.
    pub detail: String,
    /// Workload the failing run simulated.
    pub workload: String,
    /// Original (unshrunk) design.
    pub design: MicroArch,
    /// Original (unshrunk) window.
    pub window: usize,
    /// Trace seed of the failing run.
    pub trace_seed: u64,
    /// Shrunk reproducer, when shrinking preserved the failure.
    pub shrunk: Option<Repro>,
}

/// Outcome of a verification sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// Designs swept.
    pub designs: usize,
    /// Individual checks executed.
    pub checks: u64,
    /// Sweep seed.
    pub seed: u64,
    /// Violations found (empty on a clean sweep).
    pub violations: Vec<Violation>,
}

impl VerifyReport {
    /// Whether the sweep found no violations.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Machine-readable JSON rendering of the report.
    pub fn to_json(&self) -> String {
        let design_obj = |arch: &MicroArch| {
            JsonValue::Obj(
                ParamId::ALL
                    .iter()
                    .map(|&p| (p.to_string(), JsonValue::Int(p.get(arch) as u64)))
                    .collect(),
            )
        };
        let violations = self
            .violations
            .iter()
            .map(|v| {
                let mut fields = vec![
                    ("check".to_string(), JsonValue::Str(v.check.clone())),
                    ("detail".to_string(), JsonValue::Str(v.detail.clone())),
                    ("workload".to_string(), JsonValue::Str(v.workload.clone())),
                    ("design".to_string(), design_obj(&v.design)),
                    ("window".to_string(), JsonValue::Int(v.window as u64)),
                    ("trace_seed".to_string(), JsonValue::Int(v.trace_seed)),
                ];
                match &v.shrunk {
                    Some(r) => fields.push((
                        "shrunk".to_string(),
                        JsonValue::Obj(vec![
                            ("design".to_string(), design_obj(&r.design)),
                            ("window".to_string(), JsonValue::Int(r.window as u64)),
                            ("trace_seed".to_string(), JsonValue::Int(r.trace_seed)),
                            ("command".to_string(), JsonValue::Str(r.command.clone())),
                        ]),
                    )),
                    None => fields.push(("shrunk".to_string(), JsonValue::Null)),
                }
                JsonValue::Obj(fields)
            })
            .collect();
        JsonValue::Obj(vec![
            ("designs".to_string(), JsonValue::Int(self.designs as u64)),
            ("checks".to_string(), JsonValue::Int(self.checks)),
            ("seed".to_string(), JsonValue::Int(self.seed)),
            ("ok".to_string(), JsonValue::Bool(self.ok())),
            ("violations".to_string(), JsonValue::Arr(violations)),
        ])
        .render()
    }
}

/// One failing check before it is wrapped into a [`Violation`].
type CheckFailure = (String, String);

/// A design sensitised to a given fault: the faulted resource is the
/// unique binding back-end structure, so any workload with stalls at the
/// ROB head fills it and provably trips the checker. Random designs give
/// no such guarantee (another pool may saturate first), so the sweep
/// prepends this probe whenever a fault is injected.
fn sensitised_design(space: &DesignSpace, fault: InjectedFault) -> MicroArch {
    let mut arch = MicroArch::baseline();
    let maxed = [
        ParamId::Width,
        ParamId::Iq,
        ParamId::IntRf,
        ParamId::FpRf,
        ParamId::Lq,
        ParamId::Sq,
        ParamId::IntAlu,
    ];
    for p in maxed {
        p.set(
            &mut arch,
            *space.candidates(p).last().expect("non-empty lattice"),
        );
    }
    match fault {
        InjectedFault::RobCapacityOffByOne => {
            ParamId::Rob.set(&mut arch, space.candidates(ParamId::Rob)[0]);
        }
    }
    arch
}

/// Runs the sim → DEG → bottleneck chain for one (design, workload,
/// window) triple under full checking. Returns the number of checks run.
fn check_chain(
    design: &MicroArch,
    workload: &Workload,
    window: usize,
    trace_seed: u64,
    fault: Option<InjectedFault>,
) -> Result<u64, CheckFailure> {
    let core = OooCore::try_new(*design)
        .map_err(|e| ("config/invalid".to_string(), e.to_string()))?
        .with_invariant_checks(CheckConfig { fault });
    let trace = workload.generate(window, trace_seed);
    let result = core.run(&trace).map_err(|e| match &e {
        archx_sim::SimError::InvariantViolation { check, .. } => (check.clone(), e.to_string()),
        other => (format!("sim/{}", other.tag()), e.to_string()),
    })?;
    let path = validate_exactness(&result).map_err(|v| (v.check.to_string(), v.detail))?;
    // Bottleneck attribution must be a normalised distribution over the
    // critical path.
    let deg = induce(build_deg(&result));
    let report = analyze(&deg, &path);
    let total = report.total();
    if !(0.0..=1.0 + 1e-9).contains(&total) {
        return Err((
            "bottleneck/normalised".to_string(),
            format!("contributions sum to {total}"),
        ));
    }
    if report.length != path.total_delay {
        return Err((
            "bottleneck/length".to_string(),
            format!(
                "report length {} != path delay {}",
                report.length, path.total_delay
            ),
        ));
    }
    // The naive stall accounting (the paper's §2.3 strawman) runs on the
    // same SimResult as a differential oracle: it must stay a normalised
    // distribution and be deterministic. (Its over-blaming *relative to
    // runtime* is the expected contrast, not a violation.)
    let (naive, blamed) = naive_stall_report(&result);
    let naive_total = naive.total();
    if !(0.0..=1.0 + 1e-9).contains(&naive_total) {
        return Err((
            "naive/normalised".to_string(),
            format!("naive stall shares sum to {naive_total}"),
        ));
    }
    if naive_stall_report(&result) != (naive, blamed) {
        return Err((
            "naive/determinism".to_string(),
            "naive stall accounting diverged between two runs".to_string(),
        ));
    }
    // Per-cycle invariants + oracle hierarchy + bottleneck + naive checks.
    Ok(4)
}

fn cycles_on_stream(design: &MicroArch) -> Result<u64, CheckFailure> {
    OooCore::try_new(*design)
        .map_err(|e| ("config/invalid".to_string(), e.to_string()))?
        .run(&trace_gen::independent_int_ops(ENLARGE_STREAM))
        .map(|r| r.trace.cycles)
        .map_err(|e| (format!("sim/{}", e.tag()), e.to_string()))
}

/// Metamorphic check: enlarging one back-end capacity never increases
/// cycles on the compute-bound stream.
fn check_enlargement(
    space: &DesignSpace,
    design: &MicroArch,
    param: ParamId,
) -> Result<u64, CheckFailure> {
    let Some(bigger) = space.next_larger(param, param.get(design)) else {
        return Ok(0); // already at the lattice maximum
    };
    let mut enlarged = *design;
    param.set(&mut enlarged, bigger);
    if enlarged.validate().is_err() {
        return Ok(0); // enlargement left the lattice of valid configs
    }
    let base = cycles_on_stream(design)?;
    let grown = cycles_on_stream(&enlarged)?;
    if grown > base {
        return Err((
            "metamorphic/enlarge".to_string(),
            format!(
                "growing {param} {} -> {bigger} increased cycles {base} -> {grown}",
                param.get(design)
            ),
        ));
    }
    Ok(1)
}

/// Metamorphic check: trace synthesis is prefix-stable and deterministic.
fn check_prefix(workload: &Workload, window: usize, trace_seed: u64) -> Result<u64, CheckFailure> {
    let full = workload.generate(window, trace_seed);
    let half = workload.generate(window / 2, trace_seed);
    if half[..] != full[..window / 2] {
        return Err((
            "metamorphic/prefix".to_string(),
            format!(
                "{}: window {} is not a prefix of window {window}",
                workload.id.0,
                window / 2
            ),
        ));
    }
    Ok(1)
}

/// Metamorphic check: simulation is deterministic.
fn check_determinism(
    design: &MicroArch,
    workload: &Workload,
    window: usize,
    trace_seed: u64,
) -> Result<u64, CheckFailure> {
    let trace = workload.generate(window, trace_seed);
    let run = |c: OooCore| {
        c.run(&trace)
            .map_err(|e| (format!("sim/{}", e.tag()), e.to_string()))
    };
    let a =
        run(OooCore::try_new(*design).map_err(|e| ("config/invalid".to_string(), e.to_string()))?)?;
    let b =
        run(OooCore::try_new(*design).map_err(|e| ("config/invalid".to_string(), e.to_string()))?)?;
    if a.trace != b.trace || a.stats != b.stats {
        return Err((
            "metamorphic/determinism".to_string(),
            format!("{}: two runs of the same design diverged", workload.id.0),
        ));
    }
    Ok(1)
}

/// Shrinks a failing (design, window) pair: first halves the window while
/// the failure persists, then walks each parameter back to the baseline
/// value (when the space allows it) keeping every step that still fails.
fn shrink(
    design: &MicroArch,
    workload: &Workload,
    window: usize,
    trace_seed: u64,
    fault: Option<InjectedFault>,
) -> Repro {
    let still_fails =
        |d: &MicroArch, w: usize| check_chain(d, workload, w, trace_seed, fault).is_err();
    let mut window = window;
    while window / 2 >= MIN_WINDOW && still_fails(design, window / 2) {
        window /= 2;
    }
    // Walk toward the *unsnapped* baseline: the repro command rebuilds the
    // design as baseline-plus-overrides, so omitted parameters must mean
    // exactly `MicroArch::baseline()` values.
    let baseline = MicroArch::baseline();
    let mut shrunk = *design;
    for &p in &ParamId::ALL {
        let target = p.get(&baseline);
        if p.get(&shrunk) == target {
            continue;
        }
        let mut candidate = shrunk;
        p.set(&mut candidate, target);
        if candidate.validate().is_ok() && still_fails(&candidate, window) {
            shrunk = candidate;
        }
    }
    let mut command = format!(
        "archx verify workload={} window={window} seed={trace_seed}",
        workload.id.0
    );
    if let Some(f) = fault {
        command.push_str(&format!(" inject={}", f.name()));
    }
    let mut pinned = false;
    for &p in &ParamId::ALL {
        if p.get(&shrunk) != p.get(&baseline) {
            command.push_str(&format!(" {p}={}", p.get(&shrunk)));
            pinned = true;
        }
    }
    if !pinned {
        // A parameter override (even at its baseline value) is what makes
        // `archx verify` pin this exact design instead of sweeping.
        command.push_str(&format!(" Width={}", ParamId::Width.get(&baseline)));
    }
    Repro {
        design: shrunk,
        window,
        trace_seed,
        command,
    }
}

/// Runs a full verification sweep.
pub fn run_verify(cfg: &VerifyConfig) -> VerifyReport {
    let _scope = archx_telemetry::scope("verify");
    let space = DesignSpace::table4();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let designs: Vec<MicroArch> = match &cfg.only_design {
        Some(d) => vec![*d],
        None => {
            let mut v: Vec<MicroArch> = cfg
                .fault
                .map(|f| sensitised_design(&space, f))
                .into_iter()
                .collect();
            v.extend((0..cfg.designs).map(|_| space.random(&mut rng)));
            v
        }
    };
    let mut checks = 0u64;
    let mut violations = Vec::new();
    for (i, design) in designs.iter().enumerate() {
        let workload = &cfg.workloads[i % cfg.workloads.len()];
        // Repro runs (`only_design`) must use the requested window verbatim
        // so shrunk commands replay exactly; sweeps rotate window sizes.
        let window = if cfg.only_design.is_some() {
            cfg.window.max(MIN_WINDOW)
        } else {
            (cfg.window >> (i % 3)).max(MIN_WINDOW * 2)
        };
        let trace_seed = cfg.seed.wrapping_add(i as u64);
        archx_telemetry::counter_add("verify/design", 1);

        let mut record = |failure: CheckFailure, shrink_it: bool| {
            let (check, detail) = failure;
            let shrunk = shrink_it.then(|| shrink(design, workload, window, trace_seed, cfg.fault));
            violations.push(Violation {
                check,
                detail,
                workload: workload.id.0.to_string(),
                design: *design,
                window,
                trace_seed,
                shrunk,
            });
        };

        match check_chain(design, workload, window, trace_seed, cfg.fault) {
            Ok(n) => checks += n,
            Err(failure) => {
                record(failure, true);
                continue; // chain is broken; metamorphic results would lie
            }
        }
        if cfg.metamorphic {
            match check_enlargement(&space, design, ENLARGEABLE[i % ENLARGEABLE.len()]) {
                Ok(n) => checks += n,
                Err(f) => record(f, false),
            }
            match check_prefix(workload, window, trace_seed) {
                Ok(n) => checks += n,
                Err(f) => record(f, false),
            }
            if i % 8 == 0 {
                match check_determinism(design, workload, window, trace_seed) {
                    Ok(n) => checks += n,
                    Err(f) => record(f, false),
                }
            }
        }
    }
    VerifyReport {
        designs: designs.len(),
        checks,
        seed: cfg.seed,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> VerifyConfig {
        VerifyConfig {
            designs: 3,
            seed: 11,
            window: 800,
            ..VerifyConfig::default()
        }
    }

    #[test]
    fn clean_sweep_reports_no_violations() {
        let report = run_verify(&quick_cfg());
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert_eq!(report.designs, 3);
        assert!(report.checks > 0);
        let json = report.to_json();
        assert!(
            json.contains("\"ok\": true") || json.contains("\"ok\":true"),
            "{json}"
        );
    }

    #[test]
    fn injected_fault_is_caught_and_shrunk() {
        let cfg = VerifyConfig {
            fault: Some(InjectedFault::RobCapacityOffByOne),
            metamorphic: false,
            ..quick_cfg()
        };
        let report = run_verify(&cfg);
        assert!(!report.ok(), "the injected fault must surface");
        let v = &report.violations[0];
        assert_eq!(v.check, "occupancy/ROB");
        let repro = v.shrunk.as_ref().expect("deterministic failures shrink");
        assert!(repro.window <= v.window);
        assert!(repro.command.contains("inject=rob-off-by-one"));
        let json = report.to_json();
        assert!(json.contains("occupancy/ROB"));
        assert!(json.contains("rob-off-by-one"));
    }

    #[test]
    fn only_design_pins_the_sweep() {
        let cfg = VerifyConfig {
            only_design: Some(MicroArch::tiny()),
            ..quick_cfg()
        };
        let report = run_verify(&cfg);
        assert_eq!(report.designs, 1);
        assert!(report.ok(), "violations: {:?}", report.violations);
    }
}
