//! Dense symmetric positive-definite linear algebra (Cholesky).

/// Cholesky factorisation of a symmetric positive-definite matrix stored
/// row-major: returns lower-triangular `L` with `A = L Lᵀ`.
///
/// # Errors
///
/// Returns `Err` when the matrix is not positive definite.
pub fn cholesky(a: &[f64], n: usize) -> Result<Vec<f64>, &'static str> {
    assert_eq!(a.len(), n * n, "matrix shape mismatch");
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err("matrix not positive definite");
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Ok(l)
}

/// Solves `L y = b` (forward substitution) for lower-triangular `L`.
pub fn solve_lower(l: &[f64], n: usize, b: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * y[k];
        }
        y[i] = sum / l[i * n + i];
    }
    y
}

/// Solves `Lᵀ x = y` (backward substitution) for lower-triangular `L`.
pub fn solve_lower_transpose(l: &[f64], n: usize, y: &[f64]) -> Vec<f64> {
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    x
}

/// Solves `A x = b` given the Cholesky factor `L` of `A`.
pub fn cholesky_solve(l: &[f64], n: usize, b: &[f64]) -> Vec<f64> {
    let y = solve_lower(l, n, b);
    solve_lower_transpose(l, n, &y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_and_solve_small_system() {
        // A = [[4,2],[2,3]] (SPD)
        let a = vec![4.0, 2.0, 2.0, 3.0];
        let l = cholesky(&a, 2).unwrap();
        // L = [[2,0],[1,sqrt(2)]]
        assert!((l[0] - 2.0).abs() < 1e-12);
        assert!((l[2] - 1.0).abs() < 1e-12);
        assert!((l[3] - 2.0f64.sqrt()).abs() < 1e-12);
        let x = cholesky_solve(&l, 2, &[2.0, 1.0]);
        // Check A x = b
        assert!((4.0 * x[0] + 2.0 * x[1] - 2.0).abs() < 1e-10);
        assert!((2.0 * x[0] + 3.0 * x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn rejects_non_spd() {
        let a = vec![1.0, 2.0, 2.0, 1.0]; // indefinite
        assert!(cholesky(&a, 2).is_err());
    }

    #[test]
    fn identity_roundtrip() {
        let n = 5;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        let l = cholesky(&a, n).unwrap();
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let x = cholesky_solve(&l, n, &b);
        for i in 0..n {
            assert!((x[i] - b[i]).abs() < 1e-12);
        }
    }
}
