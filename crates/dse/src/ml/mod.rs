//! Minimal machine-learning toolkit for the black-box DSE baselines:
//! dense Cholesky linear algebra, Gaussian-process regression
//! (BOOM-Explorer), and boosted regression trees (AdaBoost.RT) / pairwise
//! ranking (ArchRanker).

pub mod boost;
pub mod gp;
pub mod linalg;
pub mod tree;

pub use boost::{AdaBoostRt, RankBoost};
pub use gp::GaussianProcess;
pub use tree::RegressionTree;
