//! Depth-bounded regression trees (the weak learners of AdaBoost.RT and
//! the pairwise ranker).

/// A binary regression tree of bounded depth with axis-aligned splits.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

impl RegressionTree {
    /// Fits a tree of `max_depth` to weighted samples.
    ///
    /// # Panics
    ///
    /// Panics on empty input or mismatched lengths.
    pub fn fit(x: &[Vec<f64>], y: &[f64], w: &[f64], max_depth: usize) -> Self {
        assert!(!x.is_empty(), "empty training set");
        assert!(x.len() == y.len() && y.len() == w.len(), "length mismatch");
        let idx: Vec<usize> = (0..x.len()).collect();
        let mut nodes = Vec::new();
        build(x, y, w, &idx, max_depth, &mut nodes);
        RegressionTree { nodes }
    }

    /// Predicts one sample.
    pub fn predict(&self, q: &[f64]) -> f64 {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if q[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

fn weighted_mean(y: &[f64], w: &[f64], idx: &[usize]) -> f64 {
    let ws: f64 = idx.iter().map(|&i| w[i]).sum();
    if ws <= 0.0 {
        return 0.0;
    }
    idx.iter().map(|&i| w[i] * y[i]).sum::<f64>() / ws
}

fn weighted_sse(y: &[f64], w: &[f64], idx: &[usize], mean: f64) -> f64 {
    idx.iter()
        .map(|&i| w[i] * (y[i] - mean) * (y[i] - mean))
        .sum()
}

/// Builds a subtree over `idx`, returning its node index.
fn build(
    x: &[Vec<f64>],
    y: &[f64],
    w: &[f64],
    idx: &[usize],
    depth: usize,
    nodes: &mut Vec<Node>,
) -> usize {
    let mean = weighted_mean(y, w, idx);
    let sse = weighted_sse(y, w, idx, mean);
    if depth == 0 || idx.len() < 4 || sse < 1e-12 {
        nodes.push(Node::Leaf { value: mean });
        return nodes.len() - 1;
    }
    // Best axis-aligned split by weighted SSE reduction; candidate
    // thresholds at quartiles of each feature to keep fitting cheap.
    let dims = x[0].len();
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
    #[allow(clippy::needless_range_loop)] // `f` indexes columns across every row of `x`
    for f in 0..dims {
        let mut vals: Vec<f64> = idx.iter().map(|&i| x[i][f]).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
        vals.dedup();
        if vals.len() < 2 {
            continue;
        }
        for q in 1..4 {
            let t = vals[(vals.len() * q / 4).min(vals.len() - 2)];
            let (l, r): (Vec<usize>, Vec<usize>) = idx.iter().partition(|&&i| x[i][f] <= t);
            if l.is_empty() || r.is_empty() {
                continue;
            }
            let lm = weighted_mean(y, w, &l);
            let rm = weighted_mean(y, w, &r);
            let s = weighted_sse(y, w, &l, lm) + weighted_sse(y, w, &r, rm);
            if best.as_ref().is_none_or(|b| s < b.2) {
                best = Some((f, t, s));
            }
        }
    }
    let Some((feature, threshold, split_sse)) = best else {
        nodes.push(Node::Leaf { value: mean });
        return nodes.len() - 1;
    };
    if split_sse >= sse {
        nodes.push(Node::Leaf { value: mean });
        return nodes.len() - 1;
    }
    let (l, r): (Vec<usize>, Vec<usize>) = idx.iter().partition(|&&i| x[i][feature] <= threshold);
    let placeholder = nodes.len();
    nodes.push(Node::Leaf { value: mean });
    let left = build(x, y, w, &l, depth - 1, nodes);
    let right = build(x, y, w, &r, depth - 1, nodes);
    nodes[placeholder] = Node::Split {
        feature,
        threshold,
        left,
        right,
    };
    placeholder
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_a_step_function() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 0.0 } else { 1.0 }).collect();
        let w = vec![1.0; 20];
        let t = RegressionTree::fit(&x, &y, &w, 2);
        assert!(t.predict(&[3.0]) < 0.3);
        assert!(t.predict(&[15.0]) > 0.7);
    }

    #[test]
    fn depth_zero_returns_mean() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![0.0, 2.0];
        let w = vec![1.0, 1.0];
        let t = RegressionTree::fit(&x, &y, &w, 0);
        assert!((t.predict(&[0.0]) - 1.0).abs() < 1e-12);
        assert!((t.predict(&[9.9]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weights_bias_the_fit() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![0.0, 10.0];
        let heavy_right = RegressionTree::fit(&x, &y, &[0.01, 1.0], 0);
        assert!(heavy_right.predict(&[0.5]) > 8.0);
    }

    #[test]
    fn splits_on_the_informative_feature() {
        // Feature 0 is noise; feature 1 carries the signal.
        let x: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i * 7 % 11) as f64, (i % 2) as f64])
            .collect();
        let y: Vec<f64> = (0..40).map(|i| (i % 2) as f64 * 5.0).collect();
        let w = vec![1.0; 40];
        let t = RegressionTree::fit(&x, &y, &w, 2);
        assert!((t.predict(&[5.0, 0.0]) - 0.0).abs() < 1.0);
        assert!((t.predict(&[5.0, 1.0]) - 5.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_input_panics() {
        let _ = RegressionTree::fit(&[], &[], &[], 2);
    }
}
