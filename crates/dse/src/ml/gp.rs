//! Gaussian-process regression with an RBF kernel (the surrogate behind
//! the BOOM-Explorer-style baseline).

use crate::ml::linalg::{cholesky, cholesky_solve, solve_lower};

/// A fitted Gaussian process over fixed-dimension feature vectors.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    x: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    chol: Vec<f64>,
    n: usize,
    lengthscale: f64,
    signal: f64,
    noise: f64,
    y_mean: f64,
}

impl GaussianProcess {
    /// Fits a GP with an RBF kernel to `(x, y)`.
    ///
    /// The lengthscale is set by the median heuristic over pairwise
    /// distances; signal variance is the (centred) label variance.
    ///
    /// # Panics
    ///
    /// Panics when `x` and `y` lengths differ or the training set is empty.
    pub fn fit(x: Vec<Vec<f64>>, y: &[f64], noise: f64) -> Self {
        assert_eq!(x.len(), y.len(), "one label per sample");
        assert!(!x.is_empty(), "empty training set");
        let n = x.len();
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();
        let signal = (yc.iter().map(|v| v * v).sum::<f64>() / n as f64).max(1e-8);

        // Median pairwise distance (sampled when n is large).
        let mut dists = Vec::new();
        let stride = (n / 64).max(1);
        for i in (0..n).step_by(stride) {
            for j in (i + 1..n).step_by(stride) {
                dists.push(sq_dist(&x[i], &x[j]).sqrt());
            }
        }
        dists.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        let lengthscale = dists
            .get(dists.len() / 2)
            .copied()
            .filter(|&d| d > 1e-9)
            .unwrap_or(1.0);

        let mut k = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                k[i * n + j] = rbf(&x[i], &x[j], lengthscale, signal);
            }
            k[i * n + i] += noise.max(1e-9);
        }
        let chol = cholesky(&k, n).expect("kernel matrix is SPD with jitter");
        let alpha = cholesky_solve(&chol, n, &yc);
        GaussianProcess {
            x,
            alpha,
            chol,
            n,
            lengthscale,
            signal,
            noise,
            y_mean,
        }
    }

    /// Posterior mean and variance at `q`.
    pub fn predict(&self, q: &[f64]) -> (f64, f64) {
        let ks: Vec<f64> = self
            .x
            .iter()
            .map(|xi| rbf(xi, q, self.lengthscale, self.signal))
            .collect();
        let mean = self.y_mean + ks.iter().zip(&self.alpha).map(|(a, b)| a * b).sum::<f64>();
        let v = solve_lower(&self.chol, self.n, &ks);
        let kqq = self.signal + self.noise;
        let var = (kqq - v.iter().map(|x| x * x).sum::<f64>()).max(1e-12);
        (mean, var)
    }

    /// Expected improvement of maximising beyond `best`.
    pub fn expected_improvement(&self, q: &[f64], best: f64) -> f64 {
        let (mu, var) = self.predict(q);
        let sigma = var.sqrt();
        if sigma < 1e-12 {
            return (mu - best).max(0.0);
        }
        let z = (mu - best) / sigma;
        (mu - best) * phi(z) + sigma * pdf(z)
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn rbf(a: &[f64], b: &[f64], lengthscale: f64, signal: f64) -> f64 {
    signal * (-0.5 * sq_dist(a, b) / (lengthscale * lengthscale)).exp()
}

/// Standard normal PDF.
fn pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF (Abramowitz–Stegun style erf approximation).
fn phi(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26, |error| < 1.5e-7.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_training_points() {
        let x: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 8.0]).collect();
        let y: Vec<f64> = x.iter().map(|v| (4.0 * v[0]).sin()).collect();
        let gp = GaussianProcess::fit(x.clone(), &y, 1e-6);
        for (xi, yi) in x.iter().zip(&y) {
            let (mu, var) = gp.predict(xi);
            assert!((mu - yi).abs() < 0.05, "mu {mu} vs {yi}");
            assert!(var < 0.1);
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let x: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64 * 0.1]).collect();
        let y = vec![0.0, 0.1, 0.2, 0.1, 0.0];
        let gp = GaussianProcess::fit(x, &y, 1e-6);
        let (_, var_near) = gp.predict(&[0.2]);
        let (_, var_far) = gp.predict(&[5.0]);
        assert!(var_far > var_near * 10.0);
    }

    #[test]
    fn ei_positive_in_promising_regions() {
        let x: Vec<Vec<f64>> = vec![vec![0.0], vec![1.0]];
        let y = vec![0.0, 1.0];
        let gp = GaussianProcess::fit(x, &y, 1e-4);
        let ei_far = gp.expected_improvement(&[3.0], 1.0);
        assert!(ei_far > 0.0, "uncertain regions must have positive EI");
        let ei_known_bad = gp.expected_improvement(&[0.0], 1.0);
        assert!(ei_far > ei_known_bad);
    }

    #[test]
    fn erf_matches_known_values() {
        assert!((erf(0.0)).abs() < 1e-9);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "one label per sample")]
    fn mismatched_inputs_panic() {
        let _ = GaussianProcess::fit(vec![vec![0.0]], &[1.0, 2.0], 1e-6);
    }
}
