//! Boosting ensembles: AdaBoost.RT for regression (the AdaBoost baseline)
//! and a RankBoost-style pairwise ranker (the ArchRanker baseline).

use crate::ml::tree::RegressionTree;

/// AdaBoost.RT: boosted regression trees with relative-error thresholding
/// (Solomatine & Shrestha), as used by the paper's AdaBoost baseline.
#[derive(Debug, Clone)]
pub struct AdaBoostRt {
    trees: Vec<(f64, RegressionTree)>,
}

impl AdaBoostRt {
    /// Fits `rounds` weak trees of depth `depth`; `phi` is the relative
    /// error threshold separating "correct" from "incorrect" predictions.
    ///
    /// # Panics
    ///
    /// Panics on empty or mismatched inputs.
    pub fn fit(x: &[Vec<f64>], y: &[f64], rounds: usize, depth: usize, phi: f64) -> Self {
        assert!(!x.is_empty() && x.len() == y.len(), "bad training set");
        let n = x.len();
        let mut w = vec![1.0 / n as f64; n];
        let mut trees = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let tree = RegressionTree::fit(x, y, &w, depth);
            // Relative error per sample.
            let scale = y.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-9);
            let errs: Vec<f64> = x
                .iter()
                .zip(y)
                .map(|(xi, yi)| (tree.predict(xi) - yi).abs() / scale)
                .collect();
            let eps: f64 = w
                .iter()
                .zip(&errs)
                .filter(|(_, &e)| e > phi)
                .map(|(wi, _)| wi)
                .sum();
            let eps = eps.clamp(1e-9, 1.0 - 1e-9);
            let beta = (eps / (1.0 - eps)).powi(2);
            let alpha = (1.0 / beta).ln();
            // Reweight: down-weight correctly predicted samples.
            for (wi, &e) in w.iter_mut().zip(&errs) {
                if e <= phi {
                    *wi *= beta;
                }
            }
            let ws: f64 = w.iter().sum();
            for wi in &mut w {
                *wi /= ws;
            }
            trees.push((alpha, tree));
            if eps < 1e-6 {
                break;
            }
        }
        AdaBoostRt { trees }
    }

    /// Weighted-median-style prediction (weighted mean of the ensemble).
    pub fn predict(&self, q: &[f64]) -> f64 {
        let ws: f64 = self.trees.iter().map(|(a, _)| *a).sum();
        if ws <= 0.0 {
            return self.trees.first().map_or(0.0, |(_, t)| t.predict(q));
        }
        self.trees
            .iter()
            .map(|(a, t)| a * t.predict(q))
            .sum::<f64>()
            / ws
    }
}

/// Pairwise ranker in the spirit of ArchRanker: learns `score(a) >
/// score(b)` from comparisons, implemented as boosted regression trees on
/// feature differences.
#[derive(Debug, Clone)]
pub struct RankBoost {
    model: AdaBoostRt,
}

impl RankBoost {
    /// Fits from preference pairs `(better, worse)` of feature vectors.
    ///
    /// # Panics
    ///
    /// Panics when no pairs are given.
    pub fn fit(pairs: &[(Vec<f64>, Vec<f64>)], rounds: usize) -> Self {
        assert!(!pairs.is_empty(), "no preference pairs");
        let mut x = Vec::with_capacity(2 * pairs.len());
        let mut y = Vec::with_capacity(2 * pairs.len());
        for (better, worse) in pairs {
            let diff: Vec<f64> = better.iter().zip(worse).map(|(a, b)| a - b).collect();
            let neg: Vec<f64> = diff.iter().map(|d| -d).collect();
            x.push(diff);
            y.push(1.0);
            x.push(neg);
            y.push(-1.0);
        }
        RankBoost {
            model: AdaBoostRt::fit(&x, &y, rounds, 2, 0.5),
        }
    }

    /// Positive when `a` is predicted to beat `b`.
    pub fn compare(&self, a: &[f64], b: &[f64]) -> f64 {
        let diff: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
        self.model.predict(&diff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archx_sim::trace_gen::XorShift;

    fn noisy_quadratic(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = XorShift::new(seed);
        let x: Vec<Vec<f64>> = (0..n).map(|_| vec![rng.unit(), rng.unit()]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|v| v[0] * v[0] + 0.5 * v[1] + 0.02 * (rng.unit() - 0.5))
            .collect();
        (x, y)
    }

    #[test]
    fn boosting_beats_a_single_stump() {
        let (x, y) = noisy_quadratic(200, 1);
        let stump = RegressionTree::fit(&x, &y, &vec![1.0 / 200.0; 200], 1);
        let boosted = AdaBoostRt::fit(&x, &y, 30, 2, 0.05);
        let (xt, yt) = noisy_quadratic(100, 2);
        let mse = |f: &dyn Fn(&[f64]) -> f64| {
            xt.iter()
                .zip(&yt)
                .map(|(xi, yi)| (f(xi) - yi).powi(2))
                .sum::<f64>()
                / xt.len() as f64
        };
        let mse_stump = mse(&|q| stump.predict(q));
        let mse_boost = mse(&|q| boosted.predict(q));
        assert!(
            mse_boost < mse_stump,
            "boosting {mse_boost} must beat one stump {mse_stump}"
        );
    }

    #[test]
    fn ranker_orders_a_monotone_function() {
        let mut rng = XorShift::new(3);
        let pairs: Vec<(Vec<f64>, Vec<f64>)> = (0..150)
            .map(|_| {
                let a = vec![rng.unit(), rng.unit()];
                let b = vec![rng.unit(), rng.unit()];
                // Ground-truth score: 2*x0 + x1.
                if 2.0 * a[0] + a[1] > 2.0 * b[0] + b[1] {
                    (a, b)
                } else {
                    (b, a)
                }
            })
            .collect();
        let ranker = RankBoost::fit(&pairs, 25);
        let mut correct = 0;
        let mut total = 0;
        for _ in 0..200 {
            let a = vec![rng.unit(), rng.unit()];
            let b = vec![rng.unit(), rng.unit()];
            let truth = 2.0 * a[0] + a[1] > 2.0 * b[0] + b[1];
            let pred = ranker.compare(&a, &b) > 0.0;
            if truth == pred {
                correct += 1;
            }
            total += 1;
        }
        assert!(
            correct as f64 / total as f64 > 0.7,
            "ranking accuracy {correct}/{total} too low"
        );
    }

    #[test]
    #[should_panic(expected = "no preference pairs")]
    fn empty_pairs_panic() {
        let _ = RankBoost::fit(&[], 5);
    }
}
