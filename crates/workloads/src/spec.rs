//! Named SPEC-like workloads (paper Table 3: 12 SPEC CPU2006 and 14 SPEC
//! CPU2017 workloads).
//!
//! Each entry tunes the synthesiser toward the pressure points its SPEC
//! counterpart is known for in the architecture literature: `mcf` chases
//! pointers through a huge working set, `sjeng`/`deepsjeng` are branchy and
//! hard to predict, `namd`/`lbm` are floating-point dense with high ILP,
//! `gcc`/`perlbench` have large instruction footprints, `xz` carries long
//! integer dependence chains, and so on.

use crate::generator::{BranchProfile, MemoryProfile, OpMix, WorkloadSpec};
use archx_sim::isa::Instruction;
use serde::Serialize;
use std::fmt;
use std::sync::Arc;

/// Identifier of a named workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct WorkloadId(pub &'static str);

impl fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

/// A named workload: a specification plus its identity and suite weight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Workload {
    /// Display name, mirroring the SPEC workload it imitates.
    pub id: WorkloadId,
    /// Generator specification.
    pub spec: WorkloadSpec,
    /// Weight in multi-workload aggregation (paper Eq. 2 `w_i`).
    pub weight: f64,
}

impl Workload {
    /// Creates a workload with unit weight.
    pub fn new(name: &'static str, spec: WorkloadSpec) -> Self {
        Workload {
            id: WorkloadId(name),
            spec,
            weight: 1.0,
        }
    }

    /// Synthesises a trace of `n` instructions; seed is derived from the
    /// workload's name so different workloads differ even at equal seeds.
    ///
    /// The trace is handed out as an immutable `Arc<[Instruction]>` so
    /// callers (and the [`crate::store::TraceStore`]) can share it
    /// zero-copy; slice it (`&trace[..n]`) for shorter windows — the
    /// generator emits a prefix-stable stream, so `generate(n)` equals the
    /// first `n` instructions of `generate(2n)`.
    pub fn generate(&self, n: usize, seed: u64) -> Arc<[Instruction]> {
        let name_hash = self.id.0.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
        });
        self.spec.generate(n, seed ^ name_hash).into()
    }
}

fn wl(name: &'static str, spec: WorkloadSpec) -> Workload {
    debug_assert!(spec.validate().is_ok(), "workload {name} invalid");
    Workload::new(name, spec)
}

fn mix(load: f64, store: f64, branch: f64, fp: f64, fp_mult: f64, int_mult: f64) -> OpMix {
    OpMix {
        load,
        store,
        branch,
        call_ret: 0.01,
        fp_alu: fp,
        fp_mult,
        fp_div: if fp > 0.0 { 0.005 } else { 0.0 },
        int_mult,
        int_div: 0.003,
    }
}

fn spec_of(m: OpMix, dep: f64, br: BranchProfile, mem: MemoryProfile, code: u32) -> WorkloadSpec {
    WorkloadSpec {
        mix: m,
        mean_dep_distance: dep,
        branches: br,
        memory: mem,
        code_instrs: code,
    }
}

fn mem(footprint: u64, streaming: f64, stride: u64) -> MemoryProfile {
    mem_hot(
        footprint,
        streaming,
        stride,
        0.92,
        (16 * KB).min(footprint / 2).max(4 * KB),
    )
}

fn mem_hot(
    footprint: u64,
    streaming: f64,
    stride: u64,
    hot_fraction: f64,
    hot_bytes: u64,
) -> MemoryProfile {
    MemoryProfile {
        footprint_bytes: footprint,
        streaming_fraction: streaming,
        stride,
        hot_fraction,
        hot_bytes: hot_bytes.min(footprint),
    }
}

const KB: u64 = 1 << 10;
const MB: u64 = 1 << 20;

/// The 12-workload SPEC CPU2006-like suite with uniform weights.
pub fn spec06_suite() -> Vec<Workload> {
    let mut v = vec![
        // Integer compression: moderate memory, fairly predictable.
        wl(
            "401.bzip2",
            spec_of(
                mix(0.26, 0.09, 0.14, 0.0, 0.0, 0.01),
                4.0,
                BranchProfile {
                    biased_fraction: 0.8,
                    bias: 0.95,
                    patterned_fraction: 0.15,
                    pattern_period: 3,
                },
                mem(8 * MB, 0.55, 8),
                3000,
            ),
        ),
        // Compiler: big code footprint, branchy.
        wl(
            "403.gcc",
            spec_of(
                mix(0.25, 0.13, 0.20, 0.0, 0.0, 0.005),
                5.0,
                BranchProfile {
                    biased_fraction: 0.7,
                    bias: 0.94,
                    patterned_fraction: 0.2,
                    pattern_period: 4,
                },
                mem(24 * MB, 0.3, 32),
                16000,
            ),
        ),
        // Pointer-chasing graph optimiser: memory bound, low ILP.
        wl(
            "429.mcf",
            spec_of(
                mix(0.32, 0.08, 0.17, 0.0, 0.0, 0.0),
                2.2,
                BranchProfile {
                    biased_fraction: 0.65,
                    bias: 0.93,
                    patterned_fraction: 0.1,
                    pattern_period: 2,
                },
                mem_hot(96 * MB, 0.05, 64, 0.35, 256 * KB),
                1500,
            ),
        ),
        // Molecular dynamics: FP dense, very high ILP, cache resident.
        wl(
            "444.namd",
            spec_of(
                mix(0.23, 0.07, 0.05, 0.22, 0.18, 0.0),
                14.0,
                BranchProfile::predictable(),
                mem(512 * KB, 0.85, 8),
                2500,
            ),
        ),
        // FP PDE solver with heavy memory traffic.
        wl(
            "447.dealII",
            spec_of(
                mix(0.30, 0.10, 0.08, 0.18, 0.12, 0.0),
                8.0,
                BranchProfile::predictable(),
                mem(16 * MB, 0.5, 24),
                6000,
            ),
        ),
        // Protein search: integer, extremely high ILP, port pressure.
        wl(
            "456.hmmer",
            spec_of(
                mix(0.34, 0.12, 0.06, 0.0, 0.0, 0.02),
                18.0,
                BranchProfile::predictable(),
                mem(256 * KB, 0.9, 8),
                1200,
            ),
        ),
        // Chess: branch-hostile integer code.
        wl(
            "458.sjeng",
            spec_of(
                mix(0.22, 0.09, 0.19, 0.0, 0.0, 0.01),
                4.5,
                BranchProfile::hostile(),
                mem(2 * MB, 0.3, 8),
                4000,
            ),
        ),
        // Quantum simulation: streaming memory, simple loops.
        wl(
            "462.libquantum",
            spec_of(
                mix(0.28, 0.11, 0.10, 0.05, 0.03, 0.02),
                10.0,
                BranchProfile::predictable(),
                mem(48 * MB, 0.95, 16),
                600,
            ),
        ),
        // Video encoder: integer, high ILP, moderate footprint.
        wl(
            "464.h264ref",
            spec_of(
                mix(0.30, 0.13, 0.09, 0.02, 0.01, 0.04),
                12.0,
                BranchProfile::predictable(),
                mem(4 * MB, 0.7, 8),
                5000,
            ),
        ),
        // LP solver: FP with irregular sparse accesses.
        wl(
            "450.soplex",
            spec_of(
                mix(0.31, 0.08, 0.12, 0.14, 0.10, 0.0),
                6.0,
                BranchProfile {
                    biased_fraction: 0.75,
                    bias: 0.95,
                    patterned_fraction: 0.1,
                    pattern_period: 3,
                },
                mem_hot(32 * MB, 0.25, 32, 0.7, 256 * KB),
                3500,
            ),
        ),
        // Ray tracer: FP, branchy but predictable, cache friendly.
        wl(
            "453.povray",
            spec_of(
                mix(0.24, 0.09, 0.14, 0.18, 0.12, 0.0),
                7.0,
                BranchProfile::predictable(),
                mem(MB, 0.6, 8),
                7000,
            ),
        ),
        // Lattice-Boltzmann: FP streaming, store heavy.
        wl(
            "470.lbm",
            spec_of(
                mix(0.26, 0.17, 0.03, 0.20, 0.14, 0.0),
                16.0,
                BranchProfile::predictable(),
                mem(64 * MB, 0.97, 64),
                500,
            ),
        ),
    ];
    let w = 1.0 / v.len() as f64;
    for x in &mut v {
        x.weight = w;
    }
    v
}

/// The 14-workload SPEC CPU2017-like suite with uniform weights.
pub fn spec17_suite() -> Vec<Workload> {
    let mut v = vec![
        wl(
            "600.perlbench_s",
            spec_of(
                mix(0.27, 0.14, 0.18, 0.0, 0.0, 0.005),
                4.5,
                BranchProfile {
                    biased_fraction: 0.72,
                    bias: 0.94,
                    patterned_fraction: 0.15,
                    pattern_period: 4,
                },
                mem(16 * MB, 0.35, 16),
                12000,
            ),
        ),
        wl(
            "602.gcc_s",
            spec_of(
                mix(0.25, 0.13, 0.20, 0.0, 0.0, 0.005),
                5.0,
                BranchProfile {
                    biased_fraction: 0.7,
                    bias: 0.94,
                    patterned_fraction: 0.2,
                    pattern_period: 4,
                },
                mem(28 * MB, 0.3, 32),
                16000,
            ),
        ),
        wl(
            "605.mcf_s",
            spec_of(
                mix(0.33, 0.08, 0.16, 0.0, 0.0, 0.0),
                2.2,
                BranchProfile {
                    biased_fraction: 0.65,
                    bias: 0.93,
                    patterned_fraction: 0.1,
                    pattern_period: 2,
                },
                mem_hot(128 * MB, 0.05, 64, 0.35, 256 * KB),
                1500,
            ),
        ),
        // Discrete-event simulator: branchy with poor locality.
        wl(
            "620.omnetpp_s",
            spec_of(
                mix(0.29, 0.12, 0.17, 0.0, 0.0, 0.0),
                3.5,
                BranchProfile::hostile(),
                mem_hot(48 * MB, 0.15, 32, 0.55, 512 * KB),
                9000,
            ),
        ),
        // XML transformer: integer with moderate everything.
        wl(
            "623.xalancbmk_s",
            spec_of(
                mix(0.30, 0.10, 0.16, 0.0, 0.0, 0.0),
                5.5,
                BranchProfile::predictable(),
                mem(12 * MB, 0.4, 8),
                10000,
            ),
        ),
        // Video encoder: high ILP integer, rename pressure.
        wl(
            "625.x264_s",
            spec_of(
                mix(0.31, 0.14, 0.07, 0.02, 0.01, 0.05),
                15.0,
                BranchProfile::predictable(),
                mem(6 * MB, 0.75, 8),
                4500,
            ),
        ),
        // Chess (deep search): branch hostile.
        wl(
            "631.deepsjeng_s",
            spec_of(
                mix(0.23, 0.10, 0.19, 0.0, 0.0, 0.01),
                4.0,
                BranchProfile::hostile(),
                mem(4 * MB, 0.3, 8),
                4000,
            ),
        ),
        // Go AI: branchy, moderate memory.
        wl(
            "641.leela_s",
            spec_of(
                mix(0.25, 0.09, 0.18, 0.02, 0.01, 0.01),
                5.0,
                BranchProfile::hostile(),
                mem(2 * MB, 0.4, 8),
                5000,
            ),
        ),
        // Generated Fortran: very predictable, compute dense.
        wl(
            "648.exchange2_s",
            spec_of(
                mix(0.18, 0.08, 0.12, 0.0, 0.0, 0.04),
                9.0,
                BranchProfile::predictable(),
                mem(256 * KB, 0.8, 8),
                8000,
            ),
        ),
        // LZMA compressor: long integer dependence chains → IntRF pressure.
        wl(
            "657.xz_s",
            spec_of(
                mix(0.28, 0.11, 0.14, 0.0, 0.0, 0.02),
                2.5,
                BranchProfile {
                    biased_fraction: 0.65,
                    bias: 0.93,
                    patterned_fraction: 0.2,
                    pattern_period: 3,
                },
                mem(24 * MB, 0.45, 8),
                2500,
            ),
        ),
        // Numerical relativity: FP dense with large stencils.
        wl(
            "607.cactuBSSN_s",
            spec_of(
                mix(0.30, 0.12, 0.04, 0.22, 0.16, 0.0),
                13.0,
                BranchProfile::predictable(),
                mem(40 * MB, 0.85, 64),
                3500,
            ),
        ),
        // Lattice-Boltzmann: FP streaming, store heavy.
        wl(
            "619.lbm_s",
            spec_of(
                mix(0.26, 0.17, 0.03, 0.20, 0.14, 0.0),
                16.0,
                BranchProfile::predictable(),
                mem(96 * MB, 0.97, 64),
                500,
            ),
        ),
        // Image manipulation: FP with integer address math.
        wl(
            "638.imagick_s",
            spec_of(
                mix(0.27, 0.10, 0.08, 0.18, 0.14, 0.01),
                11.0,
                BranchProfile::predictable(),
                mem(8 * MB, 0.7, 8),
                3000,
            ),
        ),
        // Molecular modelling: FP dense, cache resident.
        wl(
            "644.nab_s",
            spec_of(
                mix(0.25, 0.08, 0.06, 0.24, 0.16, 0.0),
                12.0,
                BranchProfile::predictable(),
                mem(MB, 0.8, 8),
                2000,
            ),
        ),
    ];
    let w = 1.0 / v.len() as f64;
    for x in &mut v {
        x.weight = w;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use archx_sim::{MicroArch, OooCore};

    #[test]
    fn suites_have_paper_sizes_and_uniform_weights() {
        let s06 = spec06_suite();
        let s17 = spec17_suite();
        assert_eq!(s06.len(), 12);
        assert_eq!(s17.len(), 14);
        for s in s06.iter().chain(s17.iter()) {
            assert!((s.weight - 1.0 / 12.0).abs() < 1e-9 || (s.weight - 1.0 / 14.0).abs() < 1e-9);
            assert!(s.spec.validate().is_ok(), "{} invalid", s.id);
        }
        let sum06: f64 = s06.iter().map(|w| w.weight).sum();
        assert!((sum06 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = spec06_suite()
            .iter()
            .chain(spec17_suite().iter())
            .map(|w| w.id.0)
            .collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn workloads_differ_from_each_other() {
        let s = spec06_suite();
        let a = s[0].generate(500, 1);
        let b = s[1].generate(500, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn mcf_like_misses_more_than_hmmer_like() {
        let s06 = spec06_suite();
        let mcf = s06.iter().find(|w| w.id.0.contains("mcf")).unwrap();
        let hmmer = s06.iter().find(|w| w.id.0.contains("hmmer")).unwrap();
        let core = OooCore::new(MicroArch::baseline());
        let rm = core.run(&mcf.generate(20_000, 1)).expect("simulates").stats;
        let rh = core
            .run(&hmmer.generate(20_000, 1))
            .expect("simulates")
            .stats;
        assert!(
            rm.dcache_miss_rate() > rh.dcache_miss_rate() + 0.05,
            "mcf {} vs hmmer {}",
            rm.dcache_miss_rate(),
            rh.dcache_miss_rate()
        );
        assert!(rm.ipc() < rh.ipc(), "memory-bound must be slower");
    }

    #[test]
    fn branch_hostile_mispredicts_more() {
        let s06 = spec06_suite();
        let sjeng = s06.iter().find(|w| w.id.0.contains("sjeng")).unwrap();
        let namd = s06.iter().find(|w| w.id.0.contains("namd")).unwrap();
        let core = OooCore::new(MicroArch::baseline());
        let rs = core
            .run(&sjeng.generate(20_000, 1))
            .expect("simulates")
            .stats;
        let rn = core
            .run(&namd.generate(20_000, 1))
            .expect("simulates")
            .stats;
        assert!(
            rs.mispredict_rate() > rn.mispredict_rate(),
            "sjeng {} vs namd {}",
            rs.mispredict_rate(),
            rn.mispredict_rate()
        );
    }
}
