//! Miniature SimPoint: basic-block-vector clustering for representative
//! sampling.
//!
//! The paper evaluates on SPEC *Simpoints* — representative intervals
//! chosen by clustering basic-block vectors (Sherwood et al.). This module
//! implements the same pipeline over our traces: split into fixed-size
//! intervals, build a per-interval frequency vector over static code
//! blocks, k-means++ the vectors, and return one representative interval
//! per cluster weighted by cluster size. `estimate` then reconstitutes a
//! whole-program metric from representative measurements — the validity
//! check behind simulating only samples.

use archx_sim::isa::Instruction;
use archx_sim::trace_gen::XorShift;
use serde::Serialize;

/// One chosen representative interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Simpoint {
    /// First instruction of the interval.
    pub start: usize,
    /// Interval length in instructions.
    pub len: usize,
    /// Fraction of all intervals this representative stands for.
    pub weight: f64,
}

/// Per-interval basic-block vector: frequencies over `pc >> 8` buckets,
/// hashed into a fixed dimensionality and L1-normalised.
fn bbv(interval: &[Instruction], dims: usize) -> Vec<f64> {
    let mut v = vec![0.0; dims];
    for instr in interval {
        let bucket = ((instr.pc >> 8).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % dims;
        v[bucket] += 1.0;
    }
    let total: f64 = v.iter().sum();
    if total > 0.0 {
        for x in &mut v {
            *x /= total;
        }
    }
    v
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// k-means++ over interval BBVs; returns the cluster index per interval.
fn kmeans(vectors: &[Vec<f64>], k: usize, seed: u64) -> Vec<usize> {
    let n = vectors.len();
    let k = k.min(n).max(1);
    let mut rng = XorShift::new(seed ^ 0x5157_ABCD);

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = vec![vectors[rng.below(n as u64) as usize].clone()];
    while centroids.len() < k {
        let d2: Vec<f64> = vectors
            .iter()
            .map(|v| {
                centroids
                    .iter()
                    .map(|c| sq_dist(v, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        if total <= 1e-18 {
            break; // all points identical
        }
        let mut pick = rng.unit() * total;
        let mut chosen = n - 1;
        for (i, &d) in d2.iter().enumerate() {
            if pick <= d {
                chosen = i;
                break;
            }
            pick -= d;
        }
        centroids.push(vectors[chosen].clone());
    }

    let k = centroids.len();
    let mut assign = vec![0usize; n];
    for _ in 0..25 {
        let mut changed = false;
        for (i, v) in vectors.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    sq_dist(v, &centroids[a])
                        .partial_cmp(&sq_dist(v, &centroids[b]))
                        .expect("finite distances")
                })
                .expect("k >= 1");
            if assign[i] != best {
                assign[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        let dims = vectors[0].len();
        let mut sums = vec![vec![0.0; dims]; k];
        let mut counts = vec![0usize; k];
        for (i, v) in vectors.iter().enumerate() {
            counts[assign[i]] += 1;
            for (s, x) in sums[assign[i]].iter_mut().zip(v) {
                *s += x;
            }
        }
        for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if *count > 0 {
                *c = sum.iter().map(|s| s / *count as f64).collect();
            }
        }
    }
    assign
}

/// Picks up to `k` representative intervals of `interval_len` instructions.
///
/// # Panics
///
/// Panics when the trace is shorter than one interval or `k` is zero.
pub fn pick_simpoints(
    trace: &[Instruction],
    interval_len: usize,
    k: usize,
    seed: u64,
) -> Vec<Simpoint> {
    assert!(
        interval_len > 0 && trace.len() >= interval_len,
        "trace shorter than one interval"
    );
    assert!(k > 0, "need at least one simpoint");
    let n_intervals = trace.len() / interval_len;
    let dims = 64;
    let vectors: Vec<Vec<f64>> = (0..n_intervals)
        .map(|i| bbv(&trace[i * interval_len..(i + 1) * interval_len], dims))
        .collect();
    let assign = kmeans(&vectors, k, seed);
    let k_eff = assign.iter().copied().max().map_or(1, |m| m + 1);

    // Representative per cluster: the interval closest to the cluster mean.
    let mut out = Vec::new();
    for cluster in 0..k_eff {
        let members: Vec<usize> = (0..n_intervals).filter(|&i| assign[i] == cluster).collect();
        if members.is_empty() {
            continue;
        }
        let dims = vectors[0].len();
        let mut mean = vec![0.0; dims];
        for &m in &members {
            for (s, x) in mean.iter_mut().zip(&vectors[m]) {
                *s += x / members.len() as f64;
            }
        }
        let rep = *members
            .iter()
            .min_by(|&&a, &&b| {
                sq_dist(&vectors[a], &mean)
                    .partial_cmp(&sq_dist(&vectors[b], &mean))
                    .expect("finite distances")
            })
            .expect("non-empty cluster");
        out.push(Simpoint {
            start: rep * interval_len,
            len: interval_len,
            weight: members.len() as f64 / n_intervals as f64,
        });
    }
    out.sort_by_key(|s| s.start);
    out
}

/// Weighted reconstruction of a whole-trace metric from per-simpoint
/// measurements: `estimate = Σ wᵢ · measure(intervalᵢ)`.
pub fn estimate<F: FnMut(&[Instruction]) -> f64>(
    trace: &[Instruction],
    simpoints: &[Simpoint],
    mut measure: F,
) -> f64 {
    simpoints
        .iter()
        .map(|sp| sp.weight * measure(&trace[sp.start..sp.start + sp.len]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{MemoryProfile, OpMix, WorkloadSpec};
    use crate::phases::{Phase, PhasedWorkload};

    fn two_phase_trace(n: usize) -> Vec<Instruction> {
        let fp = WorkloadSpec {
            mix: OpMix::fp_default(),
            ..WorkloadSpec::balanced()
        };
        let mem = WorkloadSpec {
            memory: MemoryProfile::hostile(),
            mean_dep_distance: 2.0,
            ..WorkloadSpec::balanced()
        };
        PhasedWorkload::new(vec![
            Phase {
                spec: fp,
                instrs: 2_000,
            },
            Phase {
                spec: mem,
                instrs: 2_000,
            },
        ])
        .generate(n, 5)
    }

    #[test]
    fn recovers_the_two_phases() {
        let trace = two_phase_trace(16_000);
        let sps = pick_simpoints(&trace, 1_000, 2, 1);
        assert_eq!(sps.len(), 2, "two clusters expected");
        // Representatives land in different phases (phase period = 2000,
        // so interval index parity identifies the phase).
        let phase_of = |s: &Simpoint| (s.start / 2_000) % 2;
        assert_ne!(phase_of(&sps[0]), phase_of(&sps[1]));
        // Equal-length phases get balanced-ish weights (the CFG walk gives
        // intervals of the same phase some variance of their own).
        for sp in &sps {
            assert!(
                (0.15..=0.85).contains(&sp.weight),
                "weight {} degenerate",
                sp.weight
            );
        }
        let total: f64 = sps.iter().map(|s| s.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_estimate_tracks_full_measurement() {
        // Measure a simple trace statistic (fp fraction) through simpoints
        // and compare to the exact whole-trace value.
        let trace = two_phase_trace(24_000);
        let fp_frac = |instrs: &[Instruction]| {
            instrs
                .iter()
                .filter(|i| {
                    matches!(
                        i.op,
                        archx_sim::isa::OpClass::FpAlu
                            | archx_sim::isa::OpClass::FpMult
                            | archx_sim::isa::OpClass::FpDiv
                    )
                })
                .count() as f64
                / instrs.len() as f64
        };
        let exact = fp_frac(&trace);
        let sps = pick_simpoints(&trace, 1_000, 4, 2);
        let est = estimate(&trace, &sps, fp_frac);
        assert!(
            (est - exact).abs() < 0.05,
            "simpoint estimate {est:.3} should track exact {exact:.3}"
        );
    }

    #[test]
    fn single_cluster_for_homogeneous_trace() {
        let spec = WorkloadSpec::balanced();
        let trace = spec.generate(8_000, 3);
        let sps = pick_simpoints(&trace, 1_000, 3, 1);
        // Clustering may still split, but weights must sum to one and
        // representatives must be valid intervals.
        let total: f64 = sps.iter().map(|s| s.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for sp in &sps {
            assert!(sp.start + sp.len <= trace.len());
        }
    }

    #[test]
    #[should_panic(expected = "shorter than one interval")]
    fn short_trace_panics() {
        let spec = WorkloadSpec::balanced();
        let trace = spec.generate(100, 1);
        let _ = pick_simpoints(&trace, 1_000, 2, 1);
    }
}
