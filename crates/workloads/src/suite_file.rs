//! User-defined workload suites from a plain-text description.
//!
//! The bundled SPEC-like suites are hard-coded; downstream users will want
//! their own workload characterisations. This module parses a small
//! INI-style format (no external dependencies) into a `Vec<Workload>`:
//!
//! ```text
//! # comment
//! [my_kernel]
//! weight = 2.0
//! load = 0.3
//! store = 0.1
//! branch = 0.12
//! fp_alu = 0.05
//! dep_distance = 6.5
//! biased_fraction = 0.8
//! bias = 0.95
//! patterned_fraction = 0.1
//! pattern_period = 4
//! footprint_kb = 4096
//! streaming = 0.5
//! stride = 8
//! hot_fraction = 0.9
//! hot_kb = 32
//! code_instrs = 3000
//!
//! [another]
//! ...
//! ```
//!
//! Unspecified keys keep [`WorkloadSpec::balanced`] defaults; weights are
//! normalised to sum to one across the suite.

use crate::generator::WorkloadSpec;
use crate::spec::{Workload, WorkloadId};

/// Errors from suite-file parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum SuiteFileError {
    /// A key/value outside any `[section]`.
    KeyOutsideSection {
        /// 1-based line number.
        line: usize,
    },
    /// A malformed line.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Description.
        reason: String,
    },
    /// A workload failed validation after assembly.
    InvalidWorkload {
        /// Section name.
        name: String,
        /// Validation message.
        reason: String,
    },
    /// The file defined no workloads.
    Empty,
}

impl std::fmt::Display for SuiteFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuiteFileError::KeyOutsideSection { line } => {
                write!(f, "line {line}: key outside any [section]")
            }
            SuiteFileError::Malformed { line, reason } => write!(f, "line {line}: {reason}"),
            SuiteFileError::InvalidWorkload { name, reason } => {
                write!(f, "workload [{name}]: {reason}")
            }
            SuiteFileError::Empty => write!(f, "no workloads defined"),
        }
    }
}

impl std::error::Error for SuiteFileError {}

/// Parses a suite description (see the module docs for the format).
///
/// Workload names are leaked into `'static` strings — suite files are
/// loaded once per process, matching [`WorkloadId`]'s design.
///
/// # Errors
///
/// Returns [`SuiteFileError`] on malformed input or invalid workloads.
pub fn parse_suite(text: &str) -> Result<Vec<Workload>, SuiteFileError> {
    struct Building {
        name: String,
        spec: WorkloadSpec,
        weight: f64,
    }
    let mut out: Vec<Building> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        let lno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[') {
            let name = name
                .strip_suffix(']')
                .ok_or(SuiteFileError::Malformed {
                    line: lno,
                    reason: "unterminated [section]".into(),
                })?
                .trim();
            if name.is_empty() {
                return Err(SuiteFileError::Malformed {
                    line: lno,
                    reason: "empty section name".into(),
                });
            }
            out.push(Building {
                name: name.to_string(),
                spec: WorkloadSpec::balanced(),
                weight: 1.0,
            });
            continue;
        }
        let (key, value) = line.split_once('=').ok_or(SuiteFileError::Malformed {
            line: lno,
            reason: "expected key = value".into(),
        })?;
        let current = out
            .last_mut()
            .ok_or(SuiteFileError::KeyOutsideSection { line: lno })?;
        let key = key.trim();
        let value = value.trim();
        let fval = || -> Result<f64, SuiteFileError> {
            value.parse().map_err(|_| SuiteFileError::Malformed {
                line: lno,
                reason: format!("`{key}` needs a number, got `{value}`"),
            })
        };
        match key {
            "weight" => current.weight = fval()?,
            "load" => current.spec.mix.load = fval()?,
            "store" => current.spec.mix.store = fval()?,
            "branch" => current.spec.mix.branch = fval()?,
            "call_ret" => current.spec.mix.call_ret = fval()?,
            "fp_alu" => current.spec.mix.fp_alu = fval()?,
            "fp_mult" => current.spec.mix.fp_mult = fval()?,
            "fp_div" => current.spec.mix.fp_div = fval()?,
            "int_mult" => current.spec.mix.int_mult = fval()?,
            "int_div" => current.spec.mix.int_div = fval()?,
            "dep_distance" => current.spec.mean_dep_distance = fval()?,
            "biased_fraction" => current.spec.branches.biased_fraction = fval()?,
            "bias" => current.spec.branches.bias = fval()?,
            "patterned_fraction" => current.spec.branches.patterned_fraction = fval()?,
            "pattern_period" => current.spec.branches.pattern_period = fval()? as u32,
            "footprint_kb" => current.spec.memory.footprint_bytes = (fval()? * 1024.0) as u64,
            "streaming" => current.spec.memory.streaming_fraction = fval()?,
            "stride" => current.spec.memory.stride = fval()? as u64,
            "hot_fraction" => current.spec.memory.hot_fraction = fval()?,
            "hot_kb" => current.spec.memory.hot_bytes = (fval()? * 1024.0) as u64,
            "code_instrs" => current.spec.code_instrs = fval()? as u32,
            unknown => {
                return Err(SuiteFileError::Malformed {
                    line: lno,
                    reason: format!("unknown key `{unknown}`"),
                })
            }
        }
    }

    if out.is_empty() {
        return Err(SuiteFileError::Empty);
    }
    let total_weight: f64 = out.iter().map(|b| b.weight).sum();
    let mut suite = Vec::with_capacity(out.len());
    for b in out {
        b.spec
            .validate()
            .map_err(|reason| SuiteFileError::InvalidWorkload {
                name: b.name.clone(),
                reason,
            })?;
        let name: &'static str = Box::leak(b.name.into_boxed_str());
        suite.push(Workload {
            id: WorkloadId(name),
            spec: b.spec,
            weight: b.weight / total_weight,
        });
    }
    Ok(suite)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# my suite
[kernel_a]
weight = 3
load = 0.30
fp_alu = 0.10
footprint_kb = 4096
streaming = 0.6

[kernel_b]  # trailing comment
weight = 1
branch = 0.20
dep_distance = 2.5
code_instrs = 6000
";

    #[test]
    fn parses_and_normalises_weights() {
        let suite = parse_suite(SAMPLE).expect("parses");
        assert_eq!(suite.len(), 2);
        assert_eq!(suite[0].id.0, "kernel_a");
        assert!((suite[0].weight - 0.75).abs() < 1e-12);
        assert!((suite[1].weight - 0.25).abs() < 1e-12);
        assert!((suite[0].spec.mix.load - 0.30).abs() < 1e-12);
        assert_eq!(suite[0].spec.memory.footprint_bytes, 4096 * 1024);
        assert_eq!(suite[1].spec.code_instrs, 6000);
        // Unset keys keep defaults.
        assert_eq!(suite[1].spec.memory.stride, 8);
    }

    #[test]
    fn parsed_workloads_generate() {
        let suite = parse_suite(SAMPLE).expect("parses");
        let t = suite[0].generate(500, 1);
        assert_eq!(t.len(), 500);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(parse_suite(""), Err(SuiteFileError::Empty)));
        assert!(matches!(
            parse_suite("load = 0.5\n"),
            Err(SuiteFileError::KeyOutsideSection { line: 1 })
        ));
        assert!(matches!(
            parse_suite("[a]\nzzz = 1\n"),
            Err(SuiteFileError::Malformed { line: 2, .. })
        ));
        assert!(matches!(
            parse_suite("[a\n"),
            Err(SuiteFileError::Malformed { .. })
        ));
        assert!(matches!(
            parse_suite("[a]\nload = x\n"),
            Err(SuiteFileError::Malformed { .. })
        ));
    }

    #[test]
    fn rejects_invalid_workloads() {
        let text = "[bad]\nload = 0.9\nstore = 0.9\n";
        assert!(matches!(
            parse_suite(text),
            Err(SuiteFileError::InvalidWorkload { .. })
        ));
    }
}
