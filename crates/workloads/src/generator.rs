//! The parameterised trace synthesiser.

use archx_sim::isa::{Instruction, OpClass, Reg, RegClass};
use archx_sim::trace_gen::XorShift;
use serde::{Deserialize, Serialize};

/// Instruction-class mix as fractions of the dynamic stream.
///
/// The fractions must sum to at most 1; the remainder becomes simple
/// integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpMix {
    /// Loads.
    pub load: f64,
    /// Stores.
    pub store: f64,
    /// Conditional branches.
    pub branch: f64,
    /// Call/return pairs (counted together).
    pub call_ret: f64,
    /// Floating-point adds.
    pub fp_alu: f64,
    /// Floating-point multiplies.
    pub fp_mult: f64,
    /// Floating-point divides.
    pub fp_div: f64,
    /// Integer multiplies.
    pub int_mult: f64,
    /// Integer divides.
    pub int_div: f64,
}

impl OpMix {
    /// A plain integer mix with light memory traffic.
    pub fn int_default() -> Self {
        OpMix {
            load: 0.20,
            store: 0.10,
            branch: 0.15,
            call_ret: 0.01,
            fp_alu: 0.0,
            fp_mult: 0.0,
            fp_div: 0.0,
            int_mult: 0.02,
            int_div: 0.005,
        }
    }

    /// A floating-point-heavy mix.
    pub fn fp_default() -> Self {
        OpMix {
            load: 0.25,
            store: 0.10,
            branch: 0.08,
            call_ret: 0.01,
            fp_alu: 0.20,
            fp_mult: 0.12,
            fp_div: 0.01,
            int_mult: 0.01,
            int_div: 0.0,
        }
    }

    fn total(&self) -> f64 {
        self.load
            + self.store
            + self.branch
            + self.call_ret
            + self.fp_alu
            + self.fp_mult
            + self.fp_div
            + self.int_mult
            + self.int_div
    }

    /// Whether the fractions are all non-negative and sum to at most 1.
    pub fn is_valid(&self) -> bool {
        let parts = [
            self.load,
            self.store,
            self.branch,
            self.call_ret,
            self.fp_alu,
            self.fp_mult,
            self.fp_div,
            self.int_mult,
            self.int_div,
        ];
        parts.iter().all(|&p| p >= 0.0) && self.total() <= 1.0 + 1e-9
    }
}

/// How predictable the workload's conditional branches are.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BranchProfile {
    /// Fraction of static branches that are strongly biased.
    pub biased_fraction: f64,
    /// Taken probability of a biased branch.
    pub bias: f64,
    /// Fraction of static branches following a short repeating pattern.
    pub patterned_fraction: f64,
    /// Pattern period (e.g. 2 = alternate) for patterned branches.
    pub pattern_period: u32,
    // Remaining branches are random coin flips (hard to predict).
}

impl BranchProfile {
    /// Mostly well-predicted branches (a few percent mispredicted).
    pub fn predictable() -> Self {
        BranchProfile {
            biased_fraction: 0.90,
            bias: 0.97,
            patterned_fraction: 0.08,
            pattern_period: 4,
        }
    }

    /// Many data-dependent, hard-to-predict branches (~10% mispredicted).
    pub fn hostile() -> Self {
        BranchProfile {
            biased_fraction: 0.60,
            bias: 0.92,
            patterned_fraction: 0.25,
            pattern_period: 3,
        }
    }
}

/// Data-memory behaviour.
///
/// Non-streaming accesses follow a two-level working-set model: with
/// probability `hot_fraction` they fall uniformly in a hot region of
/// `hot_bytes` (temporal locality — real programs re-touch a small core of
/// their data constantly); otherwise they scatter over the full footprint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryProfile {
    /// Total data footprint in bytes.
    pub footprint_bytes: u64,
    /// Fraction of accesses that stream sequentially (cache friendly).
    pub streaming_fraction: f64,
    /// Stream stride in bytes.
    pub stride: u64,
    /// Probability a random access hits the hot working set.
    pub hot_fraction: f64,
    /// Hot working-set size in bytes.
    pub hot_bytes: u64,
}

impl MemoryProfile {
    /// Small, cache-resident working set.
    pub fn resident() -> Self {
        MemoryProfile {
            footprint_bytes: 16 << 10,
            streaming_fraction: 0.8,
            stride: 8,
            hot_fraction: 0.95,
            hot_bytes: 8 << 10,
        }
    }

    /// Large, cache-hostile working set.
    pub fn hostile() -> Self {
        MemoryProfile {
            footprint_bytes: 64 << 20,
            streaming_fraction: 0.1,
            stride: 64,
            hot_fraction: 0.3,
            hot_bytes: 256 << 10,
        }
    }
}

/// Full specification of a synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Instruction mix.
    pub mix: OpMix,
    /// Mean register dependency distance (geometric): small = serial code,
    /// large = high instruction-level parallelism.
    pub mean_dep_distance: f64,
    /// Branch behaviour.
    pub branches: BranchProfile,
    /// Memory behaviour.
    pub memory: MemoryProfile,
    /// Static code footprint in instructions (drives I-cache pressure).
    pub code_instrs: u32,
}

impl WorkloadSpec {
    /// A balanced default specification.
    pub fn balanced() -> Self {
        WorkloadSpec {
            mix: OpMix::int_default(),
            mean_dep_distance: 6.0,
            branches: BranchProfile::predictable(),
            memory: MemoryProfile::resident(),
            code_instrs: 2048,
        }
    }

    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.mix.is_valid() {
            return Err("op mix fractions must be non-negative and sum to <= 1".into());
        }
        if self.mean_dep_distance < 1.0 {
            return Err("mean dependency distance must be >= 1".into());
        }
        if self.code_instrs == 0 {
            return Err("code footprint must be positive".into());
        }
        if self.memory.footprint_bytes < 64 {
            return Err("memory footprint must be at least one cache line".into());
        }
        if !(0.0..=1.0).contains(&self.memory.streaming_fraction) {
            return Err("streaming fraction must be in [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.memory.hot_fraction) {
            return Err("hot fraction must be in [0, 1]".into());
        }
        if self.memory.hot_bytes == 0 || self.memory.hot_bytes > self.memory.footprint_bytes {
            return Err("hot set must be non-empty and within the footprint".into());
        }
        Ok(())
    }

    /// Synthesises a dynamic trace of `n` instructions.
    ///
    /// Deterministic in `(self, n, seed)`.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Instruction> {
        Synth::new(self, seed).generate(n)
    }
}

/// Static per-slot behaviour chosen once per code location.
#[derive(Debug, Clone, Copy)]
enum SlotKind {
    Op(OpClass),
    Branch(BranchKind),
    Call,
    Ret,
}

#[derive(Debug, Clone, Copy)]
enum BranchKind {
    Biased(bool, f64),
    Patterned(u32),
    Random,
}

struct Synth<'a> {
    spec: &'a WorkloadSpec,
    rng: XorShift,
    slots: Vec<SlotKind>,
    /// Per-slot visit counters (for patterned branches).
    visits: Vec<u64>,
    /// Streaming pointer for sequential accesses.
    stream_ptr: u64,
    /// Call stack of return addresses for call/ret pairing.
    call_stack: Vec<u64>,
    /// Recently written registers per class, most recent last.
    recent_int: Vec<u8>,
    recent_fp: Vec<u8>,
}

impl<'a> Synth<'a> {
    fn new(spec: &'a WorkloadSpec, seed: u64) -> Self {
        let mut rng = XorShift::new(seed ^ 0xA5A5_5A5A_1234_5678);
        let mix = &spec.mix;
        let mut slots = Vec::with_capacity(spec.code_instrs as usize);
        for _ in 0..spec.code_instrs {
            let u = rng.unit();
            let mut acc = 0.0;
            // Walks the mix's cumulative distribution: each call adds one
            // class's probability mass and tests whether `u` fell in it.
            let mut hits = |p: f64| {
                acc += p;
                u < acc
            };
            let kind = if hits(mix.load) {
                SlotKind::Op(OpClass::Load)
            } else if hits(mix.store) {
                SlotKind::Op(OpClass::Store)
            } else if hits(mix.branch) {
                let b = rng.unit();
                let br = &spec.branches;
                if b < br.biased_fraction {
                    SlotKind::Branch(BranchKind::Biased(rng.unit() < 0.75, br.bias))
                } else if b < br.biased_fraction + br.patterned_fraction {
                    SlotKind::Branch(BranchKind::Patterned(br.pattern_period.max(2)))
                } else {
                    SlotKind::Branch(BranchKind::Random)
                }
            } else if hits(mix.call_ret / 2.0) {
                SlotKind::Call
            } else if hits(mix.call_ret / 2.0) {
                SlotKind::Ret
            } else if hits(mix.fp_alu) {
                SlotKind::Op(OpClass::FpAlu)
            } else if hits(mix.fp_mult) {
                SlotKind::Op(OpClass::FpMult)
            } else if hits(mix.fp_div) {
                SlotKind::Op(OpClass::FpDiv)
            } else if hits(mix.int_mult) {
                SlotKind::Op(OpClass::IntMult)
            } else if hits(mix.int_div) {
                SlotKind::Op(OpClass::IntDiv)
            } else {
                SlotKind::Op(OpClass::IntAlu)
            };
            slots.push(kind);
        }
        Synth {
            spec,
            rng,
            visits: vec![0; slots.len()],
            slots,
            stream_ptr: 0x1_0000,
            call_stack: Vec::new(),
            recent_int: (2..30).collect(),
            recent_fp: (2..30).collect(),
        }
    }

    fn pc_of(&self, slot: usize) -> u64 {
        0x10_0000 + 4 * slot as u64
    }

    /// Picks a source register whose last writer is roughly
    /// `mean_dep_distance` instructions back (geometric distribution).
    fn pick_src(&mut self, class: RegClass) -> Reg {
        let mean = self.spec.mean_dep_distance;
        // Geometric sample: distance >= 1.
        let p = 1.0 / mean;
        let u = self.rng.unit().max(1e-12);
        let dist = (u.ln() / (1.0 - p).max(1e-12).ln()).ceil().max(1.0) as usize;
        let recent = match class {
            RegClass::Int => &self.recent_int,
            RegClass::Fp => &self.recent_fp,
        };
        let idx = recent.len().saturating_sub(dist.min(recent.len()));
        let r = recent[idx.min(recent.len() - 1)];
        match class {
            RegClass::Int => Reg::int(r),
            RegClass::Fp => Reg::fp(r),
        }
    }

    fn pick_dst(&mut self, class: RegClass) -> Reg {
        let r = (self.rng.below(28) + 2) as u8;
        let recent = match class {
            RegClass::Int => &mut self.recent_int,
            RegClass::Fp => &mut self.recent_fp,
        };
        if let Some(pos) = recent.iter().position(|&x| x == r) {
            recent.remove(pos);
        }
        recent.push(r);
        if recent.len() > 28 {
            recent.remove(0);
        }
        match class {
            RegClass::Int => Reg::int(r),
            RegClass::Fp => Reg::fp(r),
        }
    }

    fn next_addr(&mut self) -> u64 {
        let mem = &self.spec.memory;
        if self.rng.unit() < mem.streaming_fraction {
            self.stream_ptr = self
                .stream_ptr
                .wrapping_add(mem.stride)
                .min(0x1_0000 + mem.footprint_bytes);
            if self.stream_ptr >= 0x1_0000 + mem.footprint_bytes {
                self.stream_ptr = 0x1_0000;
            }
            self.stream_ptr
        } else {
            let u = self.rng.unit();
            if u < mem.hot_fraction {
                0x1_0000 + (self.rng.below(mem.hot_bytes.max(64)) & !7)
            } else if u < mem.hot_fraction + (1.0 - mem.hot_fraction) * 0.6 {
                // Warm, L2-resident tier: real programs keep a medium
                // working set between the hot core and the cold bulk.
                let warm = mem.footprint_bytes.clamp(64, 1536 << 10);
                0x1_0000 + (self.rng.below(warm) & !7)
            } else {
                0x1_0000 + (self.rng.below(mem.footprint_bytes.max(64)) & !7)
            }
        }
    }

    /// Walks the static code like a control-flow graph: fall through by
    /// default, and *follow* taken branches, calls and returns — so the
    /// trace's instruction-fetch stream has the loops and temporal code
    /// locality of real programs, and the I-cache pressure is governed by
    /// the live code working set rather than a pathological linear sweep.
    fn generate(mut self, n: usize) -> Vec<Instruction> {
        let mut out = Vec::with_capacity(n);
        let span = self.slots.len();
        let mut slot = 0usize;
        while out.len() < n {
            let pc = self.pc_of(slot);
            let kind = self.slots[slot];
            self.visits[slot] += 1;
            let visit = self.visits[slot];
            let mut next_slot = (slot + 1) % span;
            let instr = match kind {
                SlotKind::Op(op) => self.emit_op(pc, op),
                SlotKind::Branch(bk) => {
                    let taken = match bk {
                        BranchKind::Biased(dir, bias) => {
                            if self.rng.unit() < bias {
                                dir
                            } else {
                                !dir
                            }
                        }
                        BranchKind::Patterned(period) => visit.is_multiple_of(period as u64),
                        BranchKind::Random => self.rng.unit() < 0.5,
                    };
                    // Static target per slot: short backward edges are
                    // loops, forward edges skip ahead. Derived from the
                    // slot index so a location always jumps the same way.
                    let h = (slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let delta = 1 + (h % 24) as usize;
                    let target_slot = if h & 0x100 != 0 {
                        (slot + delta) % span
                    } else {
                        (slot + span - delta.min(slot.max(1))) % span
                    };
                    if taken {
                        next_slot = target_slot;
                    }
                    let src = self.pick_src(RegClass::Int);
                    Instruction::branch(pc, src, taken, self.pc_of(target_slot))
                }
                SlotKind::Call if self.call_stack.len() < 48 && visit % 97 != 96 => {
                    // Bounded call depth; a rare forced fall-through breaks
                    // degenerate call/return orbits that would otherwise
                    // repeat forever without touching a conditional branch.
                    self.call_stack.push(((slot + 1) % span) as u64);
                    // Static callee per site.
                    let h = (slot as u64).wrapping_mul(0xD134_2543_DE82_EF95);
                    let target_slot = (h % span as u64) as usize;
                    next_slot = target_slot;
                    Instruction {
                        pc,
                        op: OpClass::Call,
                        srcs: [None, None],
                        dst: Some(Reg::int(1)),
                        mem_addr: 0,
                        taken: true,
                        target: self.pc_of(target_slot),
                    }
                }
                SlotKind::Call => self.emit_op(pc, OpClass::IntAlu),
                SlotKind::Ret => {
                    if let Some(ret_slot) = self.call_stack.pop() {
                        let ret_slot = ret_slot as usize % span;
                        next_slot = ret_slot;
                        Instruction {
                            pc,
                            op: OpClass::Ret,
                            srcs: [Some(Reg::int(1)), None],
                            dst: None,
                            mem_addr: 0,
                            taken: true,
                            target: self.pc_of(ret_slot),
                        }
                    } else {
                        // No matching call in this window: plain op.
                        self.emit_op(pc, OpClass::IntAlu)
                    }
                }
            };
            out.push(instr);
            slot = next_slot;
        }
        out
    }

    fn emit_op(&mut self, pc: u64, op: OpClass) -> Instruction {
        match op {
            OpClass::Load => {
                let addr = self.next_addr();
                let base = self.pick_src(RegClass::Int);
                let dst = self.pick_dst(RegClass::Int);
                Instruction::load(pc, addr, base, dst)
            }
            OpClass::Store => {
                let addr = self.next_addr();
                let base = self.pick_src(RegClass::Int);
                let data = self.pick_src(RegClass::Int);
                Instruction::store(pc, addr, base, data)
            }
            OpClass::FpAlu | OpClass::FpMult | OpClass::FpDiv => {
                let a = self.pick_src(RegClass::Fp);
                let b = self.pick_src(RegClass::Fp);
                let d = self.pick_dst(RegClass::Fp);
                Instruction::op(pc, op, [Some(a), Some(b)], Some(d))
            }
            _ => {
                let a = self.pick_src(RegClass::Int);
                let b = self.pick_src(RegClass::Int);
                let d = self.pick_dst(RegClass::Int);
                Instruction::op(pc, op, [Some(a), Some(b)], Some(d))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_spec_is_valid() {
        assert!(WorkloadSpec::balanced().validate().is_ok());
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut s = WorkloadSpec::balanced();
        s.mix.load = 0.9;
        s.mix.store = 0.9;
        assert!(s.validate().is_err());
        let mut s = WorkloadSpec::balanced();
        s.mean_dep_distance = 0.5;
        assert!(s.validate().is_err());
        let mut s = WorkloadSpec::balanced();
        s.code_instrs = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::balanced();
        let a = spec.generate(2_000, 7);
        let b = spec.generate(2_000, 7);
        assert_eq!(a, b);
        let c = spec.generate(2_000, 8);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn mix_is_roughly_respected() {
        let spec = WorkloadSpec::balanced();
        let trace = spec.generate(50_000, 3);
        let loads = trace.iter().filter(|i| i.op == OpClass::Load).count() as f64;
        let frac = loads / trace.len() as f64;
        assert!(
            (frac - spec.mix.load).abs() < 0.05,
            "load fraction {frac} should be near {}",
            spec.mix.load
        );
    }

    #[test]
    fn code_footprint_bounds_pcs() {
        let mut spec = WorkloadSpec::balanced();
        spec.code_instrs = 128;
        let trace = spec.generate(5_000, 1);
        let max_pc = trace.iter().map(|i| i.pc).max().unwrap();
        assert!(max_pc < 0x10_0000 + 4 * 128);
    }

    #[test]
    fn memory_stays_in_footprint() {
        let mut spec = WorkloadSpec::balanced();
        spec.memory.footprint_bytes = 4096;
        spec.memory.hot_bytes = 2048;
        let trace = spec.generate(20_000, 2);
        for i in trace.iter().filter(|i| i.op.is_mem()) {
            assert!(i.mem_addr >= 0x1_0000);
            assert!(i.mem_addr <= 0x1_0000 + 4096 + spec.memory.stride);
        }
    }

    #[test]
    fn serial_spec_has_short_dependence() {
        // With mean distance 1.5, consecutive ops should frequently read the
        // most recently written register.
        let mut spec = WorkloadSpec::balanced();
        spec.mean_dep_distance = 1.5;
        spec.mix = OpMix {
            load: 0.0,
            store: 0.0,
            branch: 0.0,
            call_ret: 0.0,
            fp_alu: 0.0,
            fp_mult: 0.0,
            fp_div: 0.0,
            int_mult: 0.0,
            int_div: 0.0,
        };
        let trace = spec.generate(1_000, 5);
        let mut chained = 0;
        for w in trace.windows(2) {
            if let (Some(dst), srcs) = (w[0].dst, w[1].srcs) {
                if srcs.iter().flatten().any(|s| *s == dst) {
                    chained += 1;
                }
            }
        }
        assert!(
            chained > 200,
            "short-distance spec should chain often, got {chained}"
        );
    }
}
