#![warn(missing_docs)]
//! # archx-workloads — synthetic SPEC-like workloads
//!
//! The paper evaluates ArchExplorer on SPEC CPU2006/CPU2017 Simpoints. This
//! crate substitutes seeded synthetic trace generators: each named workload
//! is parameterised (instruction mix, dependency-distance distribution,
//! branch predictability, memory footprint and access pattern, code
//! footprint, call depth) to stress the same microarchitectural structures
//! its SPEC counterpart is known for — e.g. the `mcf`-like workload is a
//! pointer chaser that hammers the D-cache and load queue, while the
//! `xz`-like workload carries long dependence chains that pressure the
//! physical integer register file.
//!
//! ```
//! use archx_workloads::spec06_suite;
//! let suite = spec06_suite();
//! assert_eq!(suite.len(), 12);
//! let trace = suite[0].generate(1_000, 1);
//! assert_eq!(trace.len(), 1_000);
//! ```

pub mod generator;
pub mod phases;
pub mod simpoints;
pub mod spec;
pub mod store;
pub mod suite_file;

pub use generator::{BranchProfile, MemoryProfile, OpMix, WorkloadSpec};
pub use phases::{Phase, PhasedWorkload};
pub use simpoints::{estimate, pick_simpoints, Simpoint};
pub use spec::{spec06_suite, spec17_suite, Workload, WorkloadId};
pub use store::{TraceKey, TraceStore};
pub use suite_file::parse_suite;
