//! Process-wide, content-addressed trace store.
//!
//! Synthesising a workload trace is the single most expensive setup step on
//! the evaluation path, and campaigns repeat it constantly: every
//! [`Evaluator`](../../archx_dse/eval) used to call [`Workload::generate`]
//! for its whole suite, so a six-method × five-seed campaign synthesised the
//! same twelve traces thirty times over. The [`TraceStore`] makes the trace
//! a shared immutable value instead: it is content-addressed by
//! `(workload id, seed, instr window)` and hands out `Arc<[Instruction]>`,
//! so each distinct trace is synthesised **exactly once per process** and
//! every evaluator, campaign job, and bench bin after that shares the same
//! allocation zero-copy. Halved-window retries never come back here at all —
//! they slice the full-window `Arc` (`&trace[..window]`), which the
//! prefix-stable generator guarantees is identical to a fresh shorter run.
//!
//! Concurrency: the map only guards *cell* creation; synthesis itself runs
//! outside the map lock inside a per-key [`OnceLock`], so two jobs racing on
//! a cold key block on that key alone (one synthesises, the other waits) and
//! unrelated keys proceed in parallel.
//!
//! Observability: each lookup bumps the global telemetry counters
//! `trace_store/hit` and `trace_store/miss` plus per-instance atomics
//! ([`TraceStore::hits`] / [`TraceStore::misses`]) that tests and benches
//! can assert on without races from other stores in the process.

use crate::spec::{Workload, WorkloadId};
use archx_sim::isa::Instruction;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Content address of a synthesised trace: which workload, which generator
/// seed, and how many instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// The workload's name (workload identity is its name — two `Workload`
    /// values with the same id generate identical streams).
    pub workload: WorkloadId,
    /// Seed passed to [`Workload::generate`].
    pub seed: u64,
    /// Instruction-window length (the `n` passed to `generate`).
    pub window: usize,
}

/// Per-key cell: created under the map lock, filled outside it.
type Cell = Arc<OnceLock<Arc<[Instruction]>>>;

/// Shared, immutable, content-addressed store of synthesised traces.
///
/// Cheap to share (`Arc<TraceStore>`); the process-wide default instance is
/// [`TraceStore::global`]. A fresh instance (`TraceStore::new`) is useful in
/// tests and benches that want isolated hit/miss counters or a deliberately
/// cold cache.
#[derive(Debug, Default)]
pub struct TraceStore {
    map: Mutex<HashMap<TraceKey, Cell>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TraceStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        TraceStore::default()
    }

    /// The process-wide shared store. Evaluators default to this, so every
    /// campaign and bench bin in one process shares one trace per key.
    pub fn global() -> Arc<TraceStore> {
        static GLOBAL: OnceLock<Arc<TraceStore>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(TraceStore::new())).clone()
    }

    /// Returns the trace for `(workload, seed, window)`, synthesising it on
    /// first access and sharing the same `Arc` on every subsequent one.
    ///
    /// Concurrent first accesses of the same key synthesise once: the loser
    /// of the race blocks until the winner's trace is published.
    pub fn get(&self, workload: &Workload, window: usize, seed: u64) -> Arc<[Instruction]> {
        let key = TraceKey {
            workload: workload.id,
            seed,
            window,
        };
        let cell: Cell = {
            let mut map = self.map.lock().expect("trace store poisoned");
            map.entry(key).or_default().clone()
        };
        // Fast path: already synthesised.
        if let Some(trace) = cell.get() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            archx_telemetry::counter_add("trace_store/hit", 1);
            return trace.clone();
        }
        let mut synthesised = false;
        let trace = cell
            .get_or_init(|| {
                synthesised = true;
                workload.generate(window, seed)
            })
            .clone();
        if synthesised {
            self.misses.fetch_add(1, Ordering::Relaxed);
            archx_telemetry::counter_add("trace_store/miss", 1);
        } else {
            // Lost the init race: someone else synthesised while we waited.
            self.hits.fetch_add(1, Ordering::Relaxed);
            archx_telemetry::counter_add("trace_store/hit", 1);
        }
        trace
    }

    /// Number of lookups served from an already-synthesised trace.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that synthesised a new trace (exactly one per
    /// distinct key, however many threads race on it).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct keys currently resident.
    pub fn len(&self) -> usize {
        self.map.lock().expect("trace store poisoned").len()
    }

    /// True when no trace has been requested yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec06_suite;

    #[test]
    fn same_key_returns_pointer_equal_arc() {
        let store = TraceStore::new();
        let suite = spec06_suite();
        let a = store.get(&suite[0], 500, 1);
        let b = store.get(&suite[0], 500, 1);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one allocation");
        assert_eq!(store.misses(), 1);
        assert_eq!(store.hits(), 1);
    }

    #[test]
    fn distinct_keys_are_distinct_traces() {
        let store = TraceStore::new();
        let suite = spec06_suite();
        let a = store.get(&suite[0], 500, 1);
        let by_seed = store.get(&suite[0], 500, 2);
        let by_window = store.get(&suite[0], 400, 1);
        let by_workload = store.get(&suite[1], 500, 1);
        assert!(!Arc::ptr_eq(&a, &by_seed));
        assert!(!Arc::ptr_eq(&a, &by_workload));
        assert_ne!(a, by_seed);
        assert_ne!(a, by_workload);
        assert_eq!(by_window.len(), 400);
        assert_eq!(store.misses(), 4);
        assert_eq!(store.len(), 4);
    }

    #[test]
    fn store_matches_direct_generation() {
        let store = TraceStore::new();
        let suite = spec06_suite();
        assert_eq!(store.get(&suite[2], 600, 7), suite[2].generate(600, 7));
    }

    #[test]
    fn shorter_window_is_prefix_of_longer() {
        // The retry path slices `&full[..window]` instead of regenerating;
        // that is only sound because the generator is prefix-stable.
        let store = TraceStore::new();
        let suite = spec06_suite();
        let full = store.get(&suite[0], 2_000, 1);
        let half = store.get(&suite[0], 1_000, 1);
        assert_eq!(&full[..1_000], &half[..]);
    }

    #[test]
    fn concurrent_first_access_synthesises_once() {
        let store = Arc::new(TraceStore::new());
        let suite = Arc::new(spec06_suite());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let store = store.clone();
                let suite = suite.clone();
                std::thread::spawn(move || store.get(&suite[0], 4_000, 1))
            })
            .collect();
        let traces: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for t in &traces[1..] {
            assert!(Arc::ptr_eq(&traces[0], t));
        }
        assert_eq!(store.misses(), 1, "4 racing threads, 1 synthesis");
        assert_eq!(store.hits(), 3);
    }
}
