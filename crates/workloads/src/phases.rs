//! Phased workloads: programs whose behaviour changes over time.
//!
//! Real SPEC workloads move through phases (initialisation, compute
//! kernels, I/O-ish bookkeeping); Simpoint methodology exists precisely
//! because of this. A [`PhasedWorkload`] concatenates differently-tuned
//! generator specifications into one long trace, cycling through them, so
//! the [`simpoints`](crate::simpoints) machinery has real structure to
//! find.

use crate::generator::WorkloadSpec;
use archx_sim::isa::Instruction;
use serde::Serialize;

/// One phase: a specification and its length in instructions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Phase {
    /// Generator specification of this phase.
    pub spec: WorkloadSpec,
    /// Dynamic instructions per occurrence of the phase.
    pub instrs: usize,
}

/// A workload built from repeating phases.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PhasedWorkload {
    phases: Vec<Phase>,
}

impl PhasedWorkload {
    /// Creates a phased workload.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any phase is empty/invalid.
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        for (i, p) in phases.iter().enumerate() {
            assert!(p.instrs > 0, "phase {i} is empty");
            p.spec
                .validate()
                .unwrap_or_else(|e| panic!("phase {i} invalid: {e}"));
        }
        PhasedWorkload { phases }
    }

    /// The phase list.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Generates `n` instructions, cycling through the phases. Each phase
    /// occurrence continues its own generator state (seeded per phase), and
    /// phases occupy disjoint code regions so their fetch behaviour stays
    /// distinct.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Instruction> {
        let mut out = Vec::with_capacity(n);
        // Pre-generate per-phase instruction pools lazily grown as needed.
        let mut pools: Vec<Vec<Instruction>> = vec![Vec::new(); self.phases.len()];
        let mut cursor: Vec<usize> = vec![0; self.phases.len()];
        let mut k = 0usize;
        while out.len() < n {
            let idx = k % self.phases.len();
            let phase = &self.phases[idx];
            let want = phase.instrs.min(n - out.len());
            // Grow the pool when exhausted (regenerate double).
            if cursor[idx] + want > pools[idx].len() {
                let new_len = (pools[idx].len() + want).max(4 * phase.instrs);
                pools[idx] = phase.spec.generate(new_len, seed ^ (idx as u64) << 32);
                // Give each phase a disjoint PC region.
                let offset = (idx as u64) << 24;
                for instr in &mut pools[idx] {
                    instr.pc += offset;
                    if instr.op.is_branch() {
                        instr.target += offset;
                    }
                }
            }
            out.extend_from_slice(&pools[idx][cursor[idx]..cursor[idx] + want]);
            cursor[idx] += want;
            k += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{MemoryProfile, OpMix, WorkloadSpec};

    fn fp_phase() -> WorkloadSpec {
        WorkloadSpec {
            mix: OpMix::fp_default(),
            ..WorkloadSpec::balanced()
        }
    }

    fn mem_phase() -> WorkloadSpec {
        WorkloadSpec {
            memory: MemoryProfile::hostile(),
            ..WorkloadSpec::balanced()
        }
    }

    #[test]
    fn cycles_through_phases_with_disjoint_pcs() {
        let w = PhasedWorkload::new(vec![
            Phase {
                spec: fp_phase(),
                instrs: 500,
            },
            Phase {
                spec: mem_phase(),
                instrs: 500,
            },
        ]);
        let t = w.generate(2_000, 1);
        assert_eq!(t.len(), 2_000);
        // First 500 from phase 0, next 500 from phase 1 (distinct pc regions).
        let r0: Vec<u64> = t[..500].iter().map(|i| i.pc >> 24).collect();
        let r1: Vec<u64> = t[500..1000].iter().map(|i| i.pc >> 24).collect();
        assert!(r0.iter().all(|&r| r == r0[0]));
        assert!(r1.iter().all(|&r| r == r1[0]));
        assert_ne!(r0[0], r1[0]);
    }

    #[test]
    fn phase_occurrences_continue_not_restart() {
        let w = PhasedWorkload::new(vec![
            Phase {
                spec: fp_phase(),
                instrs: 300,
            },
            Phase {
                spec: mem_phase(),
                instrs: 300,
            },
        ]);
        let t = w.generate(1_800, 2);
        // Phase 0's second occurrence (instrs 600..900 of its own stream)
        // must differ from its first occurrence.
        assert_ne!(&t[0..300], &t[600..900]);
    }

    #[test]
    fn deterministic() {
        let w = PhasedWorkload::new(vec![Phase {
            spec: fp_phase(),
            instrs: 100,
        }]);
        assert_eq!(w.generate(500, 9), w.generate(500, 9));
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_panic() {
        let _ = PhasedWorkload::new(vec![]);
    }
}
