//! Construction of the paper's new DEG formulation from a simulated
//! microexecution (Section 4.1, Table 2).
//!
//! Everything is dynamic: edge weights are the measured intervals between
//! event times, misprediction edges span the *actual* squash latency, and
//! resource-usage edges (`R(i)→R(j)`, `I(i)→I(j)`) come straight from the
//! simulator's scoreboard — which instruction's release of which entry
//! unblocked each stall.

use crate::arena::DegArena;
use crate::graph::{Deg, EdgeKind, Stage};
use archx_sim::trace::{InstrIdx, SimResult, NO_INSTR};

/// Builds the new-formulation DEG for a full simulation result.
pub fn build_deg(result: &SimResult) -> Deg {
    build_deg_window(result, 0, result.trace.events.len())
}

/// Like [`build_deg`], but recycles graph storage from `arena` instead of
/// allocating it — the campaign hot path. Hand the graph back with
/// [`DegArena::recycle`] once analysis is done.
pub fn build_deg_in(arena: &mut DegArena, result: &SimResult) -> Deg {
    build_deg_window_in(arena, result, 0, result.trace.events.len())
}

/// Builds the DEG over the half-open instruction window `[start, end)`.
///
/// Skewed edges whose source lies before the window are dropped (their
/// producer is not represented), matching the paper's use of bounded
/// instruction windows for critical-path analysis.
///
/// # Panics
///
/// Panics if the window is out of bounds or empty.
pub fn build_deg_window(result: &SimResult, start: usize, end: usize) -> Deg {
    build_deg_window_in(&mut DegArena::new(), result, start, end)
}

/// Windowed variant of [`build_deg_in`]; see [`build_deg_window`].
///
/// # Panics
///
/// Panics if the window is out of bounds or empty.
pub fn build_deg_window_in(
    arena: &mut DegArena,
    result: &SimResult,
    start: usize,
    end: usize,
) -> Deg {
    assert!(
        start < end && end <= result.trace.events.len(),
        "bad window"
    );
    let _timed = archx_telemetry::span("deg/build");
    let events = &result.trace.events[start..end];
    let n = events.len() as u32;

    let mut parts = arena.take_parts();
    parts.times.clear();
    parts.times.reserve((n * 10) as usize);
    for ev in events {
        parts.times.extend_from_slice(&[
            ev.f1, ev.f2, ev.f, ev.dc, ev.r, ev.dp, ev.i, ev.m, ev.p, ev.c,
        ]);
    }
    let mut deg = Deg::from_parts(n, parts);

    let in_window = |idx: InstrIdx| -> Option<InstrIdx> {
        if idx == NO_INSTR {
            return None;
        }
        let i = idx as usize;
        (i >= start && i < end).then(|| (i - start) as InstrIdx)
    };

    for (local, ev) in events.iter().enumerate() {
        let j = local as InstrIdx;
        // Pipeline chain F1→F2→F→DC→R→DP→I→M→P→C.
        for w in Stage::ALL.windows(2) {
            deg.add_edge(deg.node(j, w[0]), deg.node(j, w[1]), EdgeKind::Pipeline);
        }
        // Fetch-buffer slot dependence: F(releaser) → F1(j).
        if let Some(from) = ev.fetch_slot_from.and_then(in_window) {
            deg.add_edge(
                deg.node(from, Stage::F),
                deg.node(j, Stage::F1),
                EdgeKind::FetchSlot,
            );
        }
        // Fetch bandwidth / fetch-queue dependence: F(releaser) → F(j).
        if let Some(from) = ev.fetch_bw_from.and_then(in_window) {
            deg.add_edge(
                deg.node(from, Stage::F),
                deg.node(j, Stage::F),
                EdgeKind::FetchBw,
            );
        }
        // Misprediction squash: P(branch) → F1(first refilled).
        if let Some(from) = ev.refill_from.and_then(in_window) {
            deg.add_edge(
                deg.node(from, Stage::P),
                deg.node(j, Stage::F1),
                EdgeKind::Mispredict,
            );
        }
        // Hardware-resource usage dependencies: R(releaser) → R(j).
        for stall in &ev.rename_stalls {
            if let Some(rel) = in_window(stall.releaser) {
                deg.add_edge(
                    deg.node(rel, Stage::R),
                    deg.node(j, Stage::R),
                    EdgeKind::Resource(stall.resource),
                );
            }
        }
        // Functional-unit usage dependence: I(releaser) → I(j).
        if let Some(wait) = ev.fu_wait {
            if let Some(rel) = in_window(wait.releaser) {
                deg.add_edge(
                    deg.node(rel, Stage::I),
                    deg.node(j, Stage::I),
                    EdgeKind::Fu(wait.fu),
                );
            }
        }
        // True data dependencies: I(producer) → I(j).
        for &d in &ev.data_deps {
            if let Some(prod) = in_window(d) {
                deg.add_edge(
                    deg.node(prod, Stage::I),
                    deg.node(j, Stage::I),
                    EdgeKind::Data,
                );
            }
        }
        // Memory-address-dependence misprediction: M(store) → C(load).
        if let Some(store) = ev.mem_dep_violation.and_then(in_window) {
            deg.add_edge(
                deg.node(store, Stage::M),
                deg.node(j, Stage::C),
                EdgeKind::MemDep,
            );
        }
    }
    deg
}

#[cfg(test)]
mod tests {
    use super::*;
    use archx_sim::{trace_gen, MicroArch, OooCore};

    fn run(n: usize) -> SimResult {
        OooCore::new(MicroArch::baseline())
            .run(&trace_gen::mixed_workload(n, 7))
            .expect("simulates")
    }

    #[test]
    fn graph_shape_matches_trace() {
        let r = run(500);
        let g = build_deg(&r);
        assert_eq!(g.instr_count(), 500);
        assert_eq!(g.node_count(), 5000);
        // At least the 9 pipeline edges per instruction.
        assert!(g.edge_count() >= 9 * 500);
        g.validate().expect("well-formed DEG");
    }

    #[test]
    fn pipeline_edge_weights_are_measured_intervals() {
        let r = run(200);
        let g = build_deg(&r);
        for e in g.edges() {
            let w = g.interval(e);
            // All weights are non-negative by construction; pipeline F1→F2
            // equals the I-cache access time.
            if e.kind == EdgeKind::Pipeline {
                let (i, s) = g.locate(e.from);
                if s == Stage::F1 {
                    let ev = &r.trace.events[i as usize];
                    assert_eq!(w, ev.f2 - ev.f1);
                }
            }
        }
    }

    #[test]
    fn mispredict_edges_have_dynamic_weights() {
        let r = OooCore::new(MicroArch::baseline())
            .run(&trace_gen::random_branches(5_000, 3))
            .expect("simulates");
        let g = build_deg(&r);
        let mut weights: Vec<u64> = g
            .edges()
            .iter()
            .filter(|e| e.kind == EdgeKind::Mispredict)
            .map(|e| g.interval(e))
            .collect();
        assert!(
            !weights.is_empty(),
            "random branches must produce squash edges"
        );
        // Squash+redirect takes at least the redirect penalty; the refill
        // may start later still when the front end is busy.
        assert!(
            weights.iter().all(|&w| w >= 3),
            "squash latency below redirect: {weights:?}"
        );
        weights.sort_unstable();
        weights.dedup();
    }

    #[test]
    fn window_drops_out_of_range_producers() {
        let r = run(1_000);
        let g = build_deg_window(&r, 500, 1_000);
        assert_eq!(g.instr_count(), 500);
        g.validate().expect("windowed DEG well-formed");
    }

    #[test]
    fn resource_edges_appear_under_pressure() {
        let mut arch = MicroArch::tiny();
        arch.rob_entries = 32;
        let r = OooCore::new(arch)
            .run(&trace_gen::pointer_chase(3_000, 16 << 20, 5))
            .expect("simulates");
        let g = build_deg(&r);
        let has_resource = g
            .edges()
            .iter()
            .any(|e| matches!(e.kind, EdgeKind::Resource(_)));
        assert!(
            has_resource,
            "a tiny machine on a memory-bound trace must stall on resources"
        );
    }

    #[test]
    #[should_panic(expected = "bad window")]
    fn empty_window_panics() {
        let r = run(10);
        let _ = build_deg_window(&r, 5, 5);
    }
}
