//! The induced DEG (paper Section 4.2): virtual edges that connect the
//! "skewed" (inter-instruction) dependence edges so the critical path can
//! chain consecutive resource-usage dependencies.
//!
//! Unlike the prior formulation, the new DEG has **no** serial
//! fetch-to-fetch or commit-to-commit chains — those edges express program
//! order, not resource usage, and would hide resource dependencies from
//! the critical path. Their removal can disconnect the graph, so virtual
//! (zero-cost, non-dependence) edges are added:
//!
//! * **Rule 1 (connect via time):** each skewed-edge endpoint is connected
//!   to the skewed-edge start whose time is closest after it.
//! * **Rule 2 (connect via instruction sequence):** each skewed-edge
//!   endpoint is connected to the skewed-edge start whose instruction
//!   index is closest after its own.
//!
//! Two anchors keep the path spanning the whole window, mirroring the
//! virtual `R(I10)→C(I11)` edge of the paper's Figure 9(b): the first
//! instruction's `F1` connects into the first skewed starts, and skewed
//! ends with no onward connection link to the last instruction's commit.

use crate::graph::{Deg, EdgeKind, NodeId, Stage};
use std::collections::HashSet;
use std::hash::BuildHasherDefault;

/// A cheap multiply-xor hasher for `(NodeId, NodeId)` pairs — the edge
/// dedup set is the hottest structure of the induction pass.
#[derive(Default)]
struct PairHasher(u64);

impl std::hash::Hasher for PairHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
    fn write_u32(&mut self, v: u32) {
        self.0 = (self.0 ^ v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 29;
    }
}

type EdgeSet = HashSet<(NodeId, NodeId), BuildHasherDefault<PairHasher>>;

/// Adds virtual edges to `deg`, producing the induced DEG.
///
/// Statistics of the transformation are available by comparing
/// [`Deg::edge_count`] before and after.
pub fn induce(mut deg: Deg) -> Deg {
    let _timed = archx_telemetry::span("deg/induce");
    let n = deg.instr_count();
    if n == 0 {
        return deg;
    }
    let source = deg.node(0, Stage::F1);
    let sink = deg.node(n - 1, Stage::C);

    // Collect skewed edges (their endpoints).
    let skewed: Vec<(NodeId, NodeId)> = deg
        .edges()
        .iter()
        .filter(|e| e.kind.is_skewed())
        .map(|e| (e.from, e.to))
        .collect();

    if skewed.is_empty() {
        // Fully parallel window: a single virtual edge keeps the graph
        // connected from first fetch to last commit.
        if deg.is_forward(source, sink) {
            deg.add_edge(source, sink, EdgeKind::Virtual);
        }
        return deg;
    }

    // Unique skewed starts, sorted two ways for the two rules.
    let mut starts: Vec<NodeId> = skewed.iter().map(|&(s, _)| s).collect();
    starts.sort_unstable();
    starts.dedup();
    let mut by_key: Vec<NodeId> = starts.clone();
    by_key.sort_by_key(|&s| deg.topo_key(s));
    let keys: Vec<_> = by_key.iter().map(|&s| deg.topo_key(s)).collect();
    let mut by_instr: Vec<NodeId> = starts.clone();
    by_instr.sort_by_key(|&s| (deg.locate(s).0, deg.topo_key(s)));
    let instrs_sorted: Vec<u32> = by_instr.iter().map(|&s| deg.locate(s).0).collect();

    let mut seen: EdgeSet = deg.edges().iter().map(|e| (e.from, e.to)).collect();
    let mut new_edges: Vec<(NodeId, NodeId)> = Vec::new();
    // Returns whether a forward connection exists (freshly added or
    // already present) — the caller uses this to decide sink anchoring.
    let push = |deg: &Deg,
                seen: &mut EdgeSet,
                from: NodeId,
                to: NodeId,
                out: &mut Vec<(NodeId, NodeId)>|
     -> bool {
        if from == to || !deg.is_forward(from, to) {
            return false;
        }
        if seen.insert((from, to)) {
            out.push((from, to));
        }
        true
    };

    // Rule 1: the first start strictly after `node` in topological key
    // order (all starts sharing that minimal time are connected, capped).
    let rule1 = |deg: &Deg, node: NodeId, out: &mut [Option<NodeId>; 4]| {
        *out = [None; 4];
        let key = deg.topo_key(node);
        let idx = keys.partition_point(|&k| k <= key);
        if idx >= by_key.len() {
            return;
        }
        let t0 = deg.time(by_key[idx]);
        for (slot, &s) in out.iter_mut().zip(&by_key[idx..]) {
            if deg.time(s) != t0 {
                break;
            }
            *slot = Some(s);
        }
    };
    // Rule 2: the starts on the closest strictly-later instruction.
    let rule2 = |deg: &Deg, node: NodeId, out: &mut [Option<NodeId>; 4]| {
        *out = [None; 4];
        let instr = deg.locate(node).0;
        let idx = instrs_sorted.partition_point(|&i| i <= instr);
        if idx >= by_instr.len() {
            return;
        }
        let i0 = instrs_sorted[idx];
        for (slot, (&s, &i)) in out
            .iter_mut()
            .zip(by_instr[idx..].iter().zip(&instrs_sorted[idx..]))
        {
            if i != i0 {
                break;
            }
            *slot = Some(s);
        }
    };

    // Entry anchor: F1 of the first instruction into the earliest starts.
    let mut buf = [None; 4];
    rule1(&deg, source, &mut buf);
    for t in buf.into_iter().flatten() {
        push(&deg, &mut seen, source, t, &mut new_edges);
    }
    rule2(&deg, source, &mut buf);
    for t in buf.into_iter().flatten() {
        push(&deg, &mut seen, source, t, &mut new_edges);
    }

    for &(s, e) in &skewed {
        let mut connected_onward = false;
        for endpoint in [s, e] {
            rule1(&deg, endpoint, &mut buf);
            for t in buf.into_iter().flatten() {
                let ok = push(&deg, &mut seen, endpoint, t, &mut new_edges);
                connected_onward |= ok && endpoint == e;
            }
            rule2(&deg, endpoint, &mut buf);
            for t in buf.into_iter().flatten() {
                let ok = push(&deg, &mut seen, endpoint, t, &mut new_edges);
                connected_onward |= ok && endpoint == e;
            }
        }
        // Exit anchor: terminal skewed ends connect to the last commit.
        if !connected_onward && e != sink {
            push(&deg, &mut seen, e, sink, &mut new_edges);
        }
    }

    for (from, to) in new_edges {
        deg.add_edge(from, to, EdgeKind::Virtual);
    }
    deg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_deg;
    use archx_sim::{trace_gen, MicroArch, OooCore};

    fn induced_of(n: usize) -> Deg {
        let r = OooCore::new(MicroArch::baseline())
            .run(&trace_gen::mixed_workload(n, 11))
            .expect("simulates");
        induce(build_deg(&r))
    }

    #[test]
    fn induction_only_adds_virtual_edges() {
        let r = OooCore::new(MicroArch::baseline())
            .run(&trace_gen::mixed_workload(400, 11))
            .expect("simulates");
        let base = build_deg(&r);
        let base_edges = base.edge_count();
        let ind = induce(base.clone());
        assert!(ind.edge_count() >= base_edges);
        let added = &ind.edges()[base_edges..];
        assert!(added.iter().all(|e| e.kind == EdgeKind::Virtual));
        ind.validate().expect("induced DEG well-formed");
    }

    #[test]
    fn no_duplicate_edges() {
        let g = induced_of(600);
        // Virtual duplicates specifically are forbidden.
        let mut virt = std::collections::HashSet::new();
        for e in g.edges().iter().filter(|e| e.kind == EdgeKind::Virtual) {
            assert!(virt.insert((e.from, e.to)), "duplicate virtual edge");
        }
    }

    #[test]
    fn sink_is_reachable_from_source() {
        let mut g = induced_of(300);
        g.freeze();
        let n = g.instr_count();
        let source = g.node(0, Stage::F1);
        let sink = g.node(n - 1, Stage::C);
        // BFS forward over the DAG.
        let mut reach = vec![false; g.node_count()];
        reach[source as usize] = true;
        for node in g.topo_order() {
            if !reach[node as usize] {
                continue;
            }
            for e in g.out_edges(node) {
                reach[e.to as usize] = true;
            }
        }
        assert!(
            reach[sink as usize],
            "induced DEG must connect F1(I0) to C(In)"
        );
    }

    #[test]
    fn empty_skew_gets_direct_virtual_edge() {
        // A tiny independent trace may produce no skewed edges at all.
        let r = OooCore::new(MicroArch::baseline())
            .run(&trace_gen::independent_int_ops(4))
            .expect("simulates");
        let base = build_deg(&r);
        let had_skew = base.edges().iter().any(|e| e.kind.is_skewed());
        let ind = induce(base);
        if !had_skew {
            assert!(ind.edges().iter().any(|e| e.kind == EdgeKind::Virtual));
        }
    }
}
