//! Reusable DEG analysis scratch memory.
//!
//! Each evaluation on the DSE hot path builds a DEG (tens of thousands of
//! vertices, hundreds of thousands of edges), induces it, and runs the
//! Algorithm 1 dynamic program — all of whose storage used to be allocated
//! per design point. A [`DegArena`] owns that storage between evaluations:
//!
//! * the graph's own vectors (vertex times, edge list, CSR adjacency) are
//!   handed to [`build_deg_in`](crate::build::build_deg_in) and travel
//!   *inside* the returned [`Deg`] through `induce` and the critical-path
//!   pass, coming back via [`DegArena::recycle`];
//! * the DP arrays and topological-order buffers are borrowed by
//!   [`critical_path_in`](crate::critical::critical_path_in) and stay in
//!   the arena.
//!
//! Everything is cleared (capacity kept) before reuse, so arena-built
//! results are byte-identical to cold ones. Like
//! [`SimArena`](archx_sim::arena::SimArena), a `DegArena` belongs to one
//! worker thread.

use crate::graph::{Deg, DegParts, Edge, NodeId};

/// Recyclable scratch buffers for DEG construction and analysis.
///
/// ```
/// use archx_deg::{arena::DegArena, build::build_deg_in, critical::critical_path_in, induce};
/// use archx_sim::{trace_gen, MicroArch, OooCore};
/// let result = OooCore::new(MicroArch::baseline())
///     .run(&trace_gen::mixed_workload(500, 1))
///     .expect("simulates");
/// let mut arena = DegArena::new();
/// for _ in 0..3 {
///     let mut deg = induce(build_deg_in(&mut arena, &result));
///     let path = critical_path_in(&mut arena, &mut deg);
///     assert!(path.total_delay > 0);
///     arena.recycle(deg); // reclaim the graph storage for the next round
/// }
/// ```
#[derive(Debug, Default)]
pub struct DegArena {
    /// Graph storage awaiting the next `build_deg_in`.
    pub(crate) parts: DegParts,
    /// Algorithm 1 DP: accumulated cost per node.
    pub(crate) cost: Vec<u64>,
    /// Algorithm 1 DP: accumulated delay per node.
    pub(crate) delay: Vec<u64>,
    /// Algorithm 1 DP: accumulated attributed delay per node.
    pub(crate) attr: Vec<u64>,
    /// Algorithm 1 DP: best incoming edge per node.
    pub(crate) pred: Vec<Option<Edge>>,
    /// Counting-sort scratch for the topological order.
    pub(crate) topo_counts: Vec<u32>,
    /// Topological order of the current graph.
    pub(crate) topo_order: Vec<NodeId>,
}

impl DegArena {
    /// Creates an empty arena; buffers grow on first use and stick.
    pub fn new() -> Self {
        DegArena::default()
    }

    /// Reclaims the storage of a consumed graph so the next
    /// [`build_deg_in`](crate::build::build_deg_in) on this arena reuses
    /// its allocations.
    pub fn recycle(&mut self, deg: Deg) {
        let parts = deg.into_parts();
        if parts.times.capacity() > self.parts.times.capacity() {
            self.parts.times = parts.times;
        }
        if parts.edges.capacity() > self.parts.edges.capacity() {
            self.parts.edges = parts.edges;
        }
        if parts.csr_starts.capacity() > self.parts.csr_starts.capacity() {
            self.parts.csr_starts = parts.csr_starts;
        }
        if parts.csr_edges.capacity() > self.parts.csr_edges.capacity() {
            self.parts.csr_edges = parts.csr_edges;
        }
    }

    /// Hands out the graph storage for a new build.
    pub(crate) fn take_parts(&mut self) -> DegParts {
        std::mem::take(&mut self.parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_deg, build_deg_in};
    use crate::critical::{critical_path, critical_path_in};
    use crate::induced::induce;
    use archx_sim::{trace_gen, MicroArch, OooCore};

    #[test]
    fn arena_path_matches_cold_path_across_reuse() {
        let mut arena = DegArena::new();
        for (n, seed) in [(1_500usize, 3u64), (400, 5), (900, 7)] {
            let result = OooCore::new(MicroArch::baseline())
                .run(&trace_gen::mixed_workload(n, seed))
                .expect("simulates");
            let mut cold = induce(build_deg(&result));
            let cold_path = critical_path(&mut cold);
            let mut warm = induce(build_deg_in(&mut arena, &result));
            let warm_path = critical_path_in(&mut arena, &mut warm);
            assert_eq!(cold, warm, "arena-built DEG must equal cold-built");
            assert_eq!(cold_path, warm_path);
            arena.recycle(warm);
        }
    }
}
