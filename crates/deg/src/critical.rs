//! Critical-path construction (paper Algorithm 1).
//!
//! A dynamic program over the topological order maximises accumulated edge
//! *cost*, where costs are chosen so the path is densely composed of
//! resource-usage dependencies: horizontal (pipeline), virtual, and
//! true-data edges cost zero; misprediction, hardware-resource and
//! functional-unit edges cost their measured interval.
//!
//! Among equal-cost paths the program prefers the larger accumulated
//! *delay* (time span). Because every path's delay telescopes to
//! `t(end) − t(start)`, this tie-break pulls the path's origin back to
//! `F1(I0)` (time 0) whenever the induced DEG connects it, making the
//! critical-path length exactly the simulated runtime.

use crate::arena::DegArena;
use crate::graph::{Deg, Edge, NodeId, Stage};
use archx_sim::trace::Cycle;

/// A constructed critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Edges in execution order (source to sink).
    pub edges: Vec<Edge>,
    /// Total accumulated cost (resource-dependence cycles).
    pub cost: Cycle,
    /// Total time span covered, `t(end) − t(start)`.
    pub total_delay: Cycle,
    /// First vertex of the path.
    pub start: NodeId,
    /// Last vertex of the path (the last instruction's commit).
    pub end: NodeId,
}

impl CriticalPath {
    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the path is empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Runs Algorithm 1 on an induced DEG and returns the critical path ending
/// at the last instruction's commit.
///
/// This is the no-clone entry point: it reuses the graph's storage and
/// only mutates it by building (and caching) its CSR edge index. Call
/// sites that cannot borrow the graph mutably can use
/// [`critical_path_cloned`], which pays for a full graph copy.
///
/// # Panics
///
/// Panics on an empty graph.
pub fn critical_path(deg: &mut Deg) -> CriticalPath {
    critical_path_in(&mut DegArena::new(), deg)
}

/// Like [`critical_path`], but borrows the dynamic-program arrays and the
/// topological-order buffers from `arena` instead of allocating them — the
/// campaign hot path. The result is identical to [`critical_path`].
///
/// # Panics
///
/// Panics on an empty graph.
pub fn critical_path_in(arena: &mut DegArena, deg: &mut Deg) -> CriticalPath {
    assert!(deg.instr_count() > 0, "empty DEG");
    let _timed = archx_telemetry::span("deg/critical");
    deg.freeze();
    let n = deg.node_count();
    // DP value per node: (cost, delay, attributed delay). Cost implements
    // Algorithm 1; delay pulls the path origin back to time zero; the
    // attributed-delay tie-break prefers spans covered by real dependence
    // and pipeline edges over virtual hops, so attribution loses as little
    // of the runtime as possible.
    let DegArena {
        cost,
        delay,
        attr,
        pred,
        topo_counts,
        topo_order,
        ..
    } = arena;
    cost.clear();
    cost.resize(n, 0u64);
    delay.clear();
    delay.resize(n, 0u64);
    attr.clear();
    attr.resize(n, 0u64);
    pred.clear();
    pred.resize(n, None);
    deg.topo_order_into(topo_counts, topo_order);

    for &node in topo_order.iter() {
        let c0 = cost[node as usize];
        let d0 = delay[node as usize];
        let a0 = attr[node as usize];
        for e in deg.out_edges(node) {
            let w = deg.interval(e);
            let ec = if e.kind.has_cost() { w } else { 0 };
            let ea = if e.kind == crate::graph::EdgeKind::Virtual {
                0
            } else {
                w
            };
            let (nc, nd, na) = (c0 + ec, d0 + w, a0 + ea);
            let t = e.to as usize;
            if (nc, nd, na) > (cost[t], delay[t], attr[t]) {
                cost[t] = nc;
                delay[t] = nd;
                attr[t] = na;
                pred[t] = Some(*e);
            }
        }
    }

    let sink = deg.node(deg.instr_count() - 1, Stage::C);
    let mut edges = Vec::new();
    let mut cur = sink;
    while let Some(e) = pred[cur as usize] {
        edges.push(e);
        cur = e.from;
        assert!(
            edges.len() <= deg.edge_count(),
            "cycle in DEG predecessor chain — a non-forward edge slipped in"
        );
    }
    edges.reverse();
    CriticalPath {
        cost: cost[sink as usize],
        total_delay: delay[sink as usize],
        start: cur,
        end: sink,
        edges,
    }
}

/// Like [`critical_path`], for call sites that only hold a shared
/// reference: **clones the entire graph** to build its CSR cache. On a
/// multi-thousand-node DEG the copy dwarfs the DP itself, so every hot
/// path should borrow mutably and call [`critical_path`] — the CSR
/// default, which freezes the edge index in place and allocates nothing
/// beyond the DP arrays — and reserve this variant for cold paths.
///
/// ```
/// use archx_sim::{MicroArch, OooCore, trace_gen};
/// use archx_deg::prelude::*;
///
/// let result = OooCore::new(MicroArch::baseline())
///     .run(&trace_gen::mixed_workload(500, 1))
///     .expect("simulates");
/// let induced = induce(build_deg(&result));
/// // Shared reference only: pays a full graph copy per call.
/// let cloned = critical_path_cloned(&induced);
/// // The CSR default borrows mutably and reuses the graph's storage.
/// let mut owned = induced;
/// assert_eq!(critical_path(&mut owned), cloned);
/// assert_eq!(cloned.total_delay, result.trace.cycles);
/// ```
pub fn critical_path_cloned(deg: &Deg) -> CriticalPath {
    let mut deg = deg.clone();
    critical_path(&mut deg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_deg;
    use crate::induced::induce;
    use archx_sim::{trace_gen, MicroArch, OooCore};

    fn path_for(trace: &[archx_sim::Instruction], arch: MicroArch) -> (CriticalPath, u64) {
        let r = OooCore::new(arch).run(trace).expect("simulates");
        let mut deg = induce(build_deg(&r));
        (critical_path(&mut deg), r.trace.cycles)
    }

    #[test]
    fn length_equals_simulated_cycles_mixed() {
        let (p, cycles) = path_for(&trace_gen::mixed_workload(2_000, 3), MicroArch::baseline());
        assert_eq!(
            p.total_delay, cycles,
            "new DEG critical path must match runtime exactly"
        );
    }

    #[test]
    fn length_equals_simulated_cycles_under_pressure() {
        let mut arch = MicroArch::tiny();
        arch.rob_entries = 32;
        let (p, cycles) = path_for(&trace_gen::pointer_chase(2_000, 8 << 20, 9), arch);
        assert_eq!(p.total_delay, cycles);
    }

    #[test]
    fn length_equals_simulated_cycles_branchy() {
        let (p, cycles) = path_for(&trace_gen::random_branches(3_000, 5), MicroArch::baseline());
        assert_eq!(p.total_delay, cycles);
    }

    #[test]
    fn path_edges_are_contiguous() {
        let (p, _) = path_for(&trace_gen::mixed_workload(1_000, 4), MicroArch::baseline());
        for w in p.edges.windows(2) {
            assert_eq!(w[0].to, w[1].from, "path must be vertex-contiguous");
        }
        assert!(!p.is_empty());
        assert_eq!(p.edges.first().unwrap().from, p.start);
        assert_eq!(p.edges.last().unwrap().to, p.end);
    }

    #[test]
    fn path_cost_counts_only_costly_edges() {
        let (p, _) = path_for(&trace_gen::mixed_workload(1_000, 6), MicroArch::baseline());
        let mut deg_cost = 0;
        let r = OooCore::new(MicroArch::baseline())
            .run(&trace_gen::mixed_workload(1_000, 6))
            .expect("simulates");
        let deg = induce(build_deg(&r));
        for e in &p.edges {
            if e.kind.has_cost() {
                deg_cost += deg.interval(e);
            }
        }
        assert_eq!(deg_cost, p.cost);
        assert!(p.cost <= p.total_delay);
    }

    #[test]
    fn serial_chain_path_carries_dependence_edges() {
        // A serial dependence chain: the path routes through skewed
        // dependence edges (data deps and the queue backpressure they
        // induce), not through pipeline/virtual filler alone.

        let (p, _) = path_for(&trace_gen::linear_int_chain(2_000), MicroArch::baseline());
        let skewed = p.edges.iter().filter(|e| e.kind.is_skewed()).count();
        assert!(
            skewed > p.edges.len() / 4,
            "expected a dependence-dominated path, got {skewed}/{}",
            p.edges.len()
        );
    }
}
