//! Bottleneck attribution (paper Section 4.3, Eq. 1–2).
//!
//! Every edge of the critical path is a non-overlapping segment of the
//! microexecution; its measured delay is attributed to the hardware
//! resource that caused it. A resource's contribution `c(b)` is its share
//! of the critical-path length; multi-workload reports are merged with the
//! designer's workload weights (Eq. 2).
//!
//! Attribution rules:
//!
//! * skewed edges carry their cause directly: `Resource(kind)` → that
//!   queue/register file, `Fu(kind)` → that functional-unit class,
//!   `Mispredict` → the branch predictor, `Data` → true data dependence
//!   (the perfect-machine floor — not a reassignable resource);
//! * pipeline edges split into an irreducible single-cycle/base component
//!   and an excess: I-cache time beyond the L1 hit latency → `ICache`,
//!   D-cache time beyond the hit latency → `DCache`, waits in the fetch
//!   buffer → `FetchQueue`, decode/rename/issue/commit bandwidth excess →
//!   `Width`;
//! * virtual edges are never attributed (paper §4.3); their spans count
//!   toward the unattributed remainder.

use crate::critical::CriticalPath;
use crate::graph::{Deg, EdgeKind, Stage};
use archx_sim::config::L1_HIT_CYCLES;
use archx_sim::trace::{FuKind, ResourceKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of bottleneck sources (the length of [`BottleneckSource::ALL`]).
pub const NUM_SOURCES: usize = 20;

/// Everything a critical-path cycle can be blamed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BottleneckSource {
    /// Reorder buffer entries.
    Rob,
    /// Issue queue entries.
    Iq,
    /// Load queue entries.
    Lq,
    /// Store queue entries.
    Sq,
    /// Physical integer registers.
    IntRf,
    /// Physical floating-point registers.
    FpRf,
    /// Integer ALUs.
    IntAlu,
    /// Integer multiplier/dividers.
    IntMultDiv,
    /// Floating-point ALUs.
    FpAlu,
    /// Floating-point multiplier/dividers.
    FpMultDiv,
    /// Cache read/write ports.
    RdWrPort,
    /// L1 instruction cache (miss time).
    ICache,
    /// L1 data cache (miss time).
    DCache,
    /// Branch predictor (squash time).
    BPred,
    /// Fetch buffer / fetch queue occupancy waits.
    FetchQueue,
    /// Pipeline bandwidth (decode/rename/issue/commit width).
    Width,
    /// Memory-address-dependence mispredictions (store-set speculation) —
    /// reducible by a better memory-dependence predictor, not by sizing.
    MemDep,
    /// True data dependencies — the perfect-machine floor.
    TrueDep,
    /// Irreducible single-cycle pipeline latency.
    Base,
    /// Unattributed (virtual-edge spans).
    Unattributed,
}

impl BottleneckSource {
    /// All sources, in a stable order.
    pub const ALL: [BottleneckSource; NUM_SOURCES] = [
        BottleneckSource::Rob,
        BottleneckSource::Iq,
        BottleneckSource::Lq,
        BottleneckSource::Sq,
        BottleneckSource::IntRf,
        BottleneckSource::FpRf,
        BottleneckSource::IntAlu,
        BottleneckSource::IntMultDiv,
        BottleneckSource::FpAlu,
        BottleneckSource::FpMultDiv,
        BottleneckSource::RdWrPort,
        BottleneckSource::ICache,
        BottleneckSource::DCache,
        BottleneckSource::BPred,
        BottleneckSource::FetchQueue,
        BottleneckSource::Width,
        BottleneckSource::MemDep,
        BottleneckSource::TrueDep,
        BottleneckSource::Base,
        BottleneckSource::Unattributed,
    ];

    /// Index within [`BottleneckSource::ALL`].
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&s| s == self)
            .expect("all variants listed")
    }

    /// Whether the DSE can reassign hardware to address this source.
    pub fn is_reassignable(self) -> bool {
        !matches!(
            self,
            BottleneckSource::TrueDep
                | BottleneckSource::MemDep
                | BottleneckSource::Base
                | BottleneckSource::Unattributed
        )
    }
}

impl fmt::Display for BottleneckSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BottleneckSource::Rob => "ROB",
            BottleneckSource::Iq => "IQ",
            BottleneckSource::Lq => "LQ",
            BottleneckSource::Sq => "SQ",
            BottleneckSource::IntRf => "IntRF",
            BottleneckSource::FpRf => "FpRF",
            BottleneckSource::IntAlu => "IntALU",
            BottleneckSource::IntMultDiv => "IntMultDiv",
            BottleneckSource::FpAlu => "FpALU",
            BottleneckSource::FpMultDiv => "FpMultDiv",
            BottleneckSource::RdWrPort => "RdWrPort",
            BottleneckSource::ICache => "I-cache",
            BottleneckSource::DCache => "D-cache",
            BottleneckSource::BPred => "BPred",
            BottleneckSource::FetchQueue => "FetchQueue",
            BottleneckSource::Width => "Width",
            BottleneckSource::MemDep => "MemDep",
            BottleneckSource::TrueDep => "TrueDep",
            BottleneckSource::Base => "Base",
            BottleneckSource::Unattributed => "Unattributed",
        };
        f.write_str(s)
    }
}

fn resource_source(kind: ResourceKind) -> BottleneckSource {
    match kind {
        ResourceKind::Rob => BottleneckSource::Rob,
        ResourceKind::Iq => BottleneckSource::Iq,
        ResourceKind::Lq => BottleneckSource::Lq,
        ResourceKind::Sq => BottleneckSource::Sq,
        ResourceKind::IntRf => BottleneckSource::IntRf,
        ResourceKind::FpRf => BottleneckSource::FpRf,
    }
}

fn fu_source(kind: FuKind) -> BottleneckSource {
    match kind {
        FuKind::IntAlu => BottleneckSource::IntAlu,
        FuKind::IntMultDiv => BottleneckSource::IntMultDiv,
        FuKind::FpAlu => BottleneckSource::FpAlu,
        FuKind::FpMultDiv => BottleneckSource::FpMultDiv,
        FuKind::RdWrPort => BottleneckSource::RdWrPort,
    }
}

/// A bottleneck analysis report: per-source contributions `c(b)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BottleneckReport {
    /// Contribution per source, indexed as [`BottleneckSource::ALL`];
    /// fractions of the critical-path length, each in `[0, 1]`.
    pub contributions: [f64; NUM_SOURCES],
    /// Critical-path length (cycles) the fractions are relative to.
    pub length: u64,
}

impl BottleneckReport {
    /// Contribution of one source.
    pub fn contribution(&self, source: BottleneckSource) -> f64 {
        self.contributions[source.index()]
    }

    /// Sources sorted by contribution, descending.
    pub fn ranked(&self) -> Vec<(BottleneckSource, f64)> {
        let mut v: Vec<(BottleneckSource, f64)> = BottleneckSource::ALL
            .iter()
            .map(|&s| (s, self.contribution(s)))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite contributions"));
        v
    }

    /// Sum of all contributions (≤ 1; the remainder is rounding).
    pub fn total(&self) -> f64 {
        self.contributions.iter().sum()
    }

    /// Renders a human-readable report (the paper's "bottleneck analysis
    /// report" of Figure 6/10).
    pub fn render(&self) -> String {
        let mut out = String::from("bottleneck analysis report\n");
        out.push_str(&format!("critical path length: {} cycles\n", self.length));
        for (s, c) in self.ranked() {
            if c > 0.0005 {
                out.push_str(&format!("  {s:<12} {:>6.2}%\n", c * 100.0));
            }
        }
        out
    }
}

/// Computes the bottleneck report for a critical path over its DEG
/// (paper Eq. 1).
pub fn analyze(deg: &Deg, path: &CriticalPath) -> BottleneckReport {
    let mut cycles = [0u64; NUM_SOURCES];
    for e in &path.edges {
        let w = deg.interval(e);
        if w == 0 {
            continue;
        }
        match e.kind {
            EdgeKind::Resource(kind) => cycles[resource_source(kind).index()] += w,
            EdgeKind::Fu(kind) => cycles[fu_source(kind).index()] += w,
            EdgeKind::Mispredict => cycles[BottleneckSource::BPred.index()] += w,
            EdgeKind::Data => cycles[BottleneckSource::TrueDep.index()] += w,
            EdgeKind::FetchSlot | EdgeKind::FetchBw => {
                cycles[BottleneckSource::FetchQueue.index()] += w
            }
            EdgeKind::MemDep => cycles[BottleneckSource::MemDep.index()] += w,
            EdgeKind::Virtual => cycles[BottleneckSource::Unattributed.index()] += w,
            EdgeKind::Pipeline => {
                let (_, stage) = deg.locate(e.from);
                let (base, excess_src) = match stage {
                    // I-cache access: hit latency is irreducible, the rest
                    // is miss time.
                    Stage::F1 => (L1_HIT_CYCLES, BottleneckSource::ICache),
                    // Waiting in the fetch buffer for fetch-queue space.
                    Stage::F2 => (0, BottleneckSource::FetchQueue),
                    // Front-end bandwidth.
                    Stage::F | Stage::Dc => (1, BottleneckSource::Width),
                    Stage::R => (1, BottleneckSource::Base),
                    // Waiting in the issue queue beyond the dispatch cycle
                    // (scheduling/bandwidth; operand and FU waits have their
                    // own skewed edges).
                    Stage::Dp => (0, BottleneckSource::Width),
                    Stage::I => (1, BottleneckSource::Base),
                    // Memory time beyond the L1 hit: D-cache misses.
                    Stage::M => (L1_HIT_CYCLES, BottleneckSource::DCache),
                    // Commit-order wait beyond the writeback cycle.
                    Stage::P => (1, BottleneckSource::Width),
                    Stage::C => (0, BottleneckSource::Base),
                };
                let base_part = w.min(base);
                cycles[BottleneckSource::Base.index()] += base_part;
                cycles[excess_src.index()] += w - base_part;
            }
        }
    }
    let length = path.total_delay.max(1);
    let mut contributions = [0.0f64; NUM_SOURCES];
    for (i, c) in cycles.iter().enumerate() {
        contributions[i] = *c as f64 / length as f64;
    }
    BottleneckReport {
        contributions,
        length: path.total_delay,
    }
}

/// Splits the critical path into `bins` consecutive time windows and
/// returns one report per window — the evolution of the bottleneck
/// composition over the microexecution (a CPI-stack-over-time view; the
/// paper's Figure 10 shows this per search step, this shows it within one
/// run).
///
/// # Panics
///
/// Panics when `bins` is zero.
pub fn timeline(deg: &Deg, path: &CriticalPath, bins: usize) -> Vec<BottleneckReport> {
    assert!(bins > 0, "need at least one bin");
    let total = path.total_delay.max(1);
    let bin_len = total.div_ceil(bins as u64).max(1);
    let mut cycles = vec![[0u64; NUM_SOURCES]; bins];
    let mut lengths = vec![0u64; bins];
    let t0 = deg.time(path.start);
    for e in &path.edges {
        let w = deg.interval(e);
        if w == 0 {
            continue;
        }
        // Attribute the edge's span to the bins it crosses.
        let mut from = deg.time(e.from) - t0;
        let to = deg.time(e.to) - t0;
        let source = attribute(deg, e);
        while from < to {
            let bin = ((from / bin_len) as usize).min(bins - 1);
            let bin_end = ((bin as u64 + 1) * bin_len).min(to);
            cycles[bin][source.index()] += bin_end - from;
            lengths[bin] += bin_end - from;
            from = bin_end;
        }
    }
    cycles
        .into_iter()
        .zip(lengths)
        .map(|(c, len)| {
            let mut contributions = [0.0f64; NUM_SOURCES];
            for (i, x) in c.iter().enumerate() {
                contributions[i] = *x as f64 / len.max(1) as f64;
            }
            BottleneckReport {
                contributions,
                length: len,
            }
        })
        .collect()
}

/// The bottleneck source one edge's delay is attributed to (the rules of
/// [`analyze`], factored out for reuse).
fn attribute(deg: &Deg, e: &crate::graph::Edge) -> BottleneckSource {
    match e.kind {
        EdgeKind::Resource(kind) => resource_source(kind),
        EdgeKind::Fu(kind) => fu_source(kind),
        EdgeKind::Mispredict => BottleneckSource::BPred,
        EdgeKind::Data => BottleneckSource::TrueDep,
        EdgeKind::FetchSlot | EdgeKind::FetchBw => BottleneckSource::FetchQueue,
        EdgeKind::MemDep => BottleneckSource::MemDep,
        EdgeKind::Virtual => BottleneckSource::Unattributed,
        EdgeKind::Pipeline => {
            // Coarse: assign the whole span to the excess source of the
            // stage (the per-cycle base split is only done in `analyze`).
            let (_, stage) = deg.locate(e.from);
            match stage {
                Stage::F1 => BottleneckSource::ICache,
                Stage::F2 => BottleneckSource::FetchQueue,
                Stage::F | Stage::Dc | Stage::Dp | Stage::P => BottleneckSource::Width,
                Stage::M => BottleneckSource::DCache,
                _ => BottleneckSource::Base,
            }
        }
    }
}

/// Weighted multi-workload aggregation (paper Eq. 2).
///
/// # Panics
///
/// Panics if `reports` and `weights` differ in length or are empty.
pub fn merge_reports(reports: &[BottleneckReport], weights: &[f64]) -> BottleneckReport {
    assert!(!reports.is_empty(), "no reports to merge");
    assert_eq!(reports.len(), weights.len(), "one weight per report");
    let wsum: f64 = weights.iter().sum();
    let mut contributions = [0.0f64; NUM_SOURCES];
    let mut length = 0.0f64;
    for (r, &w) in reports.iter().zip(weights) {
        let wn = w / wsum;
        for (c, rc) in contributions.iter_mut().zip(&r.contributions) {
            *c += wn * rc;
        }
        length += wn * r.length as f64;
    }
    BottleneckReport {
        contributions,
        length: length.round() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_deg;
    use crate::critical::critical_path;
    use crate::induced::induce;
    use archx_sim::{trace_gen, MicroArch, OooCore};

    fn report_for(trace: &[archx_sim::Instruction], arch: MicroArch) -> BottleneckReport {
        let r = OooCore::new(arch).run(trace).expect("simulates");
        let mut deg = induce(build_deg(&r));
        let path = critical_path(&mut deg);
        analyze(&deg, &path)
    }

    #[test]
    fn contributions_form_a_partition() {
        let rep = report_for(&trace_gen::mixed_workload(2_000, 13), MicroArch::baseline());
        assert!(rep.contributions.iter().all(|&c| (0.0..=1.0).contains(&c)));
        // Every critical-path cycle is attributed somewhere: the path spans
        // the whole runtime, so the parts must sum to ~1.
        assert!(
            (rep.total() - 1.0).abs() < 1e-9,
            "contributions sum to {}",
            rep.total()
        );
    }

    #[test]
    fn serial_chain_exposes_backpressure_and_true_deps() {
        // A fully serial chain saturates any finite issue queue: the report
        // shows the queue exhaustion (rename backpressure) with a visible
        // true-data-dependence floor underneath.
        let rep = report_for(&trace_gen::linear_int_chain(3_000), MicroArch::baseline());
        let floor = rep.contribution(BottleneckSource::TrueDep);
        let backpressure = rep.contribution(BottleneckSource::Iq)
            + rep.contribution(BottleneckSource::Rob)
            + rep.contribution(BottleneckSource::IntRf);
        // The serial chain saturates the issue queue; the paper's cost rule
        // deliberately prefers resource-usage edges, so the dependence floor
        // surfaces as IQ backpressure whose spans mirror the data deps.
        assert!(
            floor + backpressure > 0.4,
            "chain must be dominated by deps + queue backpressure: {}",
            rep.render()
        );
    }

    #[test]
    fn random_branches_blame_the_predictor() {
        let rep = report_for(
            &trace_gen::random_branches(4_000, 17),
            MicroArch::baseline(),
        );
        assert!(
            rep.contribution(BottleneckSource::BPred) > 0.1,
            "random branches must expose BPred: {}",
            rep.render()
        );
    }

    #[test]
    fn divider_pressure_blames_int_mult_div() {
        let rep = report_for(&trace_gen::divide_heavy(1_500), MicroArch::baseline());
        assert!(
            rep.contribution(BottleneckSource::IntMultDiv) > 0.3,
            "divides through one unit must expose IntMultDiv: {}",
            rep.render()
        );
    }

    #[test]
    fn tiny_regfile_blames_int_rf() {
        // Independent L2-resident loads (latency ~14) with only 34 physical
        // integer registers: sustaining the memory parallelism would need
        // throughput × lifetime ≈ 68 in-flight registers, so the register
        // file throttles issue while ports, queues and ALUs have headroom —
        // IntRF is the binding resource.
        use archx_sim::isa::{Instruction, Reg};
        let mut arch = MicroArch::baseline();
        arch.int_rf = 34;
        arch.rob_entries = 256;
        arch.iq_entries = 80;
        arch.lq_entries = 48;
        arch.rd_wr_ports = 4;
        let instrs: Vec<Instruction> = (0..20_000usize)
            .map(|k| {
                let pc = 0x1000 + 4 * (k as u64 % 512);
                Instruction::load(
                    pc,
                    0x10_0000 + (k as u64 * 128) % (64 * 1024),
                    Reg::int(1),
                    Reg::int((k % 24) as u8 + 2),
                )
            })
            .collect();
        let rep = report_for(&instrs, arch);
        assert!(
            rep.contribution(BottleneckSource::IntRf) > 0.15,
            "starved IntRF must dominate: {}",
            rep.render()
        );
        // Among the rename-checked resources, IntRF must rank first.
        for other in [
            BottleneckSource::Rob,
            BottleneckSource::Iq,
            BottleneckSource::Lq,
            BottleneckSource::Sq,
            BottleneckSource::FpRf,
        ] {
            assert!(rep.contribution(BottleneckSource::IntRf) >= rep.contribution(other));
        }
    }

    #[test]
    fn merge_respects_weights() {
        let mut a = BottleneckReport {
            contributions: [0.0; NUM_SOURCES],
            length: 100,
        };
        a.contributions[BottleneckSource::Rob.index()] = 1.0;
        let mut b = BottleneckReport {
            contributions: [0.0; NUM_SOURCES],
            length: 300,
        };
        b.contributions[BottleneckSource::DCache.index()] = 1.0;
        let m = merge_reports(&[a, b], &[3.0, 1.0]);
        assert!((m.contribution(BottleneckSource::Rob) - 0.75).abs() < 1e-12);
        assert!((m.contribution(BottleneckSource::DCache) - 0.25).abs() < 1e-12);
        assert_eq!(m.length, 150);
    }

    #[test]
    #[should_panic(expected = "one weight per report")]
    fn merge_length_mismatch_panics() {
        let r = BottleneckReport {
            contributions: [0.0; NUM_SOURCES],
            length: 1,
        };
        let _ = merge_reports(&[r], &[1.0, 2.0]);
    }

    #[test]
    fn timeline_bins_partition_the_runtime() {
        let r = OooCore::new(MicroArch::baseline())
            .run(&trace_gen::mixed_workload(2_000, 31))
            .expect("simulates");
        let mut deg = induce(build_deg(&r));
        let path = critical_path(&mut deg);
        let bins = timeline(&deg, &path, 8);
        assert_eq!(bins.len(), 8);
        let total: u64 = bins.iter().map(|b| b.length).sum();
        assert_eq!(total, path.total_delay, "bins must partition the path");
        for b in &bins {
            assert!(b.total() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn timeline_detects_phase_changes() {
        use archx_sim::isa::{Instruction, OpClass, Reg};
        // First half: serial divides; second half: random branches — the
        // dominant source must differ between early and late bins.
        let mut instrs: Vec<Instruction> = trace_gen::divide_heavy(600);
        instrs.extend(
            trace_gen::random_branches(3_000, 3)
                .into_iter()
                .map(|mut i| {
                    i.pc += 0x10_0000;
                    if i.op == OpClass::BranchCond {
                        i.target += 0x10_0000;
                    }
                    let _ = Reg::int(1);
                    i
                }),
        );
        let r = OooCore::new(MicroArch::baseline())
            .run(&instrs)
            .expect("simulates");
        let mut deg = induce(build_deg(&r));
        let path = critical_path(&mut deg);
        let bins = timeline(&deg, &path, 4);
        let early_div = bins[0].contribution(BottleneckSource::IntMultDiv);
        let late_div = bins[3].contribution(BottleneckSource::IntMultDiv);
        assert!(
            early_div > late_div,
            "divider pressure must fade across phases: {early_div} vs {late_div}"
        );
    }

    #[test]
    fn ranked_is_descending_and_render_nonempty() {
        let rep = report_for(&trace_gen::mixed_workload(1_000, 21), MicroArch::baseline());
        let ranked = rep.ranked();
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert!(rep.render().contains("critical path length"));
    }
}
