//! Typed DAG storage for event-dependence graphs.
//!
//! Vertices are `(instruction, stage)` pairs carrying their measured event
//! time (the paper's two-dimensional coordinate system of Figure 7: X =
//! time, Y = instruction sequence). Edge weights are *implicit*: the weight
//! of an edge is the time interval between its endpoints, read off the
//! vertex times — exactly the paper's "dynamic time intervals between two
//! vertices".

use archx_sim::trace::{Cycle, FuKind, InstrIdx, ResourceKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Vertex identifier.
pub type NodeId = u32;

/// Pipeline stages of the new DEG formulation (Figure 7).
///
/// `M` exists for every instruction to keep the vertex layout uniform; for
/// non-memory instructions its time equals the issue time, making the
/// `I→M` edge a zero-interval pipeline edge (the paper's `I(i)→P(i)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// I-cache request.
    F1,
    /// I-cache response.
    F2,
    /// Enter fetch queue.
    F,
    /// Decode.
    Dc,
    /// Rename (resources granted).
    R,
    /// Dispatch into the issue queue.
    Dp,
    /// Issue.
    I,
    /// Memory access begins (= issue for non-memory ops).
    M,
    /// Complete / writeback.
    P,
    /// Commit.
    C,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 10] = [
        Stage::F1,
        Stage::F2,
        Stage::F,
        Stage::Dc,
        Stage::R,
        Stage::Dp,
        Stage::I,
        Stage::M,
        Stage::P,
        Stage::C,
    ];

    /// Rank within an instruction's pipeline chain.
    pub fn rank(self) -> u8 {
        self as u8
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Stage::F1 => "F1",
            Stage::F2 => "F2",
            Stage::F => "F",
            Stage::Dc => "DC",
            Stage::R => "R",
            Stage::Dp => "DP",
            Stage::I => "I",
            Stage::M => "M",
            Stage::P => "P",
            Stage::C => "C",
        };
        f.write_str(s)
    }
}

/// Number of vertices per instruction (fixed layout).
pub const STAGES_PER_INSTR: u32 = 10;

/// Edge types of the new DEG formulation (Table 2) plus the induced DEG's
/// virtual edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Horizontal pipeline dependence within one instruction.
    Pipeline,
    /// Branch / memory-dependence misprediction squash (`P(i)→F1(j)`).
    Mispredict,
    /// Hardware resource usage dependence (`R(i)→R(j)`).
    Resource(ResourceKind),
    /// Functional-unit usage dependence (`I(i)→I(j)`).
    Fu(FuKind),
    /// True data dependence (`I(i)→I(j)`).
    Data,
    /// Fetch-buffer slot dependence (`F(i)→F1(j)`): the new fetch block's
    /// I-cache access waited for instruction `i` to vacate the buffer.
    FetchSlot,
    /// Fetch bandwidth / fetch-queue dependence (`F(i)→F(j)`): `j` sat
    /// ready in the fetch buffer while the front end drained `i`.
    FetchBw,
    /// Memory-address-dependence misprediction (`M(i)→C(j)`): store `i`'s
    /// resolved address invalidated speculative load `j`, whose commit
    /// waited for the replay.
    MemDep,
    /// Virtual edge of the induced DEG (not a true dependence).
    Virtual,
}

impl EdgeKind {
    /// "Skewed" edges denote interactions between instructions (everything
    /// except pipeline and virtual edges).
    pub fn is_skewed(self) -> bool {
        matches!(
            self,
            EdgeKind::Mispredict
                | EdgeKind::Resource(_)
                | EdgeKind::Fu(_)
                | EdgeKind::Data
                | EdgeKind::FetchSlot
                | EdgeKind::FetchBw
                | EdgeKind::MemDep
        )
    }

    /// Edge cost for Algorithm 1: horizontal, virtual and true-data edges
    /// cost zero; other skewed edges cost their time interval.
    pub fn has_cost(self) -> bool {
        matches!(
            self,
            EdgeKind::Mispredict | EdgeKind::Resource(_) | EdgeKind::Fu(_) | EdgeKind::MemDep
        )
    }
}

/// A directed edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Source vertex.
    pub from: NodeId,
    /// Destination vertex.
    pub to: NodeId,
    /// Dependence type.
    pub kind: EdgeKind,
}

/// An event-dependence graph over a fixed instruction window.
///
/// Construction: [`Deg::new`] fixes the vertex set (10 stages per
/// instruction with their event times); [`Deg::add_edge`] appends edges
/// (which must go forward in the topological key order); analysis passes
/// then use [`Deg::topo_order`] and [`Deg::out_edges`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Deg {
    /// Event time per vertex, indexed by `NodeId`.
    times: Vec<Cycle>,
    /// Edge list.
    edges: Vec<Edge>,
    /// Number of instructions in the window.
    instrs: u32,
    /// CSR over outgoing edges, built lazily by `freeze`.
    #[serde(skip)]
    csr_starts: Vec<u32>,
    /// Edge indices sorted by source, aligned with `csr_starts`.
    #[serde(skip)]
    csr_edges: Vec<u32>,
}

/// Raw graph storage in transit between a consumed [`Deg`] and the next
/// one built from the same arena (capacities preserved, contents stale).
#[derive(Debug, Default)]
pub(crate) struct DegParts {
    pub(crate) times: Vec<Cycle>,
    pub(crate) edges: Vec<Edge>,
    pub(crate) csr_starts: Vec<u32>,
    pub(crate) csr_edges: Vec<u32>,
}

impl Deg {
    /// Creates a graph over `instrs` instructions with all vertex times.
    ///
    /// `times` must contain exactly `instrs × 10` entries in instruction-
    /// major, stage-minor order.
    ///
    /// # Panics
    ///
    /// Panics when the time vector has the wrong length.
    pub fn new(instrs: u32, times: Vec<Cycle>) -> Self {
        assert_eq!(
            times.len(),
            (instrs * STAGES_PER_INSTR) as usize,
            "expected {} vertex times",
            instrs * STAGES_PER_INSTR
        );
        Deg {
            times,
            edges: Vec::new(),
            instrs,
            csr_starts: Vec::new(),
            csr_edges: Vec::new(),
        }
    }

    /// Rebuilds a graph from recycled storage (see
    /// [`DegArena`](crate::arena::DegArena)): semantically identical to
    /// [`Deg::new`] but every vector keeps its prior capacity. The edge
    /// list and CSR buffers are cleared here; `times` must already hold the
    /// new vertex times.
    pub(crate) fn from_parts(instrs: u32, mut parts: DegParts) -> Self {
        assert_eq!(
            parts.times.len(),
            (instrs * STAGES_PER_INSTR) as usize,
            "expected {} vertex times",
            instrs * STAGES_PER_INSTR
        );
        parts.edges.clear();
        parts.csr_starts.clear();
        parts.csr_edges.clear();
        Deg {
            times: parts.times,
            edges: parts.edges,
            instrs,
            csr_starts: parts.csr_starts,
            csr_edges: parts.csr_edges,
        }
    }

    /// Decomposes the graph into its raw storage for recycling.
    pub(crate) fn into_parts(self) -> DegParts {
        DegParts {
            times: self.times,
            edges: self.edges,
            csr_starts: self.csr_starts,
            csr_edges: self.csr_edges,
        }
    }

    /// Number of instructions covered.
    pub fn instr_count(&self) -> u32 {
        self.instrs
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.times.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The vertex for `(instr, stage)`.
    pub fn node(&self, instr: InstrIdx, stage: Stage) -> NodeId {
        debug_assert!(instr < self.instrs);
        instr * STAGES_PER_INSTR + stage.rank() as u32
    }

    /// Inverse of [`Deg::node`].
    pub fn locate(&self, node: NodeId) -> (InstrIdx, Stage) {
        let instr = node / STAGES_PER_INSTR;
        let stage = Stage::ALL[(node % STAGES_PER_INSTR) as usize];
        (instr, stage)
    }

    /// Event time of a vertex.
    pub fn time(&self, node: NodeId) -> Cycle {
        self.times[node as usize]
    }

    /// Measured interval (edge weight) of an edge.
    pub fn interval(&self, edge: &Edge) -> Cycle {
        self.time(edge.to).saturating_sub(self.time(edge.from))
    }

    /// Topological sort key: `(time, instruction, stage)` — every edge of a
    /// well-formed DEG strictly increases this key.
    pub fn topo_key(&self, node: NodeId) -> (Cycle, InstrIdx, u8) {
        let (instr, stage) = self.locate(node);
        (self.time(node), instr, stage.rank())
    }

    /// Whether an edge respects the topological key order.
    pub fn is_forward(&self, from: NodeId, to: NodeId) -> bool {
        self.topo_key(from) < self.topo_key(to)
    }

    /// Adds an edge.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the edge does not go forward in topological
    /// key order — such an edge would create a cycle or a negative weight.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, kind: EdgeKind) {
        debug_assert!(
            self.is_forward(from, to),
            "edge {:?}->{:?} ({kind:?}) is not forward",
            self.locate(from),
            self.locate(to),
        );
        self.csr_starts.clear();
        self.csr_edges.clear();
        self.edges.push(Edge { from, to, kind });
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Vertices sorted topologically (by `(time, instruction, stage)`).
    ///
    /// Implemented as a counting sort over event times: node ids already
    /// encode `(instruction, stage)` lexicographically, so a stable
    /// id-order pass within each time bucket yields the full key order in
    /// O(V + T) instead of a comparison sort.
    pub fn topo_order(&self) -> Vec<NodeId> {
        let mut counts = Vec::new();
        let mut order = Vec::new();
        self.topo_order_into(&mut counts, &mut order);
        order
    }

    /// Allocation-free variant of [`Deg::topo_order`]: writes the order
    /// into `order`, using `counts` as counting-sort scratch. Both vectors
    /// are cleared and resized, keeping their capacity — the arena-reuse
    /// path of [`critical_path_in`](crate::critical::critical_path_in).
    pub fn topo_order_into(&self, counts: &mut Vec<u32>, order: &mut Vec<NodeId>) {
        order.clear();
        let n = self.node_count();
        if n == 0 {
            return;
        }
        let max_t = *self.times.iter().max().expect("non-empty") as usize;
        counts.clear();
        counts.resize(max_t + 2, 0);
        for &t in &self.times {
            counts[t as usize + 1] += 1;
        }
        for i in 0..=max_t {
            counts[i + 1] += counts[i];
        }
        order.resize(n, 0);
        for id in 0..n as NodeId {
            let t = self.times[id as usize] as usize;
            order[counts[t] as usize] = id;
            counts[t] += 1;
        }
    }

    /// Builds (if needed) and returns CSR access to outgoing edges.
    ///
    /// The CSR buffers are reused in place (capacity kept) when the graph
    /// came from recycled storage.
    pub fn freeze(&mut self) {
        if !self.csr_starts.is_empty() {
            return;
        }
        let n = self.node_count();
        let mut counts = std::mem::take(&mut self.csr_starts);
        counts.clear();
        counts.resize(n + 1, 0);
        for e in &self.edges {
            counts[e.from as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut slots = counts.clone();
        let mut csr = std::mem::take(&mut self.csr_edges);
        csr.clear();
        csr.resize(self.edges.len(), 0);
        for (idx, e) in self.edges.iter().enumerate() {
            csr[slots[e.from as usize] as usize] = idx as u32;
            slots[e.from as usize] += 1;
        }
        self.csr_starts = counts;
        self.csr_edges = csr;
    }

    /// Outgoing edge indices of `node` (requires a prior [`Deg::freeze`]).
    ///
    /// # Panics
    ///
    /// Panics if the CSR has not been built.
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = &Edge> + '_ {
        assert!(
            !self.csr_starts.is_empty(),
            "call freeze() before out_edges()"
        );
        let lo = self.csr_starts[node as usize] as usize;
        let hi = self.csr_starts[node as usize + 1] as usize;
        self.csr_edges[lo..hi]
            .iter()
            .map(move |&i| &self.edges[i as usize])
    }

    /// Validates all structural invariants (all edges forward, weights
    /// non-negative). Intended for tests.
    pub fn validate(&self) -> Result<(), String> {
        for e in &self.edges {
            if !self.is_forward(e.from, e.to) {
                return Err(format!(
                    "edge {:?} -> {:?} ({:?}) violates topological order",
                    self.locate(e.from),
                    self.locate(e.to),
                    e.kind
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_graph() -> Deg {
        // Two instructions; strictly increasing times per stage.
        let times: Vec<Cycle> = (0..20).map(|i| (i / 2) as Cycle).collect();
        Deg::new(2, times)
    }

    #[test]
    fn node_locate_roundtrip() {
        let g = tiny_graph();
        for instr in 0..2 {
            for stage in Stage::ALL {
                let n = g.node(instr, stage);
                assert_eq!(g.locate(n), (instr, stage));
            }
        }
    }

    #[test]
    fn interval_is_time_difference() {
        let mut g = tiny_graph();
        let a = g.node(0, Stage::F1);
        let b = g.node(0, Stage::C);
        g.add_edge(a, b, EdgeKind::Pipeline);
        let e = g.edges()[0];
        assert_eq!(g.interval(&e), g.time(b) - g.time(a));
    }

    #[test]
    fn csr_matches_edge_list() {
        let mut g = tiny_graph();
        let f1 = g.node(0, Stage::F1);
        let f2 = g.node(0, Stage::F2);
        let c = g.node(1, Stage::C);
        g.add_edge(f1, f2, EdgeKind::Pipeline);
        g.add_edge(f1, c, EdgeKind::Virtual);
        g.freeze();
        let outs: Vec<_> = g.out_edges(f1).map(|e| e.to).collect();
        assert_eq!(outs.len(), 2);
        assert!(outs.contains(&f2) && outs.contains(&c));
        assert_eq!(g.out_edges(f2).count(), 0);
    }

    #[test]
    fn topo_order_respects_edges() {
        let mut g = tiny_graph();
        g.add_edge(
            g.node(0, Stage::F1),
            g.node(0, Stage::F2),
            EdgeKind::Pipeline,
        );
        g.add_edge(g.node(0, Stage::I), g.node(1, Stage::I), EdgeKind::Data);
        let order = g.topo_order();
        let pos: std::collections::HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for e in g.edges() {
            assert!(pos[&e.from] < pos[&e.to]);
        }
        assert!(g.validate().is_ok());
    }

    #[test]
    fn skewed_and_cost_classification() {
        assert!(EdgeKind::Data.is_skewed());
        assert!(EdgeKind::Mispredict.is_skewed());
        assert!(!EdgeKind::Pipeline.is_skewed());
        assert!(!EdgeKind::Virtual.is_skewed());
        assert!(
            !EdgeKind::Data.has_cost(),
            "true data deps cost zero (paper §4.2)"
        );
        assert!(EdgeKind::Resource(ResourceKind::Rob).has_cost());
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn wrong_time_vector_panics() {
        let _ = Deg::new(2, vec![0; 5]);
    }
}
