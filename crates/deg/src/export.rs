//! Graph export for visualisation and external analysis: Graphviz DOT and
//! a compact JSON-lines edge dump.

use crate::critical::CriticalPath;
use crate::graph::{Deg, EdgeKind};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Options controlling DOT rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DotOptions {
    /// Include zero-interval pipeline edges (dense; off by default).
    pub include_zero_pipeline: bool,
    /// Include virtual edges.
    pub include_virtual: bool,
    /// Limit to the first N instructions (`usize::MAX` = all).
    pub max_instrs: usize,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            include_zero_pipeline: false,
            include_virtual: true,
            max_instrs: 64,
        }
    }
}

fn edge_style(kind: EdgeKind) -> (&'static str, &'static str) {
    match kind {
        EdgeKind::Pipeline => ("black", "solid"),
        EdgeKind::Mispredict => ("red", "bold"),
        EdgeKind::Resource(_) => ("orange", "bold"),
        EdgeKind::Fu(_) => ("purple", "solid"),
        EdgeKind::Data => ("blue", "solid"),
        EdgeKind::FetchSlot | EdgeKind::FetchBw => ("darkgreen", "solid"),
        EdgeKind::MemDep => ("crimson", "bold"),
        EdgeKind::Virtual => ("gray", "dashed"),
    }
}

/// Renders the DEG as Graphviz DOT, highlighting `path` when given.
///
/// Vertices are laid out by their measured event time (x) and instruction
/// index (y), matching the paper's Figure 7 visual convention.
pub fn to_dot(deg: &Deg, path: Option<&CriticalPath>, opts: &DotOptions) -> String {
    let on_path: HashSet<(u32, u32)> = path
        .map(|p| p.edges.iter().map(|e| (e.from, e.to)).collect())
        .unwrap_or_default();
    let mut out =
        String::from("digraph deg {\n  rankdir=LR;\n  node [shape=plaintext, fontsize=10];\n");
    let limit = (opts.max_instrs as u32).min(deg.instr_count());
    for instr in 0..limit {
        for stage in crate::graph::Stage::ALL {
            let n = deg.node(instr, stage);
            let _ = writeln!(
                out,
                "  n{n} [label=\"{stage}(I{instr})\\n@{}\", pos=\"{},{}!\"];",
                deg.time(n),
                deg.time(n),
                -(instr as i64)
            );
        }
    }
    for e in deg.edges() {
        let (fi, _) = deg.locate(e.from);
        let (ti, _) = deg.locate(e.to);
        if fi >= limit || ti >= limit {
            continue;
        }
        let w = deg.interval(e);
        if e.kind == EdgeKind::Pipeline && w == 0 && !opts.include_zero_pipeline {
            continue;
        }
        if e.kind == EdgeKind::Virtual && !opts.include_virtual {
            continue;
        }
        let (color, style) = edge_style(e.kind);
        let highlight = on_path.contains(&(e.from, e.to));
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{w}\", color={}, style={}{}];",
            e.from,
            e.to,
            if highlight { "red" } else { color },
            style,
            if highlight { ", penwidth=3" } else { "" }
        );
    }
    out.push_str("}\n");
    out
}

/// Dumps edges as JSON lines: one object per edge with stage-qualified
/// endpoints, kind, and measured interval.
pub fn to_jsonl(deg: &Deg) -> String {
    let mut out = String::new();
    for e in deg.edges() {
        let (fi, fs) = deg.locate(e.from);
        let (ti, ts) = deg.locate(e.to);
        let _ = writeln!(
            out,
            "{{\"from\":{{\"instr\":{fi},\"stage\":\"{fs}\",\"t\":{}}},\"to\":{{\"instr\":{ti},\"stage\":\"{ts}\",\"t\":{}}},\"kind\":\"{:?}\",\"interval\":{}}}",
            deg.time(e.from),
            deg.time(e.to),
            e.kind,
            deg.interval(e)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_deg;
    use crate::critical::critical_path;
    use crate::induced::induce;
    use archx_sim::{trace_gen, MicroArch, OooCore};

    fn sample() -> Deg {
        let r = OooCore::new(MicroArch::tiny())
            .run(&trace_gen::mixed_workload(30, 3))
            .expect("simulates");
        induce(build_deg(&r))
    }

    #[test]
    fn dot_is_well_formed() {
        let mut deg = sample();
        let path = critical_path(&mut deg);
        let dot = to_dot(&deg, Some(&path), &DotOptions::default());
        assert!(dot.starts_with("digraph deg {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("->"));
        assert!(
            dot.contains("penwidth=3"),
            "critical path must be highlighted"
        );
    }

    #[test]
    fn dot_respects_instruction_limit() {
        let deg = sample();
        let dot = to_dot(
            &deg,
            None,
            &DotOptions {
                max_instrs: 2,
                ..DotOptions::default()
            },
        );
        assert!(dot.contains("I1"));
        assert!(!dot.contains("(I2)"));
    }

    #[test]
    fn jsonl_has_one_line_per_edge() {
        let deg = sample();
        let jsonl = to_jsonl(&deg);
        assert_eq!(jsonl.lines().count(), deg.edge_count());
        for line in jsonl.lines().take(5) {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"interval\":"));
        }
    }
}
