#![warn(missing_docs)]
//! # archx-deg — dynamic event-dependence graphs and bottleneck analysis
//!
//! This crate implements the analytical core of the ArchExplorer paper:
//!
//! * [`graph`] — a compact typed DAG over `(instruction, pipeline-stage)`
//!   vertices placed on the real time axis;
//! * [`build`] — the paper's **new DEG formulation** (Section 4.1):
//!   pipeline, misprediction, hardware-resource (rename→rename,
//!   issue→issue) and true-data edges whose weights are *measured* time
//!   intervals, constructed from the simulator's per-instruction event
//!   record and resource scoreboard;
//! * [`induced`] — the **induced DEG** (Section 4.2): virtual edges added
//!   by Rule 1 (connect via closest time) and Rule 2 (connect via closest
//!   instruction sequence) so the critical path can chain consecutive
//!   resource-usage dependencies;
//! * [`critical`] — **Algorithm 1**: dynamic-programming longest path over
//!   a topological order, with edge costs chosen so the path is densely
//!   composed of resource-usage dependencies;
//! * [`bottleneck`] — resource contributions `c(b)` (Eq. 1) and their
//!   weighted multi-workload aggregation (Eq. 2);
//! * [`calipers`] — the *previous* DEG formulation (static weights,
//!   producer–consumer resource edges, fixed penalties) reimplemented as
//!   the comparison baseline of Figures 4–5 and the Calipers-guided DSE.
//!
//! ```
//! use archx_sim::{MicroArch, OooCore, trace_gen};
//! use archx_deg::prelude::*;
//!
//! let result = OooCore::new(MicroArch::baseline()).run(&trace_gen::mixed_workload(2_000, 1)).expect("simulates");
//! let deg = build_deg(&result);
//! let mut induced = induce(deg);
//! let path = critical_path(&mut induced);
//! // The new formulation is exact: path length == simulated runtime.
//! assert_eq!(path.total_delay, result.trace.cycles);
//! ```

pub mod arena;
pub mod bottleneck;
pub mod build;
pub mod calipers;
pub mod critical;
pub mod export;
pub mod graph;
pub mod induced;
pub mod naive;
pub mod validate;

/// Convenient re-exports of the main entry points.
pub mod prelude {
    pub use crate::arena::DegArena;
    pub use crate::bottleneck::{merge_reports, BottleneckReport, BottleneckSource, NUM_SOURCES};
    pub use crate::build::{build_deg, build_deg_in};
    pub use crate::critical::{
        critical_path, critical_path_cloned, critical_path_in, CriticalPath,
    };
    pub use crate::graph::{Deg, EdgeKind, NodeId, Stage};
    pub use crate::induced::induce;
    pub use crate::validate::{
        validate_deg, validate_exactness, validate_exactness_window, validate_times,
        ValidationError,
    };
}

pub use arena::DegArena;
pub use bottleneck::{merge_reports, BottleneckReport, BottleneckSource, NUM_SOURCES};
pub use build::{build_deg, build_deg_in};
pub use calipers::CalipersModel;
pub use critical::{critical_path, critical_path_cloned, critical_path_in, CriticalPath};
pub use graph::{Deg, Edge, EdgeKind, NodeId, Stage};
pub use induced::induce;
pub use validate::{
    validate_deg, validate_exactness, validate_exactness_window, validate_times, ValidationError,
};
