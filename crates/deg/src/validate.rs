//! DEG validation: structural invariants and cross-implementation oracles.
//!
//! The paper's method rests on two exact identities — the DEG is acyclic
//! with every edge weight equal to a measured stage interval (Table 2),
//! and Algorithm 1's critical-path length equals the simulated runtime.
//! This module machine-checks both, plus the agreement of the independent
//! implementations grown across PRs (allocating vs arena builders, CSR vs
//! cloned critical path), forming the oracle hierarchy every later
//! optimisation must pass:
//!
//! 1. [`validate_deg`] — structure: acyclicity (every edge forward in the
//!    topological key order), time-axis monotonicity along each
//!    instruction's pipeline chain, and Table 2 endpoint consistency per
//!    edge kind;
//! 2. [`validate_times`] — the graph's vertex times are exactly the
//!    simulator's event record (with implicit weights, this *is* the
//!    weight/interval consistency of Table 2);
//! 3. [`validate_exactness`] — the end-to-end oracle: builders agree,
//!    structure holds before and after inducing, `critical_path_in`
//!    agrees with `critical_path_cloned`, and the path length equals
//!    `SimResult` cycles.
//!
//! Every failure increments a `verify/violation/<check>` telemetry
//! counter and carries a stable machine-readable tag.

use crate::arena::DegArena;
use crate::build::{build_deg_window, build_deg_window_in};
use crate::critical::{critical_path_cloned, critical_path_in, CriticalPath};
use crate::graph::{Deg, EdgeKind, Stage};
use crate::induced::induce;
use archx_sim::trace::SimResult;

/// A failed DEG validation check.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationError {
    /// Stable machine-readable tag (e.g. `deg/endpoints`), mirrored by the
    /// `verify/violation/<check>` telemetry counter.
    pub check: &'static str,
    /// Rendered diagnostic.
    pub detail: String,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DEG validation failed [{}]: {}", self.check, self.detail)
    }
}

impl std::error::Error for ValidationError {}

#[cold]
fn fail(check: &'static str, detail: String) -> ValidationError {
    archx_telemetry::counter_add(&format!("verify/violation/{check}"), 1);
    ValidationError { check, detail }
}

/// Expected endpoint stages for each Table 2 edge kind; `None` leaves the
/// endpoints unconstrained (virtual edges).
fn expected_endpoints(kind: EdgeKind) -> Option<(Stage, Stage)> {
    match kind {
        EdgeKind::Pipeline => None, // consecutive ranks, checked separately
        EdgeKind::Mispredict => Some((Stage::P, Stage::F1)),
        EdgeKind::Resource(_) => Some((Stage::R, Stage::R)),
        EdgeKind::Fu(_) => Some((Stage::I, Stage::I)),
        EdgeKind::Data => Some((Stage::I, Stage::I)),
        EdgeKind::FetchSlot => Some((Stage::F, Stage::F1)),
        EdgeKind::FetchBw => Some((Stage::F, Stage::F)),
        EdgeKind::MemDep => Some((Stage::M, Stage::C)),
        EdgeKind::Virtual => None,
    }
}

/// Validates the structural invariants of a built (or induced) DEG:
/// acyclicity, per-instruction time monotonicity along the pipeline
/// chain, and Table 2 endpoint consistency.
///
/// # Errors
///
/// Returns the first failing check, tagged `deg/acyclic`,
/// `deg/stage_time` or `deg/endpoints`.
pub fn validate_deg(deg: &Deg) -> Result<(), ValidationError> {
    // Acyclicity: every edge strictly increases the topological key, so
    // no cycle can close and no weight can be negative.
    for e in deg.edges() {
        if !deg.is_forward(e.from, e.to) {
            return Err(fail(
                "deg/acyclic",
                format!(
                    "edge {:?} -> {:?} ({:?}) does not go forward",
                    deg.locate(e.from),
                    deg.locate(e.to),
                    e.kind
                ),
            ));
        }
    }
    // Time-axis monotonicity along each instruction's pipeline chain.
    for j in 0..deg.instr_count() {
        for w in Stage::ALL.windows(2) {
            let a = deg.time(deg.node(j, w[0]));
            let b = deg.time(deg.node(j, w[1]));
            if b < a {
                return Err(fail(
                    "deg/stage_time",
                    format!("instruction {j}: {} at {a} after {} at {b}", w[0], w[1]),
                ));
            }
        }
    }
    // Table 2 endpoint consistency.
    for e in deg.edges() {
        let (fi, fs) = deg.locate(e.from);
        let (ti, ts) = deg.locate(e.to);
        match e.kind {
            EdgeKind::Pipeline => {
                if fi != ti || ts.rank() != fs.rank() + 1 {
                    return Err(fail(
                        "deg/endpoints",
                        format!("pipeline edge {fi}:{fs} -> {ti}:{ts} is not a chain step"),
                    ));
                }
            }
            EdgeKind::Virtual => {}
            kind => {
                let (efs, ets) = expected_endpoints(kind).expect("skewed kinds constrained");
                let instr_ok = match kind {
                    // Producers and releasers are strictly older.
                    EdgeKind::Data | EdgeKind::MemDep => fi < ti,
                    _ => fi != ti,
                };
                if fs != efs || ts != ets || !instr_ok {
                    return Err(fail(
                        "deg/endpoints",
                        format!(
                            "{kind:?} edge {fi}:{fs} -> {ti}:{ts}, expected {efs} -> {ets} \
                             across instructions"
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Validates that the graph's vertex times are exactly the simulator's
/// event record over the window `[start, start + instr_count)` — with the
/// DEG's implicit weights this is the Table 2 weight/interval consistency.
///
/// # Errors
///
/// Returns a `deg/times` failure naming the first mismatched vertex.
pub fn validate_times(deg: &Deg, result: &SimResult, start: usize) -> Result<(), ValidationError> {
    for j in 0..deg.instr_count() {
        let ev = &result.trace.events[start + j as usize];
        let expect = [
            ev.f1, ev.f2, ev.f, ev.dc, ev.r, ev.dp, ev.i, ev.m, ev.p, ev.c,
        ];
        for (stage, &t) in Stage::ALL.iter().zip(&expect) {
            let got = deg.time(deg.node(j, *stage));
            if got != t {
                return Err(fail(
                    "deg/times",
                    format!(
                        "instruction {}: vertex {stage} holds {got}, trace says {t}",
                        start + j as usize
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// The end-to-end oracle over a full simulation result: builds the DEG
/// both ways (allocating and arena-recycled), validates structure and
/// times before and after inducing, cross-checks `critical_path_in`
/// against `critical_path_cloned`, and requires the path length to equal
/// the simulated runtime exactly. Returns the critical path for reuse.
///
/// # Errors
///
/// Returns the first failing check: any [`validate_deg`] /
/// [`validate_times`] tag, `deg/builders` (allocating vs arena builder
/// divergence), `deg/csr_vs_cloned` (critical-path implementation
/// divergence) or `deg/exactness` (path length != runtime).
///
/// # Panics
///
/// Panics on an empty trace (no instructions were simulated).
pub fn validate_exactness(result: &SimResult) -> Result<CriticalPath, ValidationError> {
    validate_exactness_window(result, 0, result.trace.events.len())
}

/// Windowed variant of [`validate_exactness`] over `[start, end)`. The
/// exactness identity `path.total_delay == result.trace.cycles` only
/// holds for the full window, so it is asserted exactly there; windowed
/// paths are instead required not to exceed the runtime.
///
/// # Errors
///
/// See [`validate_exactness`].
///
/// # Panics
///
/// Panics when the window is empty or out of range.
pub fn validate_exactness_window(
    result: &SimResult,
    start: usize,
    end: usize,
) -> Result<CriticalPath, ValidationError> {
    let mut arena = DegArena::new();
    let built = build_deg_window_in(&mut arena, result, start, end);
    let naive = build_deg_window(result, start, end);
    if built != naive {
        return Err(fail(
            "deg/builders",
            format!(
                "arena builder produced {} edges, allocating builder {}",
                built.edge_count(),
                naive.edge_count()
            ),
        ));
    }
    validate_deg(&built)?;
    validate_times(&built, result, start)?;

    let mut induced = induce(built);
    validate_deg(&induced)?;
    validate_times(&induced, result, start)?;

    let cloned = critical_path_cloned(&induced);
    let path = critical_path_in(&mut arena, &mut induced);
    if path != cloned {
        return Err(fail(
            "deg/csr_vs_cloned",
            format!(
                "critical_path_in found (cost {}, delay {}), critical_path_cloned \
                 (cost {}, delay {})",
                path.cost, path.total_delay, cloned.cost, cloned.total_delay
            ),
        ));
    }
    let full = start == 0 && end == result.trace.events.len();
    if full && path.total_delay != result.trace.cycles {
        return Err(fail(
            "deg/exactness",
            format!(
                "critical path spans {} cycles, simulation ran {}",
                path.total_delay, result.trace.cycles
            ),
        ));
    }
    if !full && path.total_delay > result.trace.cycles {
        return Err(fail(
            "deg/exactness",
            format!(
                "windowed critical path spans {} cycles, exceeding the {}-cycle run",
                path.total_delay, result.trace.cycles
            ),
        ));
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_deg;
    use crate::graph::NodeId;
    use archx_sim::{trace_gen, MicroArch, OooCore};

    fn run(n: usize, seed: u64) -> SimResult {
        OooCore::new(MicroArch::baseline())
            .run(&trace_gen::mixed_workload(n, seed))
            .expect("simulates")
    }

    #[test]
    fn healthy_results_pass_the_full_oracle() {
        let r = run(2_000, 3);
        let path = validate_exactness(&r).expect("oracle holds");
        assert_eq!(path.total_delay, r.trace.cycles);
    }

    #[test]
    fn windowed_oracle_holds() {
        let r = run(2_000, 5);
        validate_exactness_window(&r, 500, 1_500).expect("windowed oracle holds");
    }

    #[test]
    fn branchy_and_memory_bound_results_pass() {
        for r in [
            OooCore::new(MicroArch::baseline())
                .run(&trace_gen::random_branches(2_000, 7))
                .expect("simulates"),
            OooCore::new(MicroArch::tiny())
                .run(&trace_gen::pointer_chase(2_000, 8 << 20, 9))
                .expect("simulates"),
        ] {
            validate_exactness(&r).expect("oracle holds under pressure");
        }
    }

    #[test]
    fn corrupted_endpoint_is_reported() {
        let r = run(300, 1);
        let mut deg = build_deg(&r);
        // A Data edge must run I -> I; aim one at a commit vertex instead.
        let from = deg.node(0, Stage::I);
        let to = deg.node(200, Stage::C);
        deg.add_edge(from, to, EdgeKind::Data);
        let err = validate_deg(&deg).expect_err("bad endpoint must be caught");
        assert_eq!(err.check, "deg/endpoints");
        assert!(err.to_string().contains("Data"));
    }

    #[test]
    fn corrupted_time_is_reported() {
        let r = run(300, 2);
        let deg = build_deg(&r);
        // Rebuild with one vertex time nudged off the trace.
        let mut times: Vec<_> = (0..deg.node_count() as NodeId)
            .map(|v| deg.time(v))
            .collect();
        let victim = deg.node(100, Stage::I) as usize;
        times[victim] += 1;
        let forged = Deg::new(deg.instr_count(), times);
        let err = validate_times(&forged, &r, 0).expect_err("forged time must be caught");
        assert_eq!(err.check, "deg/times");
    }

    #[test]
    fn violations_count_in_telemetry() {
        archx_telemetry::global().set_enabled(true);
        let r = run(200, 4);
        let mut deg = build_deg(&r);
        let from = deg.node(0, Stage::I);
        let to = deg.node(150, Stage::C);
        deg.add_edge(from, to, EdgeKind::Data);
        let before = archx_telemetry::global()
            .report()
            .counter("verify/violation/deg/endpoints");
        let _ = validate_deg(&deg);
        let after = archx_telemetry::global()
            .report()
            .counter("verify/violation/deg/endpoints");
        assert_eq!(after, before + 1);
    }
}
