//! The *previous* DEG formulation (Fields et al. / Calipers style),
//! reimplemented as the paper's comparison baseline.
//!
//! Three vertices per instruction (`F` fetch, `E` execute, `C` commit) and
//! **statically assigned** edges and weights:
//!
//! * fetch/commit bandwidth chains `F(i)→F(i+1)`, `C(i)→C(i+1)`;
//! * a fixed front-end depth on `F(i)→E(i)`;
//! * producer–consumer resource edges (`C(i)→F(i+ROB)` for the ROB, and
//!   likewise for IQ/LQ/SQ) with zero weight — the "false dependence"
//!   error of paper Figure 5(a);
//! * a fixed misprediction penalty on `E(i)→F(i+1)` — the "static
//!   penalty" error;
//! * serialisation edges between consecutive memory (and divide)
//!   operations for port/unit contention — the "indistinguishable
//!   concurrent events" double-counting error of Figure 5(b);
//! * static operation latencies on data-dependence edges (loads use the
//!   static hit/L2 latency even when the actual access went to DRAM).
//!
//! The resulting critical-path length deviates from the measured runtime
//! (typically an underestimate), and its contribution report misattributes
//! overlapped events — exactly the deficiencies the new formulation fixes.

use crate::bottleneck::{BottleneckReport, BottleneckSource, NUM_SOURCES};
use archx_sim::config::{L1_HIT_CYCLES, L2_HIT_CYCLES};
use archx_sim::isa::{OpClass, RegClass};
use archx_sim::trace::SimResult;
use archx_sim::MicroArch;

const F: usize = 0;
const E: usize = 1;
const C: usize = 2;

/// Static-weight DEG model in the style of the prior work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalipersModel {
    /// Pipeline width for the bandwidth chains.
    pub width: u32,
    /// ROB producer–consumer distance.
    pub rob: u32,
    /// IQ producer–consumer distance.
    pub iq: u32,
    /// LQ distance (in loads).
    pub lq: u32,
    /// SQ distance (in stores).
    pub sq: u32,
    /// Static branch misprediction penalty in cycles.
    pub mispredict_penalty: u64,
    /// Static load-use latency for L1 hits.
    pub load_hit: u64,
    /// Static load-use latency assumed for misses: one blended constant
    /// for every miss, whether it hit L2 or went to DRAM — a deliberate
    /// static-assignment deficiency.
    pub load_miss: u64,
    /// Memory ports for the serialisation rule.
    pub mem_ports: u32,
    /// Integer divide latency.
    pub div_latency: u64,
}

impl CalipersModel {
    /// Derives the static model from a microarchitecture.
    pub fn from_arch(arch: &MicroArch) -> Self {
        CalipersModel {
            width: arch.width,
            rob: arch.rob_entries,
            iq: arch.iq_entries,
            lq: arch.lq_entries,
            sq: arch.sq_entries,
            mispredict_penalty: 8,
            load_hit: L1_HIT_CYCLES + 1,
            load_miss: L1_HIT_CYCLES + L2_HIT_CYCLES + 30,
            mem_ports: arch.rd_wr_ports,
            div_latency: 12,
        }
    }

    fn static_latency(&self, op: OpClass, missed: bool) -> u64 {
        match op {
            OpClass::Load => {
                if missed {
                    self.load_miss
                } else {
                    self.load_hit
                }
            }
            OpClass::Store => 2,
            op => op.exec_latency(),
        }
    }

    /// Builds the static graph, runs the longest-path analysis and returns
    /// the estimated runtime plus a bottleneck report in the same format
    /// as the new formulation's.
    pub fn analyze(&self, result: &SimResult) -> (u64, BottleneckReport) {
        let (est, report, _, _) = self.analyze_with_stats(result);
        (est, report)
    }

    /// Like [`CalipersModel::analyze`], also returning the graph's vertex
    /// and edge counts (for the paper's footnote-5 comparison).
    pub fn analyze_with_stats(&self, result: &SimResult) -> (u64, BottleneckReport, usize, usize) {
        let instrs = &result.instructions;
        let n = instrs.len();
        assert!(n > 0, "empty trace");
        let nodes = 3 * n;
        // Edge list: (from, to, weight, source attribution).
        let mut edges: Vec<(u32, u32, u64, BottleneckSource)> = Vec::with_capacity(8 * n);
        let id = |i: usize, s: usize| (3 * i + s) as u32;

        // Rename: last architectural writer.
        let mut last_int = [usize::MAX; 32];
        let mut last_fp = [usize::MAX; 32];
        // Occupancy chains for producer-consumer resource edges.
        let mut loads_seen: Vec<usize> = Vec::new();
        let mut stores_seen: Vec<usize> = Vec::new();
        let mut last_mem: Option<usize> = None;
        let mut mem_since = 0u32;
        let mut last_div: Option<usize> = None;

        for i in 0..n {
            let instr = &instrs[i];
            let ev = &result.trace.events[i];
            // Pipeline skeleton.
            edges.push((id(i, F), id(i, E), 5, BottleneckSource::Base));
            edges.push((id(i, E), id(i, C), 1, BottleneckSource::Base));
            if i + 1 < n {
                let bw = u64::from((i as u32 + 1).is_multiple_of(self.width));
                edges.push((id(i, F), id(i + 1, F), bw, BottleneckSource::Width));
                edges.push((id(i, C), id(i + 1, C), bw, BottleneckSource::Width));
                // Static misprediction penalty.
                if ev.mispredicted {
                    edges.push((
                        id(i, E),
                        id(i + 1, F),
                        self.mispredict_penalty,
                        BottleneckSource::BPred,
                    ));
                }
            }
            // Producer-consumer resource edges with zero weight (the false
            // dependence of Figure 5(a)).
            if i >= self.rob as usize {
                edges.push((
                    id(i - self.rob as usize, C),
                    id(i, F),
                    0,
                    BottleneckSource::Rob,
                ));
            }
            if i >= self.iq as usize {
                edges.push((
                    id(i - self.iq as usize, E),
                    id(i, F),
                    0,
                    BottleneckSource::Iq,
                ));
            }
            // Data dependencies with static latencies.
            for src in instr.srcs.iter().flatten() {
                let producer = match src.class {
                    RegClass::Int => last_int[src.idx as usize],
                    RegClass::Fp => last_fp[src.idx as usize],
                };
                if producer != usize::MAX {
                    let missed = result.trace.events[producer].dcache_miss;
                    let lat = self.static_latency(instrs[producer].op, missed);
                    let attr = if instrs[producer].op == OpClass::Load && missed {
                        BottleneckSource::DCache
                    } else {
                        BottleneckSource::TrueDep
                    };
                    edges.push((id(producer, E), id(i, E), lat, attr));
                }
            }
            if let Some(dst) = instr.dst {
                match dst.class {
                    RegClass::Int => last_int[dst.idx as usize] = i,
                    RegClass::Fp => last_fp[dst.idx as usize] = i,
                }
            }
            // Memory port serialisation: every port-th consecutive memory
            // op is chained (weight 1) — double counts overlapped accesses.
            if instr.op.is_mem() {
                if let Some(prev) = last_mem {
                    mem_since += 1;
                    if mem_since >= self.mem_ports {
                        edges.push((id(prev, E), id(i, E), 1, BottleneckSource::RdWrPort));
                        mem_since = 0;
                    }
                }
                last_mem = Some(i);
                // LQ/SQ producer-consumer.
                if instr.op == OpClass::Load {
                    loads_seen.push(i);
                    if loads_seen.len() > self.lq as usize {
                        let old = loads_seen[loads_seen.len() - 1 - self.lq as usize];
                        edges.push((id(old, C), id(i, F), 0, BottleneckSource::Lq));
                    }
                } else {
                    stores_seen.push(i);
                    if stores_seen.len() > self.sq as usize {
                        let old = stores_seen[stores_seen.len() - 1 - self.sq as usize];
                        edges.push((id(old, C), id(i, F), 0, BottleneckSource::Sq));
                    }
                }
            }
            // Divider serialisation.
            if matches!(instr.op, OpClass::IntDiv) {
                if let Some(prev) = last_div {
                    edges.push((
                        id(prev, E),
                        id(i, E),
                        self.div_latency,
                        BottleneckSource::IntMultDiv,
                    ));
                }
                last_div = Some(i);
            }
        }

        // Longest path over node-id order (which is topological here).
        let mut starts = vec![0u32; nodes + 1];
        for &(from, _, _, _) in &edges {
            starts[from as usize + 1] += 1;
        }
        for i in 0..nodes {
            starts[i + 1] += starts[i];
        }
        let mut slots = starts.clone();
        let mut csr = vec![0u32; edges.len()];
        for (idx, &(from, _, _, _)) in edges.iter().enumerate() {
            csr[slots[from as usize] as usize] = idx as u32;
            slots[from as usize] += 1;
        }
        let mut dist = vec![0u64; nodes];
        let mut pred: Vec<u32> = vec![u32::MAX; nodes];
        for node in 0..nodes {
            let d0 = dist[node];
            for &ei in &csr[starts[node] as usize..starts[node + 1] as usize] {
                let (_, to, w, _) = edges[ei as usize];
                if d0 + w > dist[to as usize] {
                    dist[to as usize] = d0 + w;
                    pred[to as usize] = ei;
                }
            }
        }
        let sink = id(n - 1, C) as usize;
        let estimate = dist[sink];

        // Attribute the critical path.
        let mut cycles = [0u64; NUM_SOURCES];
        let mut cur = sink;
        while pred[cur] != u32::MAX {
            let (from, _, w, attr) = edges[pred[cur] as usize];
            cycles[attr.index()] += w;
            cur = from as usize;
        }
        let mut contributions = [0.0f64; NUM_SOURCES];
        for (i, c) in cycles.iter().enumerate() {
            contributions[i] = *c as f64 / estimate.max(1) as f64;
        }
        (
            estimate,
            BottleneckReport {
                contributions,
                length: estimate,
            },
            nodes,
            edges.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archx_sim::{trace_gen, MicroArch, OooCore};

    fn run(trace: &[archx_sim::Instruction]) -> SimResult {
        OooCore::new(MicroArch::baseline())
            .run(trace)
            .expect("simulates")
    }

    #[test]
    fn estimate_deviates_from_actual_on_memory_code() {
        // DRAM misses are invisible to the static model: it must
        // underestimate a cache-hostile trace.
        let r = run(&trace_gen::pointer_chase(3_000, 32 << 20, 3));
        let model = CalipersModel::from_arch(&MicroArch::baseline());
        let (est, _) = model.analyze(&r);
        assert!(
            (est as f64) < 0.9 * r.trace.cycles as f64,
            "static model should underestimate: {est} vs {}",
            r.trace.cycles
        );
    }

    #[test]
    fn estimate_reasonable_on_simple_code() {
        let r = run(&trace_gen::linear_int_chain(2_000));
        let model = CalipersModel::from_arch(&MicroArch::baseline());
        let (est, _) = model.analyze(&r);
        let ratio = est as f64 / r.trace.cycles as f64;
        assert!(
            (0.4..=1.6).contains(&ratio),
            "chain estimate ratio {ratio} out of range"
        );
    }

    #[test]
    fn overestimates_port_contention_vs_new_formulation() {
        // Many independent memory ops through one port: the static model
        // serialises all of them; the new DEG distinguishes overlap.
        let r = run(&trace_gen::store_load_pairs(2_000));
        let model = CalipersModel::from_arch(&MicroArch::baseline());
        let (_, rep) = model.analyze(&r);
        let new_deg = crate::induce(crate::build_deg(&r));
        let mut g = new_deg;
        let path = crate::critical::critical_path(&mut g);
        let new_rep = crate::bottleneck::analyze(&g, &path);
        let old_port = rep.contribution(BottleneckSource::RdWrPort) * rep.length as f64;
        let new_port = new_rep.contribution(BottleneckSource::RdWrPort) * new_rep.length as f64;
        assert!(
            old_port > new_port,
            "static port contribution {old_port:.0} must exceed the new formulation's {new_port:.0}"
        );
    }

    #[test]
    fn graph_stats_reported() {
        let r = run(&trace_gen::mixed_workload(500, 2));
        let model = CalipersModel::from_arch(&MicroArch::baseline());
        let (_, _, nodes, edges) = model.analyze_with_stats(&r);
        assert_eq!(nodes, 1500);
        assert!(edges > 1500);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_panics() {
        let r = SimResult {
            trace: archx_sim::PipelineTrace {
                events: vec![],
                cycles: 0,
            },
            stats: Default::default(),
            instructions: vec![],
        };
        let _ = CalipersModel::from_arch(&MicroArch::baseline()).analyze(&r);
    }
}
