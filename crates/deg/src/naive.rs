//! Naive per-instruction stall accounting — the "performance counters /
//! interval analysis" strawman of the paper's Section 2.3.
//!
//! Classic stall accounting sums, per instruction, the time it spent
//! blocked at each pipeline boundary and blames the associated structure:
//! rename-stall cycles on the exhausted queue, issue waits on operands or
//! units, fetch gaps on the front end. Because instructions overlap, the
//! same wall-clock cycle is blamed many times — the *double counting of
//! overlapped events* that motivates the critical-path formulation. The
//! report is normalised by total blamed cycles (not runtime), so it looks
//! like a sensible distribution while systematically over-weighting
//! whatever happens to overlap the most.

use crate::bottleneck::{BottleneckReport, BottleneckSource, NUM_SOURCES};
use archx_sim::config::L1_HIT_CYCLES;
use archx_sim::trace::{FuKind, ResourceKind, SimResult};

fn resource_source(kind: ResourceKind) -> BottleneckSource {
    match kind {
        ResourceKind::Rob => BottleneckSource::Rob,
        ResourceKind::Iq => BottleneckSource::Iq,
        ResourceKind::Lq => BottleneckSource::Lq,
        ResourceKind::Sq => BottleneckSource::Sq,
        ResourceKind::IntRf => BottleneckSource::IntRf,
        ResourceKind::FpRf => BottleneckSource::FpRf,
    }
}

fn fu_source(kind: FuKind) -> BottleneckSource {
    match kind {
        FuKind::IntAlu => BottleneckSource::IntAlu,
        FuKind::IntMultDiv => BottleneckSource::IntMultDiv,
        FuKind::FpAlu => BottleneckSource::FpAlu,
        FuKind::FpMultDiv => BottleneckSource::FpMultDiv,
        FuKind::RdWrPort => BottleneckSource::RdWrPort,
    }
}

/// Sums per-instruction stall intervals into a report, and also returns
/// the total blamed cycles (which exceed the runtime whenever instructions
/// overlap — the tell-tale of double counting).
pub fn naive_stall_report(result: &SimResult) -> (BottleneckReport, u64) {
    let mut cycles = [0u64; NUM_SOURCES];
    for (ev, instr) in result.trace.events.iter().zip(&result.instructions) {
        // Front-end gaps.
        let icache = ev.f2 - ev.f1;
        cycles[BottleneckSource::Base.index()] += icache.min(L1_HIT_CYCLES);
        cycles[BottleneckSource::ICache.index()] += icache.saturating_sub(L1_HIT_CYCLES);
        cycles[BottleneckSource::FetchQueue.index()] += ev.f - ev.f2;
        // Rename stalls: blame every resource that was short, for the whole
        // wait (naive accounting does not know which one was binding).
        let rename_wait = (ev.r - ev.dc).saturating_sub(1);
        for stall in &ev.rename_stalls {
            cycles[resource_source(stall.resource).index()] += rename_wait;
        }
        // Issue wait: operands and/or units.
        let issue_wait = ev.i - ev.dp;
        if let Some(w) = ev.fu_wait {
            cycles[fu_source(w.fu).index()] += issue_wait;
        }
        if !ev.data_deps.is_empty() {
            cycles[BottleneckSource::TrueDep.index()] += issue_wait;
        }
        // Memory time beyond the hit latency.
        if instr.op.is_mem() {
            let mem = ev.p - ev.m;
            cycles[BottleneckSource::Base.index()] += mem.min(L1_HIT_CYCLES);
            cycles[BottleneckSource::DCache.index()] += mem.saturating_sub(L1_HIT_CYCLES);
        }
        // Squash penalties.
        if ev.mispredicted {
            cycles[BottleneckSource::BPred.index()] += 8; // a fixed guess, as counters do
        }
        // Commit-order wait.
        cycles[BottleneckSource::Width.index()] += (ev.c - ev.p).saturating_sub(1);
    }
    let blamed: u64 = cycles.iter().sum();
    let mut contributions = [0.0f64; NUM_SOURCES];
    for (i, c) in cycles.iter().enumerate() {
        contributions[i] = *c as f64 / blamed.max(1) as f64;
    }
    (
        BottleneckReport {
            contributions,
            length: result.trace.cycles,
        },
        blamed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use archx_sim::{trace_gen, MicroArch, OooCore};

    #[test]
    fn blamed_cycles_exceed_runtime_under_overlap() {
        // A parallel workload overlaps heavily: naive accounting blames far
        // more cycles than actually elapsed.
        let r = OooCore::new(MicroArch::baseline())
            .run(&trace_gen::mixed_workload(5_000, 3))
            .expect("simulates");
        let (_, blamed) = naive_stall_report(&r);
        assert!(
            blamed > 2 * r.trace.cycles,
            "naive accounting should double-count: blamed {blamed} vs runtime {}",
            r.trace.cycles
        );
    }

    #[test]
    fn distribution_is_normalised() {
        let r = OooCore::new(MicroArch::tiny())
            .run(&trace_gen::pointer_chase(3_000, 8 << 20, 5))
            .expect("simulates");
        let (rep, _) = naive_stall_report(&r);
        let total = rep.total();
        assert!((total - 1.0).abs() < 1e-9, "contributions sum to {total}");
        // On a dependent pointer chase the miss time lands partly on the
        // loads themselves (DCache) and partly on their consumers' waits
        // (TrueDep) — together they dominate.
        let mem_related = rep.contribution(BottleneckSource::DCache)
            + rep.contribution(BottleneckSource::TrueDep);
        assert!(mem_related > 0.3, "{}", rep.render());
    }

    #[test]
    fn overweights_overlapped_memory_relative_to_deg() {
        // Independent memory misses overlap; naive accounting charges each
        // in full while the critical path charges the serialised span.
        use crate::{build_deg, critical, induce};
        let mut arch = MicroArch::baseline();
        arch.rd_wr_ports = 2;
        let trace: Vec<_> = (0..4_000usize)
            .map(|k| {
                archx_sim::isa::Instruction::load(
                    0x1000 + 4 * (k as u64 % 256),
                    (k as u64).wrapping_mul(0x9E37_79B9) % (32 << 20),
                    archx_sim::isa::Reg::int(1),
                    archx_sim::isa::Reg::int((k % 24) as u8 + 2),
                )
            })
            .collect();
        let r = OooCore::new(arch).run(&trace).expect("simulates");
        let (naive, blamed) = naive_stall_report(&r);
        let mut deg = induce(build_deg(&r));
        let path = critical::critical_path(&mut deg);
        let deg_rep = crate::bottleneck::analyze(&deg, &path);
        // Naive blames DCache for more absolute cycles than the DEG's
        // serialised attribution.
        let naive_dcache = naive.contribution(BottleneckSource::DCache) * blamed as f64;
        let deg_dcache = deg_rep.contribution(BottleneckSource::DCache) * path.total_delay as f64;
        assert!(
            naive_dcache > deg_dcache,
            "naive {naive_dcache:.0} must over-blame vs DEG {deg_dcache:.0}"
        );
    }
}
