//! Tiny table/CSV emitter used by all experiment binaries, plus the
//! shared telemetry reporting that every binary exposes through the
//! `telemetry=json|pretty|off` argument.

use archexplorer::telemetry;
use std::fmt::Write as _;

/// An in-memory table that renders as aligned text or CSV.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) -> &mut Self {
        let r: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(r.len(), self.header.len(), "row width mismatch");
        self.rows.push(r);
        self
    }

    /// Renders aligned, human-readable text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:>w$}", w = w);
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Renders CSV (no quoting — cells must not contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Renders the global telemetry report according to `mode` (the value of
/// the shared `telemetry=json|pretty|off` argument) to stderr. `pretty`
/// renders the span timers through a [`Table`], matching the binaries'
/// other output. Unknown modes fall back to `off` with a warning.
pub fn emit_telemetry(mode: &str) {
    match mode {
        "off" => {}
        "json" => eprintln!("{}", telemetry::global().report().to_json()),
        "pretty" => {
            let report = telemetry::global().report();
            if report.counters.is_empty() && report.timers.is_empty() {
                eprintln!("(no telemetry recorded)");
                return;
            }
            let mut t = Table::new(["metric", "count", "total_ms", "mean_us", "max_us"]);
            for (name, v) in &report.counters {
                t.row([
                    name.clone(),
                    v.to_string(),
                    String::new(),
                    String::new(),
                    String::new(),
                ]);
            }
            for timer in &report.timers {
                t.row([
                    timer.name.clone(),
                    timer.count.to_string(),
                    format!("{:.3}", timer.total_ns as f64 / 1e6),
                    format!("{:.1}", timer.mean_ns() / 1e3),
                    format!("{:.1}", timer.max_ns as f64 / 1e3),
                ]);
            }
            for h in &report.histograms {
                t.row([
                    h.name.clone(),
                    h.count.to_string(),
                    String::new(),
                    format!(
                        "{:.1}",
                        if h.count == 0 {
                            0.0
                        } else {
                            h.sum as f64 / h.count as f64
                        }
                    ),
                    h.max.to_string(),
                ]);
            }
            eprint!("{}", t.to_text());
        }
        other => eprintln!("warning: telemetry={other} not recognised (json|pretty|off)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_text_and_csv() {
        let mut t = Table::new(["a", "bb"]);
        t.row(["1", "2"]).row(["333", "4"]);
        let text = t.to_text();
        assert!(text.contains("333"));
        let csv = t.to_csv();
        assert_eq!(csv, "a,bb\n1,2\n333,4\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        Table::new(["a"]).row(["1", "2"]);
    }
}
