//! **Extension study**: L1 cache replacement policies. The paper (§4.3)
//! notes that capacity/associativity cannot remove cache bottlenecks on
//! hard access patterns — "a better cache replacement policy" is the other
//! lever. This harness swaps LRU / FIFO / random on the baseline's L1s and
//! measures D-cache behaviour, IPC, and the D-cache bottleneck
//! contribution.
//!
//! ```sh
//! cargo run -p archx-bench --release --bin ext_replacement [instrs=N]
//! ```

use archexplorer::deg::prelude::*;
use archexplorer::prelude::*;
use archexplorer::sim::config::ReplPolicy;
use archexplorer::sim::OooCore;
use archx_bench::{Args, Table};

fn main() {
    let args = Args::from_env();
    let telemetry_mode = args.telemetry();
    let instrs = args.get_usize("instrs", 30_000);
    // Memory-sensitive workloads.
    let suite: Vec<Workload> = spec06_suite()
        .into_iter()
        .filter(|w| {
            ["mcf", "soplex", "dealII", "libquantum"]
                .iter()
                .any(|n| w.id.0.contains(n))
        })
        .collect();

    let mut t = Table::new(["workload", "policy", "d$_miss_%", "ipc", "dcache_contrib_%"]);
    for w in &suite {
        let trace = w.generate(instrs, 1);
        for policy in [ReplPolicy::Lru, ReplPolicy::Fifo, ReplPolicy::Random] {
            let mut arch = MicroArch::baseline();
            arch.replacement = policy;
            let r = OooCore::new(arch).run(&trace).expect("simulates");
            let mut deg = induce(build_deg(&r));
            let path = archexplorer::deg::critical::critical_path(&mut deg);
            let rep = archexplorer::deg::bottleneck::analyze(&deg, &path);
            t.row([
                w.id.0.to_string(),
                format!("{policy:?}"),
                format!("{:.2}", 100.0 * r.stats.dcache_miss_rate()),
                format!("{:.4}", r.stats.ipc()),
                format!("{:.2}", 100.0 * rep.contribution(BottleneckSource::DCache)),
            ]);
        }
    }
    println!(
        "Cache replacement-policy study ({instrs} instrs per workload)\n{}",
        t.to_text()
    );
    println!("expected: LRU ≤ FIFO ≈ random miss rates; the differences are small next to");
    println!("capacity effects — matching the paper's point that pattern-hostile workloads");
    println!("need smarter policies, not just bigger arrays.");
    archx_bench::emit::emit_telemetry(&telemetry_mode);
}
