//! **Table 5**: normalised comparison of the DSE methods — simulations
//! needed to reach a target hypervolume, and hypervolume attained at a
//! fixed simulation budget, with ratios relative to ArchRanker (as in the
//! paper).
//!
//! Paper shape: ArchExplorer reaches the target with the fewest
//! simulations (up to ~75% savings) and the highest hypervolume at the
//! fixed budget.
//!
//! ```sh
//! cargo run -p archx-bench --release --bin tab5_comparison \
//!     [budget=N] [instrs=N] [seed=S] [workloads=N] [target_frac=F] \
//!     [jobs=N] [threads=N]
//! ```
//!
//! `jobs=N` runs the four methods concurrently under a global thread
//! governor (`threads=` caps the total); the table is identical to
//! `jobs=1`.

use archexplorer::dse::campaign::{Campaign, ParallelConfig};
use archexplorer::prelude::*;
use archx_bench::{Args, Table};

fn main() {
    let args = Args::from_env();
    let telemetry_mode = args.telemetry();
    let cfg = CampaignConfig {
        sim_budget: args.get_u64("budget", 360),
        instrs_per_workload: args.get_usize("instrs", 20_000),
        seed: args.get_u64("seed", 1),
        trace_seed: None,
        threads: std::thread::available_parallelism().map_or(1, |n| n.get().min(8)),
        ..CampaignConfig::default()
    };
    let limit = args.get_usize("workloads", usize::MAX);
    // Target = this fraction of the best final hypervolume across methods.
    let target_frac: f64 = args.get_str("target_frac", "0.95").parse().unwrap_or(0.95);
    let jobs = args.get_usize("jobs", 1).max(1);
    let parallel = ParallelConfig {
        jobs,
        total_threads: args
            .get_usize("threads", jobs.max(archexplorer::dse::default_threads()))
            .max(1),
    };

    for (name, mut suite) in [("SPEC06", spec06_suite()), ("SPEC17", spec17_suite())] {
        suite.truncate(limit.max(1));
        let w = 1.0 / suite.len() as f64;
        for x in &mut suite {
            x.weight = w;
        }
        let methods = [
            Method::ArchRanker,
            Method::AdaBoost,
            Method::BoomExplorer,
            Method::ArchExplorer,
        ];
        eprintln!(
            "[{name}] running {} methods x {} sims ({} jobs)...",
            methods.len(),
            cfg.sim_budget,
            jobs
        );
        let campaign = Campaign::run_parallel(&methods, &space_ref(), &suite, &cfg, &parallel);

        let r = RefPoint::default();
        let step = (cfg.sim_budget / 60).max(1);
        // Target hypervolume: a fraction of the best final value, so every
        // run has a chance to reach it (the paper picks the y where curves
        // begin to converge).
        let best_final = campaign
            .logs
            .iter()
            .filter_map(|l| l.hypervolume_curve(&r, step).last().map(|&(_, hv)| hv))
            .fold(0.0f64, f64::max);
        let target = target_frac * best_final;
        let budget_x = cfg.sim_budget * 2 / 3;

        let ranker_sims = campaign
            .sims_to_reach("ArchRanker", &r, target, step)
            .unwrap_or(cfg.sim_budget);
        let ranker_hv = campaign.hv_at("ArchRanker", &r, budget_x).unwrap_or(0.0);

        let mut t = Table::new(["method", "sims@target", "ratio", "hv@budget", "ratio"]);
        for m in ["ArchRanker", "AdaBoost", "BOOM-Explorer", "ArchExplorer"] {
            let sims = campaign.sims_to_reach(m, &r, target, step);
            let hv = campaign.hv_at(m, &r, budget_x).unwrap_or(0.0);
            t.row([
                m.to_string(),
                sims.map_or("never".to_string(), |s| s.to_string()),
                sims.map_or("-".to_string(), |s| {
                    format!("{:.4}", s as f64 / ranker_sims as f64)
                }),
                format!("{hv:.4}"),
                format!("{:.4}", hv / ranker_hv.max(1e-12)),
            ]);
        }
        println!(
            "\nTable 5 [{name}]: target HV = {target:.4} ({}% of best), fixed budget = {budget_x} sims",
            (target_frac * 100.0) as u32
        );
        println!("{}", t.to_text());
    }
    archx_bench::emit::emit_telemetry(&telemetry_mode);
}

fn space_ref() -> DesignSpace {
    DesignSpace::table4()
}
