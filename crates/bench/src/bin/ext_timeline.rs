//! **Extension**: bottleneck evolution over time — the critical path
//! split into time windows, showing how the dominant resource changes as
//! a phased program moves between kernels (a CPI-stack-over-time view the
//! DEG makes exact).
//!
//! ```sh
//! cargo run -p archx-bench --release --bin ext_timeline [instrs=N] [bins=N]
//! ```

use archexplorer::deg::bottleneck::timeline;
use archexplorer::deg::prelude::*;
use archexplorer::prelude::*;
use archexplorer::sim::OooCore;
use archexplorer::workloads::{
    BranchProfile, MemoryProfile, OpMix, Phase, PhasedWorkload, WorkloadSpec,
};
use archx_bench::{Args, Table};

fn main() {
    let args = Args::from_env();
    let telemetry_mode = args.telemetry();
    let instrs = args.get_usize("instrs", 60_000);
    let bins = args.get_usize("bins", 6);

    // Three contrasting phases: FP compute → pointer chasing → branchy.
    let program = PhasedWorkload::new(vec![
        Phase {
            spec: WorkloadSpec {
                mix: OpMix::fp_default(),
                mean_dep_distance: 12.0,
                ..WorkloadSpec::balanced()
            },
            instrs: instrs / 3,
        },
        Phase {
            spec: WorkloadSpec {
                memory: MemoryProfile::hostile(),
                mean_dep_distance: 2.2,
                ..WorkloadSpec::balanced()
            },
            instrs: instrs / 3,
        },
        Phase {
            spec: WorkloadSpec {
                branches: BranchProfile::hostile(),
                ..WorkloadSpec::balanced()
            },
            instrs: instrs / 3,
        },
    ]);

    let r = OooCore::new(MicroArch::baseline())
        .run(&program.generate(instrs, 1))
        .expect("simulates");
    let mut deg = induce(build_deg(&r));
    let path = archexplorer::deg::critical::critical_path(&mut deg);
    let windows = timeline(&deg, &path, bins);

    println!(
        "bottleneck evolution over {} instructions / {} cycles ({bins} windows):\n",
        r.stats.committed, r.trace.cycles
    );
    let mut header = vec!["source".to_string()];
    header.extend((0..bins).map(|i| format!("w{i}_%")));
    let mut t = Table::new(header);
    for &src in &BottleneckSource::ALL {
        let vals: Vec<f64> = windows.iter().map(|w| w.contribution(src)).collect();
        if vals.iter().all(|&v| v < 0.02) {
            continue;
        }
        let mut row = vec![src.to_string()];
        row.extend(vals.iter().map(|v| format!("{:.1}", 100.0 * v)));
        t.row(row);
    }
    println!("{}", t.to_text());
    println!("expected: the dominant source shifts window to window as the phases change —");
    println!("FP/unit pressure first, D-cache in the middle, branch squashes at the end.");
    archx_bench::emit::emit_telemetry(&telemetry_mode);
}
