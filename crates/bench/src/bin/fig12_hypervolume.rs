//! **Figure 12**: Pareto-hypervolume-versus-simulations curves for every
//! DSE method on the SPEC06- and SPEC17-like suites.
//!
//! Paper shape: ArchExplorer's curve rises earliest and dominates the
//! black-box baselines across budgets.
//!
//! ```sh
//! cargo run -p archx-bench --release --bin fig12_hypervolume \
//!     [budget=N] [instrs=N] [seed=S] [workloads=N] [suite=spec06|spec17|both] \
//!     [seeds=N] [jobs=N] [threads=N]
//! ```
//!
//! Defaults keep the run in minutes; raise `budget`/`instrs` for smoother
//! curves (the paper runs to 3000+ simulations of 100 K-instruction
//! Simpoint windows). `jobs=N` fans the (method × seed) runs out across N
//! worker threads under a global governor (`threads=` caps the total);
//! results are identical to `jobs=1`, only wall-clock changes.

use archexplorer::dse::campaign::{Campaign, CampaignRunner, ParallelConfig};
use archexplorer::prelude::*;
use archx_bench::{Args, Table};

/// Multi-seed variant: prints mean ± std hypervolume per budget point.
fn run_suite_sweep(
    name: &str,
    suite: Vec<Workload>,
    cfg: &CampaignConfig,
    seeds: &[u64],
    parallel: &ParallelConfig,
) {
    let space = DesignSpace::table4();
    let methods = [
        Method::ArchExplorer,
        Method::AdaBoost,
        Method::ArchRanker,
        Method::BoomExplorer,
        Method::Random,
        Method::Calipers,
    ];
    eprintln!(
        "[{name}] sweeping {} methods x {} sims x {} seeds ({} jobs)...",
        methods.len(),
        cfg.sim_budget,
        seeds.len(),
        parallel.jobs
    );
    let r = RefPoint::default();
    let step = (cfg.sim_budget / 12).max(1);
    let curves = CampaignRunner::new()
        .parallel(*parallel)
        .sweep(&methods, &space, &suite, cfg, seeds, &r, step)
        .expect("seeds sample aligned budget grids");
    let mut header = vec!["sims".to_string()];
    header.extend(curves.iter().map(|c| c.method.clone()));
    let mut t = Table::new(header);
    let len = curves.iter().map(|c| c.points.len()).max().unwrap_or(0);
    for i in 0..len {
        let mut row = vec![((i as u64 + 1) * step).to_string()];
        for c in &curves {
            row.push(
                c.points
                    .get(i)
                    .map(|&(_, mean, std)| format!("{mean:.3}±{std:.3}"))
                    .unwrap_or_else(|| "-".to_string()),
            );
        }
        t.row(row);
    }
    println!(
        "
Figure 12 [{name}] over seeds {seeds:?}: mean ± std hypervolume
{}",
        t.to_text()
    );
}

fn run_suite(name: &str, suite: Vec<Workload>, cfg: &CampaignConfig, parallel: &ParallelConfig) {
    let space = DesignSpace::table4();
    let methods = [
        Method::ArchExplorer,
        Method::AdaBoost,
        Method::ArchRanker,
        Method::BoomExplorer,
        Method::Random,
        Method::Calipers,
    ];
    eprintln!(
        "[{name}] running {} methods x {} sims ({} workloads, {} instrs each, {} jobs)...",
        methods.len(),
        cfg.sim_budget,
        suite.len(),
        cfg.instrs_per_workload,
        parallel.jobs
    );
    let campaign = Campaign::run_parallel(&methods, &space, &suite, cfg, parallel);

    let r = RefPoint::default();
    let step = (cfg.sim_budget / 12).max(1);
    let curves = campaign.curves(&r, step);
    let mut header = vec!["sims".to_string()];
    header.extend(curves.iter().map(|(m, _)| m.clone()));
    let mut t = Table::new(header);
    let len = curves.iter().map(|(_, c)| c.len()).max().unwrap_or(0);
    for i in 0..len {
        let mut row = vec![((i as u64 + 1) * step).to_string()];
        for (_, curve) in &curves {
            row.push(
                curve
                    .get(i)
                    .map(|(_, hv)| format!("{hv:.4}"))
                    .unwrap_or_else(|| "-".to_string()),
            );
        }
        t.row(row);
    }
    println!(
        "\nFigure 12 [{name}]: Pareto hypervolume vs simulations\n{}",
        t.to_text()
    );

    // Shape check: where does ArchExplorer stand at the final budget?
    let finals: Vec<(String, f64)> = curves
        .iter()
        .filter_map(|(m, c)| c.last().map(|&(_, hv)| (m.clone(), hv)))
        .collect();
    let ax = finals
        .iter()
        .find(|(m, _)| m == "ArchExplorer")
        .map(|&(_, hv)| hv)
        .unwrap_or(0.0);
    let beaten = finals
        .iter()
        .filter(|(m, hv)| m != "ArchExplorer" && ax >= *hv)
        .count();
    println!(
        "[{name}] ArchExplorer final HV {ax:.4} ≥ {beaten}/{} baselines",
        finals.len() - 1
    );
}

fn main() {
    let args = Args::from_env();
    let telemetry_mode = args.telemetry();
    let cfg = CampaignConfig {
        sim_budget: args.get_u64("budget", 360),
        instrs_per_workload: args.get_usize("instrs", 20_000),
        seed: args.get_u64("seed", 1),
        trace_seed: None,
        threads: std::thread::available_parallelism().map_or(1, |n| n.get().min(8)),
        ..CampaignConfig::default()
    };
    let limit = args.get_usize("workloads", usize::MAX);
    let which = args.get_str("suite", "both");
    let n_seeds = args.get_usize("seeds", 1);
    let jobs = args.get_usize("jobs", 1).max(1);
    let parallel = ParallelConfig {
        jobs,
        total_threads: args
            .get_usize("threads", jobs.max(archexplorer::dse::default_threads()))
            .max(1),
    };

    let trim = |mut v: Vec<Workload>| {
        v.truncate(limit.max(1));
        let w = 1.0 / v.len() as f64;
        for x in &mut v {
            x.weight = w;
        }
        v
    };
    let seeds: Vec<u64> = (0..n_seeds as u64).map(|i| cfg.seed + i).collect();
    if which == "spec06" || which == "both" {
        if n_seeds > 1 {
            run_suite_sweep("SPEC06", trim(spec06_suite()), &cfg, &seeds, &parallel);
        } else {
            run_suite("SPEC06", trim(spec06_suite()), &cfg, &parallel);
        }
    }
    if which == "spec17" || which == "both" {
        if n_seeds > 1 {
            run_suite_sweep("SPEC17", trim(spec17_suite()), &cfg, &seeds, &parallel);
        } else {
            run_suite("SPEC17", trim(spec17_suite()), &cfg, &parallel);
        }
    }
    archx_bench::emit::emit_telemetry(&telemetry_mode);
}
