//! **Table 1**: the baseline microarchitecture specification and its
//! measured IPC / power / area on the SPEC CPU2017-like suite.
//!
//! Paper values: IPC 0.9418, 0.2027 W, 5.6609 mm². Our substrate differs
//! (synthetic workloads, McPAT-lite), so expect the same order of
//! magnitude, not equality.
//!
//! ```sh
//! cargo run -p archx-bench --release --bin tab1_baseline [instrs=N]
//! ```

use archexplorer::prelude::*;
use archx_bench::{Args, Table};

fn main() {
    let args = Args::from_env();
    let telemetry_mode = args.telemetry();
    let instrs = args.get_usize("instrs", 50_000);
    let session = Session::builder()
        .suite(Suite::Spec17)
        .instrs_per_workload(instrs)
        .build();

    let arch = MicroArch::baseline();
    let mut spec = Table::new(["component", "value"]);
    spec.row(["Pipeline width", &arch.width.to_string()])
        .row(["Fetch buffer (bytes)", &arch.fetch_buffer_bytes.to_string()])
        .row(["Fetch queue (uops)", &arch.fetch_queue_uops.to_string()])
        .row([
            "Tournament BP (local/global/choice)".to_string(),
            format!(
                "{}/{}/{}",
                arch.local_predictor, arch.global_predictor, arch.choice_predictor
            ),
        ])
        .row([
            "RAS / BTB".to_string(),
            format!("{} / {}", arch.ras_entries, arch.btb_entries),
        ])
        .row([
            "ROB/IQ/LQ/SQ".to_string(),
            format!(
                "{}/{}/{}/{}",
                arch.rob_entries, arch.iq_entries, arch.lq_entries, arch.sq_entries
            ),
        ])
        .row([
            "Int RF / Fp RF".to_string(),
            format!("{} / {}", arch.int_rf, arch.fp_rf),
        ])
        .row([
            "FUs (IntALU/IntMD/FpALU/FpMD/Port)".to_string(),
            format!(
                "{}/{}/{}/{}/{}",
                arch.int_alu, arch.int_mult_div, arch.fp_alu, arch.fp_mult_div, arch.rd_wr_ports
            ),
        ])
        .row([
            "L1 I$".to_string(),
            format!("{}-way, {} KB", arch.icache_assoc, arch.icache_kb),
        ])
        .row([
            "L1 D$".to_string(),
            format!("{}-way, {} KB", arch.dcache_assoc, arch.dcache_kb),
        ]);
    println!("Table 1: baseline microarchitecture\n{}", spec.to_text());

    let eval = session.evaluate(&arch).expect("baseline evaluates");
    let mut out = Table::new(["metric", "measured", "paper"]);
    out.row([
        "IPC".to_string(),
        format!("{:.4}", eval.ppa.ipc),
        "0.9418".to_string(),
    ])
    .row([
        "Power (W)".to_string(),
        format!("{:.4}", eval.ppa.power_w),
        "0.2027".to_string(),
    ])
    .row([
        "Area (mm²)".to_string(),
        format!("{:.4}", eval.ppa.area_mm2),
        "5.6609".to_string(),
    ])
    .row([
        "Perf²/(Power×Area)".to_string(),
        format!("{:.4}", eval.ppa.tradeoff()),
        "-".to_string(),
    ]);
    println!(
        "measured on {} SPEC17-like workloads, {} instrs each:\n{}",
        session.suite().len(),
        instrs,
        out.to_text()
    );

    println!("per-workload IPC:");
    let mut t = Table::new(["workload", "ipc", "power_w"]);
    for (w, ppa) in session.suite().iter().zip(&eval.per_workload) {
        t.row([
            w.id.0.to_string(),
            format!("{:.4}", ppa.ipc),
            format!("{:.4}", ppa.power_w),
        ]);
    }
    println!("{}", t.to_text());
    archx_bench::emit::emit_telemetry(&telemetry_mode);
}
