//! **BENCH_campaign**: wall-clock of a fixed tiny campaign (all 6 methods
//! × 2 seeds) executed serially versus fanned out across campaign jobs,
//! plus a hard determinism check — the parallel run must produce logs
//! identical to the serial run or the binary exits non-zero.
//!
//! ```sh
//! cargo run -p archx-bench --release --bin bench_campaign \
//!     [budget=N] [instrs=N] [workloads=N] [jobs=N] [out=PATH]
//! ```
//!
//! Writes a JSON record (`out=`, default `BENCH_campaign.json`) with both
//! timings and the speedup. On a single-core machine the speedup hovers
//! around 1.0 — the point of the record is the identical-results check and
//! an honest timing baseline; the speedup shows on multi-core CI.

use archexplorer::dse::campaign::{CampaignRunner, ParallelConfig, RunSpec};
use archexplorer::prelude::*;
use archexplorer::telemetry::JsonValue;
use archx_bench::Args;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args = Args::from_env();
    let telemetry_mode = args.telemetry();
    let jobs = args.get_usize("jobs", 4).max(2);
    let out = args.get_str("out", "BENCH_campaign.json");
    let cfg = CampaignConfig {
        sim_budget: args.get_u64("budget", 10),
        instrs_per_workload: args.get_usize("instrs", 800),
        seed: 1,
        trace_seed: None,
        threads: 1,
        ..CampaignConfig::default()
    };
    let mut suite = spec06_suite();
    suite.truncate(args.get_usize("workloads", 2).max(1));
    let w = 1.0 / suite.len() as f64;
    for x in &mut suite {
        x.weight = w;
    }
    let space = DesignSpace::table4();
    let seeds = [1u64, 2];
    let specs: Vec<RunSpec> = Method::ALL
        .iter()
        .flat_map(|&method| seeds.iter().map(move |&seed| RunSpec { method, seed }))
        .collect();

    eprintln!(
        "campaign bench: {} runs x {} sims, serial then jobs={jobs}...",
        specs.len(),
        cfg.sim_budget
    );
    let t0 = Instant::now();
    let serial = CampaignRunner::new()
        .run_specs(&specs, &space, &suite, &cfg)
        .expect("serial campaign");
    let serial_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel = CampaignRunner::new()
        .parallel(ParallelConfig {
            jobs,
            total_threads: jobs,
        })
        .run_specs(&specs, &space, &suite, &cfg)
        .expect("parallel campaign");
    let parallel_s = t1.elapsed().as_secs_f64();

    let identical = serial == parallel;
    let speedup = serial_s / parallel_s.max(1e-9);
    println!(
        "serial {serial_s:.3}s  jobs={jobs} {parallel_s:.3}s  speedup {speedup:.2}x  \
         identical results: {identical}"
    );

    let json = JsonValue::Obj(vec![
        ("bench".into(), JsonValue::Str("campaign".into())),
        ("methods".into(), JsonValue::Int(Method::ALL.len() as u64)),
        ("seeds".into(), JsonValue::Int(seeds.len() as u64)),
        ("runs".into(), JsonValue::Int(specs.len() as u64)),
        ("sim_budget".into(), JsonValue::Int(cfg.sim_budget)),
        (
            "instrs_per_workload".into(),
            JsonValue::Int(cfg.instrs_per_workload as u64),
        ),
        ("workloads".into(), JsonValue::Int(suite.len() as u64)),
        ("jobs".into(), JsonValue::Int(jobs as u64)),
        (
            "host_threads".into(),
            JsonValue::Int(std::thread::available_parallelism().map_or(1, |n| n.get()) as u64),
        ),
        ("serial_seconds".into(), JsonValue::Float(serial_s)),
        ("parallel_seconds".into(), JsonValue::Float(parallel_s)),
        ("speedup".into(), JsonValue::Float(speedup)),
        ("logs_identical".into(), JsonValue::Bool(identical)),
    ]);
    if let Err(e) = std::fs::write(&out, json.render() + "\n") {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");
    archx_bench::emit::emit_telemetry(&telemetry_mode);
    if identical {
        ExitCode::SUCCESS
    } else {
        eprintln!("error: parallel campaign diverged from serial results");
        ExitCode::FAILURE
    }
}
