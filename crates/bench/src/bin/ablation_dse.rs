//! Ablation study of the ArchExplorer loop's design choices (called out in
//! DESIGN.md): the full configuration versus (a) single-rung moves,
//! (b) naive zero-only shrinking, (c) no freeze rule, (d) no
//! intensifying restarts — all at identical budgets/seeds, scored by
//! Pareto hypervolume.
//!
//! ```sh
//! cargo run -p archx-bench --release --bin ablation_dse \
//!     [budget=N] [instrs=N] [seed=S] [workloads=N]
//! ```

use archexplorer::dse::archexplorer::{run_archexplorer, ArchExplorerOptions};
use archexplorer::dse::eval::Evaluator;
use archexplorer::prelude::*;
use archx_bench::{Args, Table};

fn main() {
    let args = Args::from_env();
    let telemetry_mode = args.telemetry();
    let budget = args.get_u64("budget", 240);
    let instrs = args.get_usize("instrs", 12_000);
    let seed = args.get_u64("seed", 1);
    let limit = args.get_usize("workloads", 6);
    let mut suite: Vec<Workload> = spec06_suite();
    suite.truncate(limit.max(1));
    let w = 1.0 / suite.len() as f64;
    for x in &mut suite {
        x.weight = w;
    }
    let space = DesignSpace::table4();

    let base = ArchExplorerOptions {
        seed,
        ..Default::default()
    };
    let variants: Vec<(&str, ArchExplorerOptions)> = vec![
        ("full", base.clone()),
        ("single-rung moves", {
            let mut o = base.clone();
            o.reassign.rungs_per_contribution = 0.0;
            o
        }),
        ("naive shrink (zero-only)", {
            let mut o = base.clone();
            o.reassign.cost_aware_shrink = false;
            o
        }),
        ("no freeze rule", {
            let mut o = base.clone();
            o.freeze_threshold = f64::NEG_INFINITY;
            o
        }),
        ("no intensifying restarts", {
            let mut o = base.clone();
            o.intensify_prob = 0.0;
            o
        }),
    ];

    let r = RefPoint::default();
    let mut t = Table::new(["variant", "final_hv", "best_tradeoff", "designs"]);
    for (name, opts) in variants {
        let ev = Evaluator::builder(suite.clone())
            .window(instrs)
            .seed(seed)
            .build();
        let log = run_archexplorer(&space, &ev, budget, &opts);
        let pts: Vec<_> = log.records.iter().map(|rec| rec.ppa).collect();
        let hv = hypervolume(&pts, &r);
        let best = log.best_tradeoff().map_or(0.0, |b| b.ppa.tradeoff());
        eprintln!("[{name}] done ({} designs)", log.records.len());
        t.row([
            name.to_string(),
            format!("{hv:.4}"),
            format!("{best:.4}"),
            log.records.len().to_string(),
        ]);
    }
    println!(
        "\nArchExplorer ablations ({budget} sims, {} workloads):\n{}",
        suite.len(),
        t.to_text()
    );
    archx_bench::emit::emit_telemetry(&telemetry_mode);
}
