//! **Figure 10**: a narrated ArchExplorer search path. Starting from a
//! design whose store queue is deliberately starved, each step prints the
//! bottleneck report, what got grown/shrunk, and the PPA movement — the
//! store-queue contribution should fall step by step while the trade-off
//! climbs.
//!
//! ```sh
//! cargo run -p archx-bench --release --bin fig10_search_path [instrs=N] [steps=N]
//! ```

use archexplorer::dse::eval::{Analysis, Evaluator};
use archexplorer::dse::reassign::{reassign, ReassignOptions};
use archexplorer::dse::space::ParamId;
use archexplorer::prelude::*;
use archx_bench::Args;
use std::collections::HashSet;

fn main() {
    let args = Args::from_env();
    let telemetry_mode = args.telemetry();
    let instrs = args.get_usize("instrs", 20_000);
    let steps = args.get_usize("steps", 5);

    // Store-heavy suite slice: the lbm-like workloads write constantly.
    let suite: Vec<Workload> = spec17_suite()
        .into_iter()
        .filter(|w| w.id.0.contains("lbm") || w.id.0.contains("cactu") || w.id.0.contains("x264"))
        .collect();
    let evaluator = Evaluator::builder(suite).window(instrs).seed(1).build();
    let space = DesignSpace::table4();

    // Start: a mid-size design with the smallest possible store queue.
    let mut arch = space.snap(&MicroArch::baseline());
    arch.sq_entries = 20;
    arch.rob_entries = 128;
    arch.iq_entries = 48;

    let frozen: HashSet<ParamId> = HashSet::new();
    let opts = ReassignOptions::default();
    let mut prev_tradeoff = None::<f64>;
    for step in 0..=steps {
        let e = evaluator
            .evaluate_with(&arch, Analysis::NewDeg)
            .expect("baseline-derived designs evaluate");
        let report = e.report.as_ref().expect("analysis requested");
        println!("=== step {step}: {} ===", arch);
        println!(
            "IPC {:.4}  power {:.4} W  area {:.4} mm²  trade-off {:.4}{}",
            e.ppa.ipc,
            e.ppa.power_w,
            e.ppa.area_mm2,
            e.ppa.tradeoff(),
            prev_tradeoff
                .map(|p| format!("  ({:+.1}% vs prev)", 100.0 * (e.ppa.tradeoff() / p - 1.0)))
                .unwrap_or_default()
        );
        println!(
            "SQ contribution: {:.2}%",
            100.0 * report.contribution(BottleneckSource::Sq)
        );
        println!("{}", report.render());
        prev_tradeoff = Some(e.ppa.tradeoff());
        if step == steps {
            break;
        }
        let r = reassign(&space, &arch, report, &frozen, &opts);
        println!("reassign: grow {:?}, shrink {:?}\n", r.grown, r.shrunk);
        if r.arch == arch {
            println!("(no further move possible)");
            break;
        }
        arch = r.arch;
    }
    archx_bench::emit::emit_telemetry(&telemetry_mode);
}
