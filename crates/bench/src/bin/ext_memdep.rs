//! **Extension study**: memory-dependence speculation (store-set style),
//! the "memory address dependence misprediction" the paper's Table 2 edge
//! set anticipates. Compares the conservative policy (loads wait for all
//! older store addresses) against speculative issue with a per-PC conflict
//! predictor, per workload, and shows the new `MemDep` bottleneck source
//! in the reports.
//!
//! ```sh
//! cargo run -p archx-bench --release --bin ext_memdep [instrs=N]
//! ```

use archexplorer::deg::prelude::*;
use archexplorer::prelude::*;
use archexplorer::sim::config::MemDepPolicy;
use archexplorer::sim::OooCore;
use archx_bench::{Args, Table};

fn main() {
    let args = Args::from_env();
    let telemetry_mode = args.telemetry();
    let instrs = args.get_usize("instrs", 30_000);
    let suite = spec17_suite();

    let mut cons_arch = MicroArch::baseline();
    cons_arch.mem_dep = MemDepPolicy::Conservative;
    let mut spec_arch = MicroArch::baseline();
    spec_arch.mem_dep = MemDepPolicy::StoreSets;

    let mut t = Table::new([
        "workload",
        "ipc_conservative",
        "ipc_storesets",
        "speedup_%",
        "violations",
        "memdep_contrib_%",
    ]);
    let (mut c_sum, mut s_sum) = (0.0, 0.0);
    for w in &suite {
        let trace = w.generate(instrs, 1);
        let cons = OooCore::new(cons_arch).run(&trace).expect("simulates");
        let spec = OooCore::new(spec_arch).run(&trace).expect("simulates");
        c_sum += cons.stats.ipc();
        s_sum += spec.stats.ipc();
        let mut deg = induce(build_deg(&spec));
        let path = archexplorer::deg::critical::critical_path(&mut deg);
        let rep = archexplorer::deg::bottleneck::analyze(&deg, &path);
        assert_eq!(
            path.total_delay, spec.trace.cycles,
            "exactness holds under speculation"
        );
        t.row([
            w.id.0.to_string(),
            format!("{:.4}", cons.stats.ipc()),
            format!("{:.4}", spec.stats.ipc()),
            format!(
                "{:+.2}",
                100.0 * (spec.stats.ipc() / cons.stats.ipc() - 1.0)
            ),
            spec.stats.mem_dep_violations.to_string(),
            format!("{:.3}", 100.0 * rep.contribution(BottleneckSource::MemDep)),
        ]);
    }
    println!(
        "Memory-dependence speculation extension (SPEC17-like, {instrs} instrs)\n{}",
        t.to_text()
    );
    println!(
        "suite average IPC: conservative {:.4} -> store-sets {:.4} ({:+.2}%)",
        c_sum / suite.len() as f64,
        s_sum / suite.len() as f64,
        100.0 * (s_sum / c_sum - 1.0)
    );
    println!("reading: speculation recovers load parallelism lost to unknown store addresses;");
    println!("violations are replays, visible as the MemDep source in the bottleneck report.");
    archx_bench::emit::emit_telemetry(&telemetry_mode);
}
