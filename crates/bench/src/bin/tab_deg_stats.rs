//! **Footnote 5 / overhead analysis**: graph-size comparison between the
//! induced DEG and the prior (Calipers-style) formulation on the SPEC17
//! suite, and the critical-path analysis runtime as a fraction of the
//! simulation runtime.
//!
//! Paper: the induced DEG has ~39.6% *more* vertices and ~51.7% *fewer*
//! edges than Calipers, and the longest-path evaluation costs ~2.2% of the
//! simulation runtime. (Calipers builds denser static edges per vertex;
//! our exact ratios depend on workload behaviour, but the direction —
//! more vertices, far fewer edges per vertex — should hold.)
//!
//! ```sh
//! cargo run -p archx-bench --release --bin tab_deg_stats [instrs=N]
//! ```

use archexplorer::deg::prelude::*;
use archexplorer::deg::CalipersModel;
use archexplorer::prelude::*;
use archexplorer::sim::OooCore;
use archx_bench::{Args, Table};
use std::time::Instant;

fn main() {
    let args = Args::from_env();
    let telemetry_mode = args.telemetry();
    let instrs = args.get_usize("instrs", 30_000);
    let suite = spec17_suite();
    let arch = MicroArch::baseline();
    let core = OooCore::new(arch);

    let mut t = Table::new([
        "workload",
        "deg_vertices",
        "deg_edges",
        "calipers_vertices",
        "calipers_edges",
        "sim_ms",
        "analysis_ms",
    ]);
    let (mut v_sum, mut e_sum, mut cv_sum, mut ce_sum) = (0f64, 0f64, 0f64, 0f64);
    let (mut sim_ms_sum, mut ana_ms_sum) = (0f64, 0f64);
    for w in &suite {
        let trace = w.generate(instrs, 1);
        let t0 = Instant::now();
        let result = core.run(&trace).expect("simulates");
        let sim_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = Instant::now();
        let mut deg = induce(build_deg(&result));
        let path = archexplorer::deg::critical::critical_path(&mut deg);
        let ana_ms = t1.elapsed().as_secs_f64() * 1e3;
        assert_eq!(path.total_delay, result.trace.cycles);

        let (_, _, cv, ce) = CalipersModel::from_arch(&arch).analyze_with_stats(&result);
        v_sum += deg.node_count() as f64;
        e_sum += deg.edge_count() as f64;
        cv_sum += cv as f64;
        ce_sum += ce as f64;
        sim_ms_sum += sim_ms;
        ana_ms_sum += ana_ms;
        t.row([
            w.id.0.to_string(),
            deg.node_count().to_string(),
            deg.edge_count().to_string(),
            cv.to_string(),
            ce.to_string(),
            format!("{sim_ms:.1}"),
            format!("{ana_ms:.1}"),
        ]);
    }
    println!(
        "Footnote-5 graph statistics ({instrs} instrs per workload)\n{}",
        t.to_text()
    );
    println!(
        "induced DEG vs Calipers: {:+.2}% vertices, {:+.2}% edges per vertex",
        100.0 * (v_sum / cv_sum - 1.0),
        100.0 * ((e_sum / v_sum) / (ce_sum / cv_sum) - 1.0)
    );
    println!(
        "analysis runtime: {:.2}% of this simulator's runtime (paper: 2.24% of gem5's)",
        100.0 * ana_ms_sum / sim_ms_sum
    );
    println!("note: gem5 runs ~2-3 orders of magnitude slower than this cycle-level model, so the");
    println!("      same absolute analysis cost is negligible against the paper's simulations.");
    println!("(paper: +39.59% vertices, -51.72% edges; direction should match)");
    archx_bench::emit::emit_telemetry(&telemetry_mode);
}
