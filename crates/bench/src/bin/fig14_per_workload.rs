//! **Figure 14** (the per-benchmark results bars): for each method's best
//! PPA-trade-off design, the per-workload trade-off across both suites.
//!
//! Paper shape: ArchExplorer's best design wins or ties on most workloads.
//!
//! ```sh
//! cargo run -p archx-bench --release --bin fig14_per_workload \
//!     [budget=N] [instrs=N] [seed=S] [workloads=N]
//! ```

use archexplorer::dse::campaign::{run_method, CampaignConfig};
use archexplorer::dse::eval::Evaluator;
use archexplorer::prelude::*;
use archx_bench::{Args, Table};

fn main() {
    let args = Args::from_env();
    let telemetry_mode = args.telemetry();
    let cfg = CampaignConfig {
        sim_budget: args.get_u64("budget", 240),
        instrs_per_workload: args.get_usize("instrs", 20_000),
        seed: args.get_u64("seed", 1),
        trace_seed: None,
        threads: std::thread::available_parallelism().map_or(1, |n| n.get().min(8)),
        ..CampaignConfig::default()
    };
    let limit = args.get_usize("workloads", usize::MAX);
    let methods = [
        Method::ArchExplorer,
        Method::AdaBoost,
        Method::ArchRanker,
        Method::BoomExplorer,
    ];

    for (name, mut suite) in [("SPEC06", spec06_suite()), ("SPEC17", spec17_suite())] {
        suite.truncate(limit.max(1));
        let w = 1.0 / suite.len() as f64;
        for x in &mut suite {
            x.weight = w;
        }
        let space = DesignSpace::table4();

        // Find each method's best design, then re-evaluate per workload.
        let mut best: Vec<(String, MicroArch)> = Vec::new();
        for &m in &methods {
            eprintln!("[{name}] {m}: exploring {} sims...", cfg.sim_budget);
            let log = run_method(m, &space, &suite, &cfg);
            let rec = log.best_tradeoff().expect("non-empty log");
            best.push((m.to_string(), rec.arch));
        }

        let evaluator = Evaluator::builder(suite.clone())
            .window(cfg.instrs_per_workload)
            .seed(cfg.seed)
            .threads(cfg.threads)
            .build();
        let mut header = vec!["workload".to_string()];
        header.extend(best.iter().map(|(m, _)| m.clone()));
        let mut t = Table::new(header);
        let evals: Vec<_> = best
            .iter()
            .map(|(_, arch)| evaluator.evaluate(arch).expect("winning designs evaluate"))
            .collect();
        let mut wins = vec![0usize; best.len()];
        for (wi, wl) in suite.iter().enumerate() {
            let mut row = vec![wl.id.0.to_string()];
            let tr: Vec<f64> = evals
                .iter()
                .map(|e| e.per_workload[wi].tradeoff())
                .collect();
            let top = tr
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .expect("non-empty");
            wins[top] += 1;
            for v in &tr {
                row.push(format!("{v:.4}"));
            }
            t.row(row);
        }
        println!("\nFigure 14 [{name}]: per-workload PPA trade-off of each method's best design");
        println!("{}", t.to_text());
        for ((m, _), w) in best.iter().zip(&wins) {
            println!("  {m}: best on {w}/{} workloads", suite.len());
        }
    }
    archx_bench::emit::emit_telemetry(&telemetry_mode);
}
