//! **Extension**: per-component power breakdown of a design under a
//! workload — the McPAT-style component table behind the headline watt
//! number, useful for sanity-checking where the model says the energy
//! goes.
//!
//! ```sh
//! cargo run -p archx-bench --release --bin ext_power_breakdown \
//!     [instrs=N] [workload=NAME]
//! ```

use archexplorer::prelude::*;
use archexplorer::sim::OooCore;
use archx_bench::{Args, Table};

fn main() {
    let args = Args::from_env();
    let telemetry_mode = args.telemetry();
    let instrs = args.get_usize("instrs", 30_000);
    let name = args.get_str("workload", "x264");
    let suite = spec17_suite();
    let workload = suite
        .iter()
        .find(|w| w.id.0.contains(&name))
        .unwrap_or(&suite[0]);

    let arch = MicroArch::baseline();
    let r = OooCore::new(arch)
        .run(&workload.generate(instrs, 1))
        .expect("simulates");
    let model = PowerModel::default();
    let ppa = model.evaluate(&arch, &r.stats);
    let mut breakdown = model.power_breakdown(&arch, &r.stats);
    breakdown.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite watts"));
    let total: f64 = breakdown.iter().map(|(_, w)| w).sum();

    println!(
        "power breakdown: {} on {} ({} instrs, IPC {:.3})\n",
        arch,
        workload.id,
        instrs,
        r.stats.ipc()
    );
    let mut t = Table::new(["component", "watts", "share_%"]);
    for (name, w) in &breakdown {
        t.row([
            name.to_string(),
            format!("{w:.4}"),
            format!("{:.1}", 100.0 * w / total),
        ]);
    }
    t.row([
        "TOTAL".to_string(),
        format!("{total:.4}"),
        "100.0".to_string(),
    ]);
    println!("{}", t.to_text());
    println!(
        "headline model power: {:.4} W (breakdown splits the same energy heuristically)",
        ppa.power_w
    );
    archx_bench::emit::emit_telemetry(&telemetry_mode);
}
