//! **Figure 1**: visualisation of the design space for a 458.sjeng-like
//! workload. Random designs are evaluated for PPA and embedded into two
//! dimensions — the paper uses t-SNE; we substitute a PCA projection
//! (power iteration, dependency-free). Output is a CSV of
//! `(x, y, perf, power, area)` suitable for any plotting tool, plus
//! non-smoothness statistics (nearest-neighbour PPA jumps).
//!
//! ```sh
//! cargo run -p archx-bench --release --bin fig1_design_space \
//!     [designs=N] [instrs=N] [seed=S]
//! ```

use archexplorer::prelude::*;
use archx_bench::{Args, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// First two principal components via power iteration on the covariance.
fn pca2(features: &[Vec<f64>]) -> Vec<(f64, f64)> {
    let n = features.len();
    let d = features[0].len();
    let mut mean = vec![0.0; d];
    for f in features {
        for (m, v) in mean.iter_mut().zip(f) {
            *m += v / n as f64;
        }
    }
    let centred: Vec<Vec<f64>> = features
        .iter()
        .map(|f| f.iter().zip(&mean).map(|(v, m)| v - m).collect())
        .collect();
    let mut components: Vec<Vec<f64>> = Vec::new();
    for k in 0..2 {
        let mut v = vec![0.0; d];
        v[k] = 1.0;
        for _ in 0..50 {
            // w = Cov · v, with deflation against previous components.
            let mut w = vec![0.0; d];
            for row in &centred {
                let dot: f64 = row.iter().zip(&v).map(|(a, b)| a * b).sum();
                for (wi, ri) in w.iter_mut().zip(row) {
                    *wi += dot * ri;
                }
            }
            for c in &components {
                let dot: f64 = w.iter().zip(c).map(|(a, b)| a * b).sum();
                for (wi, ci) in w.iter_mut().zip(c) {
                    *wi -= dot * ci;
                }
            }
            let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
            for wi in &mut w {
                *wi /= norm;
            }
            v = w;
        }
        components.push(v);
    }
    centred
        .iter()
        .map(|row| {
            let x: f64 = row.iter().zip(&components[0]).map(|(a, b)| a * b).sum();
            let y: f64 = row.iter().zip(&components[1]).map(|(a, b)| a * b).sum();
            (x, y)
        })
        .collect()
}

fn main() {
    let args = Args::from_env();
    let telemetry_mode = args.telemetry();
    let designs = args.get_usize("designs", 200);
    let instrs = args.get_usize("instrs", 20_000);
    let seed = args.get_u64("seed", 1);

    let suite: Vec<Workload> = spec06_suite()
        .into_iter()
        .filter(|w| w.id.0.contains("sjeng"))
        .collect();
    let evaluator = Evaluator::builder(suite).window(instrs).seed(seed).build();
    let space = DesignSpace::table4();
    let mut rng = StdRng::seed_from_u64(seed);

    let mut feats = Vec::with_capacity(designs);
    let mut ppas = Vec::with_capacity(designs);
    for _ in 0..designs {
        let arch = space.random(&mut rng);
        let Ok(e) = evaluator.evaluate(&arch) else {
            continue;
        };
        feats.push(space.features(&arch));
        ppas.push(e.ppa);
    }
    let xy = pca2(&feats);

    let mut t = Table::new(["x", "y", "perf", "power", "area"]);
    for ((x, y), ppa) in xy.iter().zip(&ppas) {
        t.row([
            format!("{x:.4}"),
            format!("{y:.4}"),
            format!("{:.4}", ppa.ipc),
            format!("{:.4}", ppa.power_w),
            format!("{:.4}", ppa.area_mm2),
        ]);
    }
    println!("Figure 1 data (PCA embedding of 458.sjeng-like PPA space):");
    println!("{}", t.to_csv());

    // Smoothness: how much of each metric a *linear* model over the
    // parameters explains (R²). The paper's Fig. 1 observation: the area
    // space is relatively flat because area is near-linear in the
    // parameters, while performance and power are rugged (many extrema,
    // non-smooth changes) — i.e. low linear R².
    let linear_r2 = |f: &dyn Fn(&PpaResult) -> f64| -> f64 {
        use archexplorer::dse::ml::linalg::{cholesky, cholesky_solve};
        let d = feats[0].len() + 1;
        let mut xtx = vec![0.0; d * d];
        let mut xty = vec![0.0; d];
        let ys: Vec<f64> = ppas.iter().map(f).collect();
        for (row, &y) in feats.iter().zip(&ys) {
            let mut x = Vec::with_capacity(d);
            x.push(1.0);
            x.extend_from_slice(row);
            for a in 0..d {
                for b in 0..d {
                    xtx[a * d + b] += x[a] * x[b];
                }
                xty[a] += x[a] * y;
            }
        }
        for a in 0..d {
            xtx[a * d + a] += 1e-8; // ridge jitter
        }
        let l = cholesky(&xtx, d).expect("SPD with jitter");
        let beta = cholesky_solve(&l, d, &xty);
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let mut ss_res = 0.0;
        let mut ss_tot = 0.0;
        for (row, &y) in feats.iter().zip(&ys) {
            let pred = beta[0] + row.iter().zip(&beta[1..]).map(|(a, b)| a * b).sum::<f64>();
            ss_res += (y - pred) * (y - pred);
            ss_tot += (y - mean) * (y - mean);
        }
        1.0 - ss_res / ss_tot.max(1e-12)
    };
    println!("linear-in-parameters R² of each metric (1.0 = perfectly flat/linear space):");
    println!(
        "  perf : {:.3} (rugged — low)",
        linear_r2(&|p: &PpaResult| p.ipc)
    );
    println!("  power: {:.3}", linear_r2(&|p: &PpaResult| p.power_w));
    println!(
        "  area : {:.3} (flat — near-linear in parameters)",
        linear_r2(&|p: &PpaResult| p.area_mm2)
    );
    archx_bench::emit::emit_telemetry(&telemetry_mode);
}
