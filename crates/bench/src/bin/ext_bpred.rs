//! **Extension study**: branch prediction *algorithms* at fixed storage.
//! The paper (§4.3) argues that once predictor capacity stops paying, only
//! a better algorithm helps — this harness quantifies that by swapping the
//! direction predictor (bimodal / gshare / tournament) on the Table 1
//! baseline and measuring misprediction rate, IPC, and the BPred
//! bottleneck contribution.
//!
//! ```sh
//! cargo run -p archx-bench --release --bin ext_bpred [instrs=N]
//! ```

use archexplorer::deg::prelude::*;
use archexplorer::prelude::*;
use archexplorer::sim::config::BpKind;
use archexplorer::sim::OooCore;
use archx_bench::{Args, Table};

fn main() {
    let args = Args::from_env();
    let telemetry_mode = args.telemetry();
    let instrs = args.get_usize("instrs", 30_000);
    // Branch-hostile workloads show the algorithm differences best.
    let suite: Vec<Workload> = spec06_suite()
        .into_iter()
        .filter(|w| {
            ["sjeng", "gcc", "bzip2", "h264"]
                .iter()
                .any(|n| w.id.0.contains(n))
        })
        .collect();

    let mut t = Table::new([
        "workload",
        "predictor",
        "bp_miss_%",
        "ipc",
        "bpred_contrib_%",
    ]);
    for w in &suite {
        let trace = w.generate(instrs, 1);
        for kind in [BpKind::Bimodal, BpKind::GShare, BpKind::Tournament] {
            let mut arch = MicroArch::baseline();
            arch.bp_kind = kind;
            let r = OooCore::new(arch).run(&trace).expect("simulates");
            let mut deg = induce(build_deg(&r));
            let path = archexplorer::deg::critical::critical_path(&mut deg);
            let rep = archexplorer::deg::bottleneck::analyze(&deg, &path);
            t.row([
                w.id.0.to_string(),
                format!("{kind:?}"),
                format!("{:.2}", 100.0 * r.stats.mispredict_rate()),
                format!("{:.4}", r.stats.ipc()),
                format!("{:.2}", 100.0 * rep.contribution(BottleneckSource::BPred)),
            ]);
        }
    }
    println!(
        "Branch-predictor algorithm study ({instrs} instrs per workload)\n{}",
        t.to_text()
    );
    println!("expected: tournament ≤ gshare ≤ bimodal misprediction rates at equal storage;");
    println!("the BPred bottleneck contribution falls with the better algorithm — the lever the");
    println!("paper says capacity alone cannot provide.");
    archx_bench::emit::emit_telemetry(&telemetry_mode);
}
