//! **Figures 4–5**: the prior DEG formulation's error sources versus the
//! new formulation.
//!
//! 1. *Static weights / false dependencies* (Fig. 5a): the static model's
//!    critical-path length deviates from the simulated runtime (the paper
//!    measured a 25.71% underestimate on 444.namd); the new DEG is exact.
//! 2. *Indistinguishable concurrent events* (Fig. 5b): the static model
//!    serialises overlapped memory-port uses, over-estimating the port's
//!    contribution (the paper measured +125% on 456.hmmer); the new DEG
//!    separates concurrent accesses.
//!
//! ```sh
//! cargo run -p archx-bench --release --bin fig5_deg_errors [instrs=N]
//! ```

use archexplorer::deg::prelude::*;
use archexplorer::deg::{bottleneck, CalipersModel};
use archexplorer::prelude::*;
use archexplorer::sim::OooCore;
use archx_bench::{Args, Table};

fn main() {
    let args = Args::from_env();
    let telemetry_mode = args.telemetry();
    let instrs = args.get_usize("instrs", 30_000);
    let suite = spec06_suite();
    let arch = MicroArch::baseline();
    let core = OooCore::new(arch);

    // --- Error 1: critical-path length accuracy, per workload ---
    let mut t = Table::new([
        "workload",
        "actual_cycles",
        "static_estimate",
        "static_err_%",
        "new_deg",
        "new_err_%",
    ]);
    let mut worst: (f64, String) = (0.0, String::new());
    for w in &suite {
        let r = core.run(&w.generate(instrs, 1)).expect("simulates");
        let (est, _) = CalipersModel::from_arch(&arch).analyze(&r);
        let mut deg = induce(build_deg(&r));
        let path = critical_path(&mut deg);
        let static_err = 100.0 * (est as f64 / r.trace.cycles as f64 - 1.0);
        let new_err = 100.0 * (path.total_delay as f64 / r.trace.cycles as f64 - 1.0);
        if static_err.abs() > worst.0.abs() {
            worst = (static_err, w.id.0.to_string());
        }
        t.row([
            w.id.0.to_string(),
            r.trace.cycles.to_string(),
            est.to_string(),
            format!("{static_err:+.2}"),
            path.total_delay.to_string(),
            format!("{new_err:+.2}"),
        ]);
    }
    println!(
        "Figure 5(a): critical-path length vs simulated runtime\n{}",
        t.to_text()
    );
    println!(
        "worst static-formulation error: {:+.2}% on {} (paper reports -25.71% on 444.namd);",
        worst.0, worst.1
    );
    println!("the new formulation is exact (0.00%) on every workload.\n");

    // --- Error 2: overlapped port-contention double counting ---
    // hmmer-like: dense, highly parallel memory traffic through one port.
    let hmmer = suite
        .iter()
        .find(|w| w.id.0.contains("hmmer"))
        .expect("suite contains hmmer");
    let r = core.run(&hmmer.generate(instrs, 1)).expect("simulates");
    let (est, static_rep) = CalipersModel::from_arch(&arch).analyze(&r);
    let mut deg = induce(build_deg(&r));
    let path = archexplorer::deg::critical::critical_path(&mut deg);
    let new_rep = bottleneck::analyze(&deg, &path);

    let static_port = static_rep.contribution(BottleneckSource::RdWrPort) * est as f64;
    let new_port = new_rep.contribution(BottleneckSource::RdWrPort) * new_rep.length as f64;
    println!("Figure 5(b): read/write-port contribution on 456.hmmer-like");
    println!(
        "  static formulation : {:.0} cycles ({:.2}% of its path)",
        static_port,
        100.0 * static_rep.contribution(BottleneckSource::RdWrPort)
    );
    println!(
        "  new formulation    : {:.0} cycles ({:.2}% of the runtime)",
        new_port,
        100.0 * new_rep.contribution(BottleneckSource::RdWrPort)
    );
    if new_port > 0.0 {
        println!(
            "  static over-estimate: {:+.1}% (paper reports +125%)",
            100.0 * (static_port / new_port - 1.0)
        );
    } else {
        println!("  static over-estimate: all {static_port:.0} attributed cycles are spurious (new DEG sees full overlap)");
    }
    archx_bench::emit::emit_telemetry(&telemetry_mode);
}
