//! **Figure 2**: comparative simulations that double one baseline
//! parameter at a time (SPEC CPU2017-like suite) and report each metric as
//! a percentage of the baseline, plus the PPA trade-off
//! `Perf²/(Power×Area)`.
//!
//! Paper shape: doubling FpALU worsens power/area with no performance
//! gain; doubling IntRF improves performance by ~23% and the trade-off by
//! ~27%.
//!
//! ```sh
//! cargo run -p archx-bench --release --bin fig2_doubling [instrs=N]
//! ```

use archexplorer::dse::space::ParamId;
use archexplorer::prelude::*;
use archx_bench::{Args, Table};

fn main() {
    let args = Args::from_env();
    let telemetry_mode = args.telemetry();
    let instrs = args.get_usize("instrs", 30_000);
    let session = Session::builder()
        .suite(Suite::Spec17)
        .instrs_per_workload(instrs)
        .build();

    let baseline = MicroArch::baseline();
    let base = session.evaluate(&baseline).expect("evaluates").ppa;
    println!(
        "baseline: IPC {:.4}, power {:.4} W, area {:.4} mm², trade-off {:.4}\n",
        base.ipc,
        base.power_w,
        base.area_mm2,
        base.tradeoff()
    );

    let doubled: &[(ParamId, &str)] = &[
        (ParamId::Rob, "ROB x2"),
        (ParamId::Iq, "IQ x2"),
        (ParamId::Lq, "LQ x2"),
        (ParamId::Sq, "SQ x2"),
        (ParamId::IntRf, "IntRF x2"),
        (ParamId::FpRf, "FpRF x2"),
        (ParamId::IntMultDiv, "IntMultDiv x2"),
        (ParamId::FpAlu, "FpALU x2"),
        (ParamId::FpMultDiv, "FpMultDiv x2"),
        (ParamId::FetchQueue, "FetchQueue x2"),
        (ParamId::FetchBuffer, "FetchBuf x2"),
        (ParamId::ICacheKb, "I$ x2"),
        (ParamId::DCacheKb, "D$ x2"),
        (ParamId::Width, "Width x2"),
    ];

    let mut t = Table::new([
        "configuration",
        "perf_%",
        "power_%",
        "area_%",
        "ppa_tradeoff_%",
    ]);
    for &(param, label) in doubled {
        let mut arch = baseline;
        param.set(&mut arch, param.get(&baseline) * 2);
        if arch.validate().is_err() {
            continue;
        }
        let ppa = session.evaluate(&arch).expect("evaluates").ppa;
        t.row([
            label.to_string(),
            format!("{:.2}", 100.0 * ppa.ipc / base.ipc),
            format!("{:.2}", 100.0 * ppa.power_w / base.power_w),
            format!("{:.2}", 100.0 * ppa.area_mm2 / base.area_mm2),
            format!("{:.2}", 100.0 * ppa.tradeoff() / base.tradeoff()),
        ]);
    }
    println!(
        "Figure 2: each metric as % of baseline (100 = unchanged)\n{}",
        t.to_text()
    );
    println!(
        "expected shape: IntRF x2 lifts perf & trade-off; FpALU/FpMultDiv x2 only add power/area."
    );
    archx_bench::emit::emit_telemetry(&telemetry_mode);
}
