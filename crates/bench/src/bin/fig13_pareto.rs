//! **Figure 13**: Pareto frontiers of all methods in the three pairwise
//! projections (performance–power, performance–area, area–power) plus the
//! distribution of PPA trade-offs over each method's Pareto designs.
//!
//! Paper shape: the frontiers are close in perf–power space, but
//! ArchExplorer dominates regions of perf–area and area–power, and its
//! Pareto designs have the best mean trade-off.
//!
//! ```sh
//! cargo run -p archx-bench --release --bin fig13_pareto \
//!     [budget=N] [instrs=N] [seed=S] [workloads=N]
//! ```

use archexplorer::dse::campaign::Campaign;
use archexplorer::prelude::*;
use archx_bench::{Args, Table};

fn main() {
    let args = Args::from_env();
    let telemetry_mode = args.telemetry();
    let cfg = CampaignConfig {
        sim_budget: args.get_u64("budget", 360),
        instrs_per_workload: args.get_usize("instrs", 20_000),
        seed: args.get_u64("seed", 1),
        trace_seed: None,
        threads: std::thread::available_parallelism().map_or(1, |n| n.get().min(8)),
        ..CampaignConfig::default()
    };
    let limit = args.get_usize("workloads", usize::MAX);
    let mut suite = spec06_suite();
    suite.truncate(limit.max(1));
    let w = 1.0 / suite.len() as f64;
    for x in &mut suite {
        x.weight = w;
    }

    let methods = [
        Method::ArchExplorer,
        Method::AdaBoost,
        Method::ArchRanker,
        Method::BoomExplorer,
    ];
    eprintln!(
        "[SPEC06] running {} methods x {} sims...",
        methods.len(),
        cfg.sim_budget
    );
    let campaign = Campaign::run(&methods, &DesignSpace::table4(), &suite, &cfg);

    println!("Figure 13 data: Pareto-frontier points per method (CSV)");
    let mut t = Table::new(["method", "ipc", "power_w", "area_mm2", "tradeoff"]);
    for log in &campaign.logs {
        for (_, ppa) in log.frontier() {
            t.row([
                log.method.clone(),
                format!("{:.4}", ppa.ipc),
                format!("{:.4}", ppa.power_w),
                format!("{:.4}", ppa.area_mm2),
                format!("{:.4}", ppa.tradeoff()),
            ]);
        }
    }
    println!("{}", t.to_csv());

    println!("PPA trade-off distribution of Pareto designs:");
    let mut s = Table::new(["method", "n", "mean", "min", "max"]);
    let mut means: Vec<(String, f64)> = Vec::new();
    for log in &campaign.logs {
        let tr: Vec<f64> = log.frontier().iter().map(|(_, p)| p.tradeoff()).collect();
        let mean = tr.iter().sum::<f64>() / tr.len().max(1) as f64;
        means.push((log.method.clone(), mean));
        s.row([
            log.method.clone(),
            tr.len().to_string(),
            format!("{mean:.4}"),
            format!("{:.4}", tr.iter().copied().fold(f64::INFINITY, f64::min)),
            format!(
                "{:.4}",
                tr.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            ),
        ]);
    }
    println!("{}", s.to_text());

    let ax = means
        .iter()
        .find(|(m, _)| m == "ArchExplorer")
        .map(|&(_, v)| v)
        .unwrap_or(0.0);
    for (m, v) in &means {
        if m != "ArchExplorer" {
            println!(
                "ArchExplorer mean trade-off vs {m}: {:+.2}% (paper: +7..+19%)",
                100.0 * (ax / v.max(1e-12) - 1.0)
            );
        }
    }
    archx_bench::emit::emit_telemetry(&telemetry_mode);
}
