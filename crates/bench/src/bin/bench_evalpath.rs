//! **BENCH_evalpath**: wall-clock of the evaluation hot path in three
//! configurations — cold (fresh trace store per pass, no arena reuse),
//! shared trace store (synthesise once, share `Arc`s), and shared store
//! plus per-thread evaluation arenas — with a hard identity gate: both
//! optimised paths must produce [`DesignEval`]s byte-identical to the cold
//! path or the binary exits non-zero.
//!
//! ```sh
//! cargo run -p archx-bench --release --bin bench_evalpath \
//!     [designs=N] [instrs=N] [workloads=N] [repeats=N] [seed=N] [out=PATH]
//! ```
//!
//! Writes a JSON record (`out=`, default `BENCH_evalpath.json`) with the
//! per-mode timings, speedups over cold, trace-store miss accounting, and
//! the identity verdicts.

use archexplorer::dse::eval::{Analysis, DesignEval, Evaluator};
use archexplorer::prelude::*;
use archexplorer::telemetry::JsonValue;
use archexplorer::workloads::TraceStore;
use archx_bench::Args;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

/// One pass: a fresh evaluator (no design cache carry-over) over the same
/// designs, resolving traces through `store`. Returns the evaluations in
/// design order.
fn run_pass(
    suite: &[Workload],
    instrs: usize,
    store: Arc<TraceStore>,
    arena_reuse: bool,
    designs: &[MicroArch],
) -> Vec<DesignEval> {
    let evaluator = Evaluator::builder(suite.to_vec())
        .window(instrs)
        .seed(1)
        .trace_store(store)
        .threads(1)
        .arena_reuse(arena_reuse)
        .build();
    designs
        .iter()
        .map(|arch| {
            evaluator
                .evaluate_with(arch, Analysis::NewDeg)
                .expect("baseline-lattice designs evaluate")
        })
        .collect()
}

fn main() -> ExitCode {
    let args = Args::from_env();
    let telemetry_mode = args.telemetry();
    let out = args.get_str("out", "BENCH_evalpath.json");
    let n_designs = args.get_usize("designs", 8).max(1);
    let instrs = args.get_usize("instrs", 3_000).max(100);
    let repeats = args.get_usize("repeats", 3).max(1);
    let seed = args.get_u64("seed", 1);

    let mut suite = spec06_suite();
    suite.truncate(args.get_usize("workloads", 2).max(1));
    let w = 1.0 / suite.len() as f64;
    for x in &mut suite {
        x.weight = w;
    }
    let space = DesignSpace::table4();
    let mut rng = StdRng::seed_from_u64(seed);
    let designs: Vec<MicroArch> = (0..n_designs).map(|_| space.random(&mut rng)).collect();

    eprintln!(
        "evalpath bench: {} designs x {} workloads x {instrs} instrs, {repeats} pass(es) per mode",
        designs.len(),
        suite.len()
    );

    // Cold: every pass synthesises its traces from scratch (fresh store)
    // and every simulation allocates its working set from scratch.
    let t0 = Instant::now();
    let mut cold_misses = 0u64;
    let mut cold: Vec<DesignEval> = Vec::new();
    for rep in 0..repeats {
        let store = Arc::new(TraceStore::new());
        let evals = run_pass(&suite, instrs, Arc::clone(&store), false, &designs);
        cold_misses += store.misses();
        if rep == 0 {
            cold = evals;
        }
    }
    let cold_s = t0.elapsed().as_secs_f64();

    // Shared store: one store across every pass — the first pass
    // synthesises, the rest share the `Arc<[Instruction]>`s zero-copy.
    let shared_store = Arc::new(TraceStore::new());
    let t1 = Instant::now();
    let mut shared: Vec<DesignEval> = Vec::new();
    for rep in 0..repeats {
        let evals = run_pass(&suite, instrs, Arc::clone(&shared_store), false, &designs);
        if rep == 0 {
            shared = evals;
        }
    }
    let shared_s = t1.elapsed().as_secs_f64();

    // Arena: shared store plus per-thread scratch arenas — simulations and
    // DEG analyses clear buffers instead of reallocating them.
    let arena_store = Arc::new(TraceStore::new());
    let t2 = Instant::now();
    let mut arena: Vec<DesignEval> = Vec::new();
    for rep in 0..repeats {
        let evals = run_pass(&suite, instrs, Arc::clone(&arena_store), true, &designs);
        if rep == 0 {
            arena = evals;
        }
    }
    let arena_s = t2.elapsed().as_secs_f64();

    let shared_identical = shared == cold;
    let arena_identical = arena == cold;
    let identical = shared_identical && arena_identical;
    let speedup_shared = cold_s / shared_s.max(1e-9);
    let speedup_arena = cold_s / arena_s.max(1e-9);
    println!(
        "cold {cold_s:.3}s  shared-store {shared_s:.3}s ({speedup_shared:.2}x)  \
         arena {arena_s:.3}s ({speedup_arena:.2}x)  identical results: {identical}"
    );
    println!(
        "trace synthesis: cold {} misses over {repeats} pass(es), shared {} miss(es), \
         arena {} miss(es)",
        cold_misses,
        shared_store.misses(),
        arena_store.misses()
    );

    let json = JsonValue::Obj(vec![
        ("bench".into(), JsonValue::Str("evalpath".into())),
        ("designs".into(), JsonValue::Int(designs.len() as u64)),
        ("workloads".into(), JsonValue::Int(suite.len() as u64)),
        ("instrs_per_workload".into(), JsonValue::Int(instrs as u64)),
        ("repeats".into(), JsonValue::Int(repeats as u64)),
        ("seed".into(), JsonValue::Int(seed)),
        ("cold_seconds".into(), JsonValue::Float(cold_s)),
        ("shared_store_seconds".into(), JsonValue::Float(shared_s)),
        ("arena_seconds".into(), JsonValue::Float(arena_s)),
        (
            "speedup_shared_store".into(),
            JsonValue::Float(speedup_shared),
        ),
        ("speedup_arena".into(), JsonValue::Float(speedup_arena)),
        ("cold_trace_misses".into(), JsonValue::Int(cold_misses)),
        (
            "shared_trace_misses".into(),
            JsonValue::Int(shared_store.misses()),
        ),
        (
            "arena_trace_misses".into(),
            JsonValue::Int(arena_store.misses()),
        ),
        (
            "shared_store_identical".into(),
            JsonValue::Bool(shared_identical),
        ),
        ("arena_identical".into(), JsonValue::Bool(arena_identical)),
        ("results_identical".into(), JsonValue::Bool(identical)),
    ]);
    if let Err(e) = std::fs::write(&out, json.render() + "\n") {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");
    archx_bench::emit::emit_telemetry(&telemetry_mode);
    if identical {
        ExitCode::SUCCESS
    } else {
        eprintln!("error: an optimised evaluation path diverged from the cold path");
        ExitCode::FAILURE
    }
}
