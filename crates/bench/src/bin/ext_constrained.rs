//! **Extension**: constrained DSE — maximise performance under power and
//! area budgets (the problem framing ArchRanker uses). Bottleneck-removal
//! search with a constrained objective versus random search at the same
//! simulation budget.
//!
//! ```sh
//! cargo run -p archx-bench --release --bin ext_constrained \
//!     [budget=N] [instrs=N] [power_cap=W] [area_cap=MM2] [workloads=N]
//! ```

use archexplorer::dse::archexplorer::{run_archexplorer, ArchExplorerOptions, Objective};
use archexplorer::dse::baselines::run_random_search;
use archexplorer::dse::eval::Evaluator;
use archexplorer::prelude::*;
use archx_bench::{Args, Table};

fn main() {
    let args = Args::from_env();
    let telemetry_mode = args.telemetry();
    let budget = args.get_u64("budget", 240);
    let instrs = args.get_usize("instrs", 15_000);
    let power_cap: f64 = args.get_str("power_cap", "0.15").parse().unwrap_or(0.15);
    let area_cap: f64 = args.get_str("area_cap", "4.5").parse().unwrap_or(4.5);
    let limit = args.get_usize("workloads", 6);

    let mut suite: Vec<Workload> = spec06_suite();
    suite.truncate(limit.max(1));
    let w = 1.0 / suite.len() as f64;
    for x in &mut suite {
        x.weight = w;
    }
    let space = DesignSpace::table4();
    let objective = Objective::ConstrainedPerf {
        power_cap,
        area_cap,
    };

    eprintln!("constrained DSE: max IPC s.t. power <= {power_cap} W, area <= {area_cap} mm²");
    let mut t = Table::new([
        "method",
        "best_feasible_ipc",
        "power_w",
        "area_mm2",
        "feasible_designs",
    ]);
    for (name, constrained) in [("ArchExplorer(constrained)", true), ("Random", false)] {
        let ev = Evaluator::builder(suite.clone())
            .window(instrs)
            .seed(1)
            .build();
        let log = if constrained {
            let opts = ArchExplorerOptions {
                seed: 1,
                objective,
                ..Default::default()
            };
            run_archexplorer(&space, &ev, budget, &opts)
        } else {
            run_random_search(&space, &ev, budget, 1)
        };
        let feasible: Vec<_> = log
            .records
            .iter()
            .filter(|r| objective.feasible(&r.ppa))
            .collect();
        let best = feasible
            .iter()
            .max_by(|a, b| a.ppa.ipc.partial_cmp(&b.ppa.ipc).expect("finite ipc"));
        match best {
            Some(rec) => t.row([
                name.to_string(),
                format!("{:.4}", rec.ppa.ipc),
                format!("{:.4}", rec.ppa.power_w),
                format!("{:.4}", rec.ppa.area_mm2),
                feasible.len().to_string(),
            ]),
            None => t.row([
                name.to_string(),
                "none".to_string(),
                "-".to_string(),
                "-".to_string(),
                "0".to_string(),
            ]),
        };
    }
    println!(
        "\nConstrained exploration ({budget} sims, {} workloads)\n{}",
        suite.len(),
        t.to_text()
    );
    println!("expected: the constrained bottleneck search finds a faster design inside the");
    println!("budgets than random sampling, and spends most of its budget on feasible points.");
    archx_bench::emit::emit_telemetry(&telemetry_mode);
}
