//! **Figure 3**: the motivating stepwise search — adjust resources by
//! their *necessity* (the fraction of rename stalls each caused, read off
//! the simulation trace, no DEG yet) for six simulations, tracking
//! performance, power, area and the PPA trade-off relative to the start.
//!
//! Paper shape: within six simulations the heuristic improves performance
//! slightly while cutting power and area, lifting the trade-off ~30%.
//!
//! ```sh
//! cargo run -p archx-bench --release --bin fig3_stepwise [instrs=N] [steps=N]
//! ```

use archexplorer::dse::space::{DesignSpace, ParamId};
use archexplorer::prelude::*;
use archexplorer::sim::trace::ResourceKind;
use archexplorer::sim::OooCore;
use archx_bench::{Args, Table};

/// Per-resource stall necessity, peak-occupancy fraction, and suite PPA.
fn necessity(
    arch: &MicroArch,
    suite: &[Workload],
    instrs: usize,
) -> ([f64; 6], [f64; 6], PpaResult) {
    let power = PowerModel::default();
    let mut stalls = [0u64; 6];
    let mut occ = [0.0f64; 6];
    let mut cycles = 0u64;
    let mut ipc = 0.0;
    let mut pw = 0.0;
    for w in suite {
        let r = OooCore::new(*arch)
            .run(&w.generate(instrs, 1))
            .expect("simulates");
        for i in 0..6 {
            stalls[i] += r.stats.rename_stall_cycles[i];
            occ[i] = occ[i].max(r.stats.avg_occupancy[i]);
        }
        cycles += r.stats.cycles;
        let ppa = power.evaluate(arch, &r.stats);
        ipc += ppa.ipc / suite.len() as f64;
        pw += ppa.power_w / suite.len() as f64;
    }
    let caps = [
        arch.rob_entries,
        arch.iq_entries,
        arch.lq_entries,
        arch.sq_entries,
        arch.int_rf.saturating_sub(32).max(1),
        arch.fp_rf.saturating_sub(32).max(1),
    ];
    let mut necessity = [0.0; 6];
    let mut occ_frac = [0.0; 6];
    for i in 0..6 {
        necessity[i] = stalls[i] as f64 / cycles.max(1) as f64;
        occ_frac[i] = occ[i] / caps[i] as f64;
    }
    (
        necessity,
        occ_frac,
        PpaResult {
            ipc,
            power_w: pw,
            area_mm2: power.area(arch),
        },
    )
}

fn param_of(kind: ResourceKind) -> ParamId {
    match kind {
        ResourceKind::Rob => ParamId::Rob,
        ResourceKind::Iq => ParamId::Iq,
        ResourceKind::Lq => ParamId::Lq,
        ResourceKind::Sq => ParamId::Sq,
        ResourceKind::IntRf => ParamId::IntRf,
        ResourceKind::FpRf => ParamId::FpRf,
    }
}

fn main() {
    let args = Args::from_env();
    let telemetry_mode = args.telemetry();
    let instrs = args.get_usize("instrs", 20_000);
    let steps = args.get_usize("steps", 6);
    let suite = spec17_suite();
    let space = DesignSpace::table4();

    let mut arch = space.snap(&MicroArch::baseline());
    let (_, _, base) = necessity(&arch, &suite, instrs);

    let mut t = Table::new(["step", "perf_%", "power_%", "area_%", "ppa_%", "action"]);
    t.row([
        "0".to_string(),
        "100.00".to_string(),
        "100.00".to_string(),
        "100.00".to_string(),
        "100.00".to_string(),
        "baseline".to_string(),
    ]);
    let mut frozen: Vec<ParamId> = Vec::new();
    let mut prev_tradeoff = base.tradeoff();
    let mut prev_arch = arch;
    for step in 1..=steps {
        let (nec, occ, _) = necessity(&arch, &suite, instrs);
        // Grow the most necessary resource; shrink resources that neither
        // stall anyone nor come close to full occupancy (the "reduce
        // redundant ones" half of the paper's heuristic).
        let mut action = String::new();
        let mut order: Vec<usize> = (0..6).collect();
        order.sort_by(|&a, &b| nec[b].partial_cmp(&nec[a]).expect("finite"));
        let mut top = 6;
        for &i in &order {
            let p = param_of(ResourceKind::ALL[i]);
            if nec[i] > 0.0 && !frozen.contains(&p) {
                if let Some(v) = space.next_larger(p, p.get(&arch)) {
                    p.set(&mut arch, v);
                    action.push_str(&format!("+{p} "));
                    top = i;
                    break;
                }
            }
        }
        for i in 0..6 {
            if i != top && nec[i] < 1e-6 && occ[i] < 0.55 {
                let p = param_of(ResourceKind::ALL[i]);
                if let Some(v) = space.next_smaller(p, p.get(&arch)) {
                    p.set(&mut arch, v);
                    action.push_str(&format!("-{p} "));
                }
            }
        }
        let (_, _, ppa) = necessity(&arch, &suite, instrs);
        // The architect watches the PPA: an increase that did not pay for
        // itself is reverted and not retried.
        if ppa.tradeoff() < prev_tradeoff && top < 6 {
            frozen.push(param_of(ResourceKind::ALL[top]));
            arch = prev_arch;
            action.push_str("(reverted)");
        } else {
            prev_tradeoff = ppa.tradeoff();
            prev_arch = arch;
        }
        t.row([
            step.to_string(),
            format!("{:.2}", 100.0 * ppa.ipc / base.ipc),
            format!("{:.2}", 100.0 * ppa.power_w / base.power_w),
            format!("{:.2}", 100.0 * ppa.area_mm2 / base.area_mm2),
            format!("{:.2}", 100.0 * ppa.tradeoff() / base.tradeoff()),
            action.trim().to_string(),
        ]);
    }
    println!(
        "Figure 3: stepwise necessity-driven search (six simulations)\n{}",
        t.to_text()
    );
    println!("expected shape: power/area drop as idle queues shrink; the trade-off climbs well above 100%.");
    archx_bench::emit::emit_telemetry(&telemetry_mode);
}
