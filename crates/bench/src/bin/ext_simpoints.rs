//! **Methodology check**: mini-SimPoint sampling accuracy. The paper
//! evaluates on SPEC Simpoints — representative intervals that stand in
//! for whole programs. This harness builds phased workloads, picks
//! simpoints by basic-block-vector clustering, and compares the
//! weighted-simpoint CPI estimate against full-trace simulation.
//!
//! ```sh
//! cargo run -p archx-bench --release --bin ext_simpoints \
//!     [instrs=N] [interval=N] [k=N]
//! ```

use archexplorer::prelude::*;
use archexplorer::sim::OooCore;
use archexplorer::workloads::{
    pick_simpoints, BranchProfile, MemoryProfile, OpMix, Phase, PhasedWorkload, WorkloadSpec,
};
use archx_bench::{Args, Table};

fn main() {
    let args = Args::from_env();
    let telemetry_mode = args.telemetry();
    let instrs = args.get_usize("instrs", 200_000);
    let interval = args.get_usize("interval", 10_000);
    let k = args.get_usize("k", 4);
    // Like the paper's Simpoints (10 M warm-up before each 100 M window),
    // each representative interval is preceded by a warm-up stretch that
    // fills caches and predictors but is not measured.
    let warmup = args.get_usize("warmup", 3 * interval);

    // Three phased programs with contrasting phase structures.
    let compute = WorkloadSpec {
        mix: OpMix::fp_default(),
        mean_dep_distance: 12.0,
        ..WorkloadSpec::balanced()
    };
    let memory = WorkloadSpec {
        memory: MemoryProfile::hostile(),
        mean_dep_distance: 2.5,
        ..WorkloadSpec::balanced()
    };
    let branchy = WorkloadSpec {
        branches: BranchProfile::hostile(),
        ..WorkloadSpec::balanced()
    };
    let programs: Vec<(&str, PhasedWorkload)> = vec![
        (
            "compute<->memory",
            PhasedWorkload::new(vec![
                Phase {
                    spec: compute,
                    instrs: 10_000,
                },
                Phase {
                    spec: memory,
                    instrs: 10_000,
                },
            ]),
        ),
        (
            "three-phase",
            PhasedWorkload::new(vec![
                Phase {
                    spec: compute,
                    instrs: 8_000,
                },
                Phase {
                    spec: branchy,
                    instrs: 8_000,
                },
                Phase {
                    spec: memory,
                    instrs: 4_000,
                },
            ]),
        ),
        (
            "long-kernel",
            PhasedWorkload::new(vec![
                Phase {
                    spec: branchy,
                    instrs: 3_000,
                },
                Phase {
                    spec: compute,
                    instrs: 30_000,
                },
            ]),
        ),
    ];

    let core = OooCore::new(MicroArch::baseline());
    let mut t = Table::new([
        "program",
        "full_cpi",
        "simpoint_cpi",
        "error_%",
        "sims_saved_%",
    ]);
    for (name, program) in &programs {
        let trace = program.generate(instrs, 1);
        let full = core.run(&trace).expect("simulates");
        let full_cpi = full.stats.cycles as f64 / full.stats.committed as f64;

        let sps = pick_simpoints(&trace, interval, k, 7);
        // Measure CPI per representative interval with warm-up: simulate
        // [start-warmup, start+len) and count only the measured window's
        // cycles (commit-to-commit).
        let mut simulated = 0usize;
        let est_cpi: f64 = sps
            .iter()
            .map(|sp| {
                let pre = sp.start.min(warmup);
                let lo = sp.start - pre;
                let hi = sp.start + sp.len;
                simulated += hi - lo;
                let r = core.run(&trace[lo..hi]).expect("simulates");
                let end = r.trace.events.last().expect("non-empty").c;
                let begin = if pre > 0 {
                    r.trace.events[pre - 1].c
                } else {
                    0
                };
                sp.weight * (end - begin) as f64 / sp.len as f64
            })
            .sum();
        t.row([
            name.to_string(),
            format!("{full_cpi:.4}"),
            format!("{est_cpi:.4}"),
            format!("{:+.2}", 100.0 * (est_cpi / full_cpi - 1.0)),
            format!(
                "{:.1}",
                100.0 * (1.0 - simulated as f64 / trace.len() as f64)
            ),
        ]);
    }
    println!(
        "Mini-SimPoint accuracy ({instrs} instrs, {interval}-instr intervals, k={k})\n{}",
        t.to_text()
    );
    println!("expected: a few percent CPI error while simulating a fraction of the trace — the");
    println!("sampling methodology the paper's evaluation rests on. DRAM-dominated phases with");
    println!("high inter-interval variance (three-phase above) need more clusters or longer");
    println!("windows, the same trade real SimPoint makes.");
    archx_bench::emit::emit_telemetry(&telemetry_mode);
}
