//! **Figures 7–9**: the new DEG formulation and induced DEG on a small
//! instruction snippet — vertices on the time axis, typed edges, virtual
//! edges, and the critical path whose length equals the simulated runtime.
//!
//! ```sh
//! cargo run -p archx-bench --release --bin fig9_walkthrough
//! ```

use archexplorer::deg::bottleneck;
use archexplorer::deg::prelude::*;
use archexplorer::sim::isa::{Instruction, OpClass, Reg};
use archexplorer::sim::{MicroArch, OooCore};

/// A snippet in the spirit of Figure 9: integer ops, loads with misses,
/// dependent arithmetic and a conditional branch.
fn snippet() -> Vec<Instruction> {
    let pc = |k: u64| 0x100 + 4 * k;
    vec![
        Instruction::op(
            pc(0),
            OpClass::IntAlu,
            [Some(Reg::int(2)), None],
            Some(Reg::int(10)),
        ),
        Instruction::branch(pc(1), Reg::int(10), true, pc(3)),
        Instruction::load(pc(3), 0x4_0000, Reg::int(1), Reg::int(11)), // cold miss
        Instruction::op(
            pc(4),
            OpClass::IntAlu,
            [Some(Reg::int(11)), None],
            Some(Reg::int(12)),
        ),
        Instruction::load(pc(5), 0x8_0000, Reg::int(1), Reg::int(13)), // cold miss
        Instruction::op(
            pc(6),
            OpClass::IntAlu,
            [Some(Reg::int(13)), None],
            Some(Reg::int(14)),
        ),
        Instruction::load(pc(7), 0x4_0008, Reg::int(1), Reg::int(15)), // hits line of I3
        Instruction::op(
            pc(8),
            OpClass::IntAlu,
            [Some(Reg::int(15)), Some(Reg::int(14))],
            Some(Reg::int(16)),
        ),
        Instruction::store(pc(9), 0x4_0010, Reg::int(1), Reg::int(16)),
        Instruction::op(
            pc(10),
            OpClass::IntAlu,
            [Some(Reg::int(16)), None],
            Some(Reg::int(17)),
        ),
        Instruction::op(
            pc(11),
            OpClass::IntAlu,
            [Some(Reg::int(17)), None],
            Some(Reg::int(18)),
        ),
    ]
}

fn main() {
    let mut arch = MicroArch::tiny();
    arch.width = 2;
    let result = OooCore::new(arch).run(&snippet()).expect("simulates");

    println!("microexecution (cycles):");
    println!(
        "{:>4} {:>3} {:>3} {:>3} {:>3} {:>3} {:>3} {:>3} {:>3} {:>3} {:>3}",
        "idx", "F1", "F2", "F", "DC", "R", "DP", "I", "M", "P", "C"
    );
    for (i, ev) in result.trace.events.iter().enumerate() {
        println!(
            "{i:>4} {:>3} {:>3} {:>3} {:>3} {:>3} {:>3} {:>3} {:>3} {:>3} {:>3}",
            ev.f1, ev.f2, ev.f, ev.dc, ev.r, ev.dp, ev.i, ev.m, ev.p, ev.c
        );
    }

    let base = build_deg(&result);
    let base_edges = base.edge_count();
    let mut deg = induce(base);
    println!(
        "\nnew DEG: {} vertices, {} edges; induced DEG adds {} virtual edges",
        deg.node_count(),
        base_edges,
        deg.edge_count() - base_edges
    );

    println!("\nskewed (inter-instruction) edges:");
    for e in deg.edges().iter().filter(|e| e.kind.is_skewed()) {
        let (fi, fs) = deg.locate(e.from);
        let (ti, ts) = deg.locate(e.to);
        println!(
            "  {fs}(I{fi})@{} -> {ts}(I{ti})@{}  [{:?}, interval {}]",
            deg.time(e.from),
            deg.time(e.to),
            e.kind,
            deg.interval(e)
        );
    }

    let path = archexplorer::deg::critical::critical_path(&mut deg);
    println!(
        "\ncritical path: {} edges, cost {}, length {} (simulated runtime {})",
        path.len(),
        path.cost,
        path.total_delay,
        result.trace.cycles
    );
    assert_eq!(path.total_delay, result.trace.cycles, "exactness");
    for e in &path.edges {
        let (fi, fs) = deg.locate(e.from);
        let (ti, ts) = deg.locate(e.to);
        if deg.interval(e) > 0 {
            println!(
                "  {fs}(I{fi})@{} -> {ts}(I{ti})@{}  [{:?}, {}]",
                deg.time(e.from),
                deg.time(e.to),
                e.kind,
                deg.interval(e)
            );
        }
    }

    let report = bottleneck::analyze(&deg, &path);
    println!("\n{}", report.render());
}
