//! Minimal `KEY=VALUE` command-line parsing shared by the experiment
//! binaries (no external dependency).

use std::collections::HashMap;

/// Parsed `KEY=VALUE` arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    map: HashMap<String, String>,
}

impl Args {
    /// Parses `std::env::args()`.
    pub fn from_env() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit iterator (for tests).
    pub fn from_args<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut map = HashMap::new();
        for arg in iter {
            if let Some((k, v)) = arg.split_once('=') {
                map.insert(k.to_string(), v.to_string());
            }
        }
        Args { map }
    }

    /// Integer argument with default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.map
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Usize argument with default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.map
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// String argument with default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.map
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// The shared `telemetry=json|pretty|off` argument (default `off`).
    /// When `off`, collection on the global registry is disabled so the
    /// measured experiment pays no telemetry cost.
    pub fn telemetry(&self) -> String {
        let mode = self.get_str("telemetry", "off");
        if mode == "off" {
            archexplorer::telemetry::global().set_enabled(false);
        }
        mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_defaults() {
        let a = Args::from_args(["budget=120".to_string(), "suite=spec17".to_string()]);
        assert_eq!(a.get_u64("budget", 10), 120);
        assert_eq!(a.get_u64("missing", 7), 7);
        assert_eq!(a.get_str("suite", "spec06"), "spec17");
        assert_eq!(a.get_usize("budget", 0), 120);
    }
}
