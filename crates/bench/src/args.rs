//! `KEY=VALUE` command-line parsing for the experiment binaries — a thin
//! wrapper over the shared [`archexplorer::cliopt`] parsing used by the
//! `archx` CLI, so every front end accepts the same dialect.

use archexplorer::cliopt::{self, TelemetryMode};
use archexplorer::dse::campaign::Method;
use std::collections::HashMap;

/// Parsed `KEY=VALUE` arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    map: HashMap<String, String>,
}

impl Args {
    /// Parses `std::env::args()`.
    pub fn from_env() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit iterator (for tests).
    pub fn from_args<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let args: Vec<String> = iter.into_iter().collect();
        Args {
            map: cliopt::parse_kv(&args),
        }
    }

    /// Integer argument with default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        cliopt::get(&self.map, key, default)
    }

    /// Usize argument with default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        cliopt::get(&self.map, key, default)
    }

    /// String argument with default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.map
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Method-list argument (`all`, `paper`, or comma-separated names),
    /// shared with `archx campaign methods=`.
    pub fn get_methods(&self, key: &str, default: &str) -> Result<Vec<Method>, String> {
        cliopt::parse_methods(&self.get_str(key, default))
    }

    /// Seed-list argument (comma-separated), shared with
    /// `archx campaign seeds=`.
    pub fn get_seeds(&self, key: &str, default: &str) -> Result<Vec<u64>, String> {
        cliopt::parse_seeds(&self.get_str(key, default))
    }

    /// The shared `telemetry=json|pretty|off` argument (default `off`).
    /// When `off`, collection on the global registry is disabled so the
    /// measured experiment pays no telemetry cost.
    pub fn telemetry(&self) -> String {
        let mode = self.get_str("telemetry", "off");
        if TelemetryMode::parse(&mode) == Ok(TelemetryMode::Off) {
            archexplorer::telemetry::global().set_enabled(false);
        }
        mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_defaults() {
        let a = Args::from_args(["budget=120".to_string(), "suite=spec17".to_string()]);
        assert_eq!(a.get_u64("budget", 10), 120);
        assert_eq!(a.get_u64("missing", 7), 7);
        assert_eq!(a.get_str("suite", "spec06"), "spec17");
        assert_eq!(a.get_usize("budget", 0), 120);
    }

    #[test]
    fn method_and_seed_lists_share_the_cli_dialect() {
        let a = Args::from_args(["methods=random,boom".to_string(), "seeds=1,2".to_string()]);
        assert_eq!(
            a.get_methods("methods", "all").unwrap(),
            vec![Method::Random, Method::BoomExplorer]
        );
        assert_eq!(a.get_seeds("seeds", "1").unwrap(), vec![1, 2]);
        // Defaults kick in when the key is absent.
        assert_eq!(a.get_methods("absent", "paper").unwrap(), Method::PAPER_SET);
        assert_eq!(a.get_seeds("absent", "5").unwrap(), vec![5]);
    }
}
