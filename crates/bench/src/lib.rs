//! Shared helpers for the ArchExplorer benchmark/experiment harnesses.
//! The per-figure binaries live in `src/bin/`; Criterion benches in
//! `benches/`.

pub mod args;
pub mod emit;

pub use args::Args;
pub use emit::Table;
