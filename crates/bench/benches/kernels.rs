//! Criterion benchmarks of the algorithmic kernels: the cycle-level
//! simulator, DEG construction, induced-DEG virtual edges, critical-path
//! DP, exact 3-D hypervolume, and the surrogate models.

use archexplorer::deg::bottleneck;
use archexplorer::deg::{build_deg, critical, induce};
use archexplorer::dse::ml::{AdaBoostRt, GaussianProcess};
use archexplorer::dse::pareto::{hypervolume, RefPoint};
use archexplorer::dse::space::DesignSpace;
use archexplorer::power::{PowerModel, PpaResult};
use archexplorer::sim::extern_trace;
use archexplorer::sim::{trace_gen, MicroArch, OooCore};
use archexplorer::workloads::pick_simpoints;
use archexplorer::workloads::spec06_suite;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const TRACE_LEN: usize = 10_000;

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(20);
    let suite = spec06_suite();
    let trace = suite[0].generate(TRACE_LEN, 1);
    let core = OooCore::new(MicroArch::baseline());
    g.bench_function("bzip2_like_10k", |b| {
        b.iter(|| black_box(core.run(&trace).expect("simulates")).stats.cycles)
    });
    let mixed = trace_gen::mixed_workload(TRACE_LEN, 3);
    g.bench_function("mixed_10k", |b| {
        b.iter(|| black_box(core.run(&mixed).expect("simulates")).stats.cycles)
    });
    g.finish();
}

fn bench_deg(c: &mut Criterion) {
    let mut g = c.benchmark_group("deg");
    g.sample_size(20);
    let core = OooCore::new(MicroArch::baseline());
    let result = core
        .run(&trace_gen::mixed_workload(TRACE_LEN, 5))
        .expect("simulates");
    g.bench_function("build_10k", |b| b.iter(|| black_box(build_deg(&result))));
    let base = build_deg(&result);
    g.bench_function("induce_10k", |b| {
        b.iter_batched(
            || base.clone(),
            |d| black_box(induce(d)),
            BatchSize::LargeInput,
        )
    });
    let induced = induce(base);
    g.bench_function("critical_path_10k", |b| {
        b.iter_batched(
            || induced.clone(),
            |mut d| black_box(critical::critical_path(&mut d)).total_delay,
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_power(c: &mut Criterion) {
    let core = OooCore::new(MicroArch::baseline());
    let result = core
        .run(&trace_gen::mixed_workload(TRACE_LEN, 5))
        .expect("simulates");
    let model = PowerModel::default();
    let arch = MicroArch::baseline();
    c.bench_function("power/evaluate", |b| {
        b.iter(|| black_box(model.evaluate(&arch, &result.stats)))
    });
}

fn bench_hypervolume(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let points: Vec<PpaResult> = (0..200)
        .map(|_| PpaResult {
            ipc: rng.gen_range(0.1..2.0),
            power_w: rng.gen_range(0.05..1.0),
            area_mm2: rng.gen_range(2.0..12.0),
        })
        .collect();
    let r = RefPoint::default();
    c.bench_function("pareto/hypervolume_200", |b| {
        b.iter(|| black_box(hypervolume(&points, &r)))
    });
}

fn bench_ml(c: &mut Criterion) {
    let mut g = c.benchmark_group("ml");
    g.sample_size(20);
    let mut rng = StdRng::seed_from_u64(2);
    let x: Vec<Vec<f64>> = (0..64)
        .map(|_| (0..22).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let y: Vec<f64> = x.iter().map(|v| v.iter().sum::<f64>().sin()).collect();
    g.bench_function("gp_fit_64x22", |b| {
        b.iter(|| black_box(GaussianProcess::fit(x.clone(), &y, 1e-4)))
    });
    let gp = GaussianProcess::fit(x.clone(), &y, 1e-4);
    let q = &x[0];
    g.bench_function("gp_predict", |b| b.iter(|| black_box(gp.predict(q))));
    g.bench_function("adaboost_fit_64x22", |b| {
        b.iter(|| black_box(AdaBoostRt::fit(&x, &y, 20, 2, 0.05)))
    });
    g.finish();
}

fn bench_trace_io(c: &mut Criterion) {
    let core = OooCore::new(MicroArch::baseline());
    let result = core
        .run(&trace_gen::mixed_workload(TRACE_LEN, 7))
        .expect("simulates");
    let text = extern_trace::export(&result);
    let mut g = c.benchmark_group("trace_io");
    g.sample_size(20);
    g.bench_function("export_10k", |b| {
        b.iter(|| black_box(extern_trace::export(&result)))
    });
    g.bench_function("import_10k", |b| {
        b.iter(|| black_box(extern_trace::import(&text)).expect("parses"))
    });
    g.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let core = OooCore::new(MicroArch::baseline());
    let result = core
        .run(&trace_gen::mixed_workload(TRACE_LEN, 9))
        .expect("simulates");
    let mut deg = induce(build_deg(&result));
    let path = critical::critical_path(&mut deg);
    let mut g = c.benchmark_group("analysis");
    g.bench_function("bottleneck_report_10k", |b| {
        b.iter(|| black_box(bottleneck::analyze(&deg, &path)))
    });
    g.bench_function("timeline_10k_x8", |b| {
        b.iter(|| black_box(bottleneck::timeline(&deg, &path, 8)))
    });
    let suite = spec06_suite();
    let trace = suite[0].generate(40_000, 1);
    g.sample_size(10);
    g.bench_function("simpoints_40k", |b| {
        b.iter(|| black_box(pick_simpoints(&trace, 2_000, 4, 1)))
    });
    g.finish();
}

fn bench_space(c: &mut Criterion) {
    let space = DesignSpace::table4();
    let mut rng = StdRng::seed_from_u64(3);
    c.bench_function("space/random_design", |b| {
        b.iter(|| black_box(space.random(&mut rng)))
    });
    let arch = space.random(&mut rng);
    c.bench_function("space/features", |b| {
        b.iter(|| black_box(space.features(&arch)))
    });
}

criterion_group!(
    benches,
    bench_simulator,
    bench_deg,
    bench_power,
    bench_hypervolume,
    bench_ml,
    bench_trace_io,
    bench_analysis,
    bench_space
);
criterion_main!(benches);
