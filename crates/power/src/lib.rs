#![warn(missing_docs)]
//! # archx-power — a "McPAT-lite" analytic power and area model
//!
//! The paper reports power and area from McPAT. This crate substitutes a
//! compact analytic model with the properties the DSE actually relies on:
//!
//! * **component-additive** — every sized structure (queues, register
//!   files, predictor tables, caches, functional units) contributes area
//!   and leakage proportional to (a superlinear function of) its size, so
//!   over-provisioning any one resource visibly costs power/area;
//! * **activity-driven dynamic power** — per-event energies multiply the
//!   simulator's activity counters (commits, cache accesses, FU ops,
//!   predictor lookups), so a faster design that does the same work in
//!   fewer cycles has higher power but similar energy;
//! * **port scaling** — multi-ported CAM/RAM structures (rename register
//!   files, issue queue) grow superlinearly with pipeline width, which is
//!   what makes very wide machines area-inefficient in the paper's
//!   Figure 13.
//!
//! Constants are calibrated so the Table 1 baseline lands near the paper's
//! 0.2 W and 5.7 mm² at a nominal 2 GHz / 22 nm operating point.
//!
//! ```
//! use archx_power::PowerModel;
//! use archx_sim::{MicroArch, OooCore, trace_gen};
//!
//! let arch = MicroArch::baseline();
//! let result = OooCore::new(arch).run(&trace_gen::mixed_workload(5_000, 1)).expect("simulates");
//! let ppa = PowerModel::default().evaluate(&arch, &result.stats);
//! assert!(ppa.area_mm2 > 0.0 && ppa.power_w > 0.0);
//! ```

pub mod area;
pub mod energy;
pub mod model;

pub use model::{PowerBreakdown, PowerModel, PpaResult};
