//! Per-event dynamic energies and leakage densities.
//!
//! Units: nanojoules per event for dynamic energy; watts per mm² for
//! leakage. Values are calibrated so the Table 1 baseline lands near the
//! paper's ~0.2 W under typical activity.

use archx_sim::MicroArch;

/// Clock frequency of the modelled operating point, Hz.
pub const FREQ_HZ: f64 = 2.0e9;

/// Leakage power density in W/mm² (22 nm-ish, low-leakage process).
pub const LEAKAGE_W_PER_MM2: f64 = 0.009;

/// Dynamic energies per event, in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventEnergies {
    /// Per committed instruction (front-end + rename + ROB traffic).
    pub per_commit_nj: f64,
    /// Per branch-predictor lookup.
    pub per_bp_lookup_nj: f64,
    /// Per L1 cache access (either cache).
    pub per_l1_access_nj: f64,
    /// Per L2 access.
    pub per_l2_access_nj: f64,
    /// Per DRAM access (core's share of interface energy).
    pub per_dram_access_nj: f64,
    /// Per integer ALU op.
    pub per_int_alu_nj: f64,
    /// Per integer multiply/divide op.
    pub per_int_mult_nj: f64,
    /// Per FP ALU op.
    pub per_fp_alu_nj: f64,
    /// Per FP multiply/divide op.
    pub per_fp_mult_nj: f64,
    /// Per memory-port use.
    pub per_mem_port_nj: f64,
    /// Per-cycle idle/clock-tree energy per unit width.
    pub per_cycle_base_nj: f64,
}

impl EventEnergies {
    /// Energies scaled to the structure sizes of `arch`: accessing a bigger
    /// table costs more per event.
    pub fn for_arch(arch: &MicroArch) -> Self {
        let width = arch.width as f64;
        let size_scale = |entries: u32, ref_entries: f64| {
            // Energy per access grows ~sqrt(capacity) (bitline length).
            (entries as f64 / ref_entries).sqrt()
        };
        EventEnergies {
            per_commit_nj: 0.010
                + 0.002 * size_scale(arch.rob_entries, 50.0)
                + 0.001 * size_scale(arch.int_rf + arch.fp_rf, 100.0)
                + 0.001 * size_scale(arch.iq_entries, 32.0),
            per_bp_lookup_nj: 0.004
                * size_scale(
                    arch.local_predictor + arch.global_predictor + arch.choice_predictor,
                    18432.0,
                )
                + 0.002 * size_scale(arch.btb_entries, 4096.0),
            per_l1_access_nj: 0.012 * size_scale(arch.dcache_kb * 1024, 32.0 * 1024.0),
            per_l2_access_nj: 0.10,
            per_dram_access_nj: 2.0,
            per_int_alu_nj: 0.004,
            per_int_mult_nj: 0.020,
            per_fp_alu_nj: 0.015,
            per_fp_mult_nj: 0.030,
            per_mem_port_nj: 0.006,
            per_cycle_base_nj: 0.004 * (0.5 + 0.125 * width),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energies_positive_and_scale_with_size() {
        let base = EventEnergies::for_arch(&MicroArch::baseline());
        assert!(base.per_commit_nj > 0.0);
        let mut big = MicroArch::baseline();
        big.rob_entries = 256;
        big.int_rf = 304;
        let scaled = EventEnergies::for_arch(&big);
        assert!(scaled.per_commit_nj > base.per_commit_nj);
    }

    #[test]
    fn bigger_cache_costs_more_per_access() {
        let small = EventEnergies::for_arch(&MicroArch::tiny());
        let base = EventEnergies::for_arch(&MicroArch::baseline());
        assert!(small.per_l1_access_nj < base.per_l1_access_nj);
    }
}
