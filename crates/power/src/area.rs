//! Per-component area models (mm² at a nominal 22 nm node).
//!
//! Shapes follow McPAT's qualitative behaviour: RAM arrays scale linearly
//! with capacity, CAM/scheduler structures superlinearly with entries, and
//! multi-ported arrays superlinearly with port count (ports ≈ pipeline
//! width here).

use archx_sim::MicroArch;

/// Area of one component in mm².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentArea {
    /// Component label.
    pub name: &'static str,
    /// Area in mm².
    pub mm2: f64,
}

/// Port-count scaling factor for a structure read/written every cycle by a
/// `width`-wide pipeline: area grows ~quadratically in ports for the wire
/// dominated arrays McPAT models.
fn port_factor(width: u32) -> f64 {
    let w = width as f64;
    0.5 + 0.5 * (w / 4.0).powf(1.7)
}

/// Breaks a microarchitecture into per-component areas.
pub fn component_areas(arch: &MicroArch) -> Vec<ComponentArea> {
    let w = arch.width as f64;
    let mut v = Vec::with_capacity(16);

    // Front end.
    v.push(ComponentArea {
        name: "fetch",
        mm2: 0.08
            + 0.002 * arch.fetch_buffer_bytes as f64 / 8.0
            + 0.0015 * arch.fetch_queue_uops as f64,
    });
    v.push(ComponentArea {
        name: "bpred",
        mm2: 0.00003
            * (arch.local_predictor + arch.global_predictor + arch.choice_predictor) as f64
            + 0.00008 * arch.btb_entries as f64
            + 0.0012 * arch.ras_entries as f64,
    });
    v.push(ComponentArea {
        name: "decode",
        mm2: 0.06 * w,
    });

    // Rename + ROB: CAM-ish, port scaled.
    v.push(ComponentArea {
        name: "rename",
        mm2: 0.05 * port_factor(arch.width),
    });
    v.push(ComponentArea {
        name: "rob",
        mm2: 0.0035 * arch.rob_entries as f64 * port_factor(arch.width),
    });

    // Register files: entries × (2R+1W per width lane) superlinear.
    let rf_area = |regs: u32| 0.0022 * regs as f64 * port_factor(arch.width);
    v.push(ComponentArea {
        name: "int_rf",
        mm2: rf_area(arch.int_rf),
    });
    v.push(ComponentArea {
        name: "fp_rf",
        mm2: 1.25 * rf_area(arch.fp_rf),
    });

    // Scheduler: wakeup CAM grows superlinearly in entries.
    v.push(ComponentArea {
        name: "iq",
        mm2: 0.004 * (arch.iq_entries as f64).powf(1.25) * port_factor(arch.width),
    });
    v.push(ComponentArea {
        name: "lq",
        mm2: 0.006 * arch.lq_entries as f64,
    });
    v.push(ComponentArea {
        name: "sq",
        mm2: 0.007 * arch.sq_entries as f64,
    });

    // Functional units.
    v.push(ComponentArea {
        name: "int_alu",
        mm2: 0.065 * arch.int_alu as f64,
    });
    v.push(ComponentArea {
        name: "int_mult_div",
        mm2: 0.12 * arch.int_mult_div as f64,
    });
    v.push(ComponentArea {
        name: "fp_alu",
        mm2: 0.22 * arch.fp_alu as f64,
    });
    v.push(ComponentArea {
        name: "fp_mult_div",
        mm2: 0.26 * arch.fp_mult_div as f64,
    });
    v.push(ComponentArea {
        name: "mem_ports",
        mm2: 0.09 * arch.rd_wr_ports as f64,
    });

    // Caches: ~0.022 mm²/KB data array + associativity tag/mux overhead.
    let cache_area =
        |kb: u32, assoc: u32| 0.022 * kb as f64 * (1.0 + 0.06 * (assoc as f64 - 1.0)) + 0.05;
    v.push(ComponentArea {
        name: "icache",
        mm2: cache_area(arch.icache_kb, arch.icache_assoc),
    });
    v.push(ComponentArea {
        name: "dcache",
        mm2: cache_area(arch.dcache_kb, arch.dcache_assoc),
    });

    v
}

/// Total core area in mm² (excluding the fixed L2, which all designs share).
pub fn total_area(arch: &MicroArch) -> f64 {
    component_areas(arch).iter().map(|c| c.mm2).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_area_near_paper() {
        let a = total_area(&MicroArch::baseline());
        assert!(
            (3.0..9.0).contains(&a),
            "baseline area {a} should be in the Table 1 ballpark (5.66 mm²)"
        );
    }

    #[test]
    fn area_monotone_in_each_resource() {
        let base = MicroArch::baseline();
        let a0 = total_area(&base);
        let mut bigger = base;
        bigger.rob_entries *= 2;
        assert!(total_area(&bigger) > a0);
        let mut bigger = base;
        bigger.int_rf += 64;
        assert!(total_area(&bigger) > a0);
        let mut bigger = base;
        bigger.dcache_kb = 64;
        assert!(total_area(&bigger) > a0);
        let mut bigger = base;
        bigger.fp_alu = 2;
        assert!(total_area(&bigger) >= a0);
    }

    #[test]
    fn width_scaling_is_superlinear() {
        let mut narrow = MicroArch::baseline();
        narrow.width = 2;
        let mut wide = MicroArch::baseline();
        wide.width = 8;
        let a2 = total_area(&narrow);
        let a8 = total_area(&wide);
        assert!(
            a8 > a2 * 1.3,
            "8-wide {a8} should cost much more than 2-wide {a2}"
        );
    }

    #[test]
    fn component_names_unique() {
        let v = component_areas(&MicroArch::baseline());
        let mut names: Vec<_> = v.iter().map(|c| c.name).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(n, names.len());
    }
}
