//! The top-level PPA model: combines per-component areas, leakage, and
//! activity-driven dynamic power.

use crate::area;
use crate::energy::{EventEnergies, FREQ_HZ, LEAKAGE_W_PER_MM2};
use archx_sim::{MicroArch, SimStats};
use serde::{Deserialize, Serialize};

/// Power/area evaluation of one simulated design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PpaResult {
    /// Instructions per cycle achieved in the simulation.
    pub ipc: f64,
    /// Total core power in watts (dynamic + leakage).
    pub power_w: f64,
    /// Core area in mm².
    pub area_mm2: f64,
}

impl PpaResult {
    /// The paper's PPA trade-off metric, `Perf² / (Power × Area)`.
    pub fn tradeoff(&self) -> f64 {
        if self.power_w <= 0.0 || self.area_mm2 <= 0.0 {
            return 0.0;
        }
        self.ipc * self.ipc / (self.power_w * self.area_mm2)
    }
}

/// Detailed power decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Dynamic power in watts.
    pub dynamic_w: f64,
    /// Leakage power in watts.
    pub leakage_w: f64,
}

/// The analytic PPA model.
///
/// `Default` gives the calibrated nominal model; [`PowerModel::with_scale`]
/// lets tests exaggerate or mute power to probe DSE behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    dynamic_scale: f64,
    leakage_scale: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            dynamic_scale: 1.0,
            leakage_scale: 1.0,
        }
    }
}

impl PowerModel {
    /// A model with scaled dynamic/leakage contributions.
    pub fn with_scale(dynamic_scale: f64, leakage_scale: f64) -> Self {
        PowerModel {
            dynamic_scale,
            leakage_scale,
        }
    }

    /// Core area in mm² for a configuration.
    pub fn area(&self, arch: &MicroArch) -> f64 {
        area::total_area(arch)
    }

    /// Power decomposition for a configuration under observed activity.
    pub fn power(&self, arch: &MicroArch, stats: &SimStats) -> PowerBreakdown {
        let e = EventEnergies::for_arch(arch);
        let cycles = stats.cycles.max(1) as f64;
        let seconds = cycles / FREQ_HZ;

        let dram_accesses = stats.l2_misses as f64;
        let dynamic_nj = stats.committed as f64 * e.per_commit_nj
            + stats.bp_lookups as f64 * e.per_bp_lookup_nj
            + (stats.icache_accesses + stats.dcache_accesses) as f64 * e.per_l1_access_nj
            + stats.l2_accesses as f64 * e.per_l2_access_nj
            + dram_accesses * e.per_dram_access_nj
            + stats.fu_issued[0] as f64 * e.per_int_alu_nj
            + stats.fu_issued[1] as f64 * e.per_int_mult_nj
            + stats.fu_issued[2] as f64 * e.per_fp_alu_nj
            + stats.fu_issued[3] as f64 * e.per_fp_mult_nj
            + stats.fu_issued[4] as f64 * e.per_mem_port_nj
            + cycles * e.per_cycle_base_nj;
        let dynamic_w = self.dynamic_scale * dynamic_nj * 1e-9 / seconds.max(1e-12);
        let leakage_w = self.leakage_scale * LEAKAGE_W_PER_MM2 * self.area(arch);
        PowerBreakdown {
            dynamic_w,
            leakage_w,
        }
    }

    /// Per-component power decomposition: each component's leakage (from
    /// its area share) plus the dynamic energy of the activity it hosts.
    ///
    /// Components follow [`crate::area::component_areas`]; dynamic terms
    /// are assigned to the structure that consumes them (commit traffic to
    /// rename/ROB/register files, lookups to the predictor, accesses to
    /// the caches, ops to their functional units).
    pub fn power_breakdown(&self, arch: &MicroArch, stats: &SimStats) -> Vec<(&'static str, f64)> {
        let e = EventEnergies::for_arch(arch);
        let cycles = stats.cycles.max(1) as f64;
        let seconds = cycles / FREQ_HZ;
        let to_w = |nj: f64| self.dynamic_scale * nj * 1e-9 / seconds.max(1e-12);
        let commits = stats.committed as f64;

        let mut dynamic: Vec<(&'static str, f64)> = vec![
            ("fetch", to_w(cycles * e.per_cycle_base_nj * 0.25)),
            ("bpred", to_w(stats.bp_lookups as f64 * e.per_bp_lookup_nj)),
            ("decode", to_w(commits * e.per_commit_nj * 0.15)),
            ("rename", to_w(commits * e.per_commit_nj * 0.25)),
            ("rob", to_w(commits * e.per_commit_nj * 0.25)),
            ("int_rf", to_w(commits * e.per_commit_nj * 0.175)),
            ("fp_rf", to_w(commits * e.per_commit_nj * 0.075)),
            ("iq", to_w(commits * e.per_commit_nj * 0.10)),
            ("lq", to_w(cycles * e.per_cycle_base_nj * 0.05)),
            ("sq", to_w(cycles * e.per_cycle_base_nj * 0.05)),
            (
                "int_alu",
                to_w(stats.fu_issued[0] as f64 * e.per_int_alu_nj),
            ),
            (
                "int_mult_div",
                to_w(stats.fu_issued[1] as f64 * e.per_int_mult_nj),
            ),
            ("fp_alu", to_w(stats.fu_issued[2] as f64 * e.per_fp_alu_nj)),
            (
                "fp_mult_div",
                to_w(stats.fu_issued[3] as f64 * e.per_fp_mult_nj),
            ),
            (
                "mem_ports",
                to_w(stats.fu_issued[4] as f64 * e.per_mem_port_nj),
            ),
            (
                "icache",
                to_w(stats.icache_accesses as f64 * e.per_l1_access_nj),
            ),
            (
                "dcache",
                to_w(
                    stats.dcache_accesses as f64 * e.per_l1_access_nj
                        + stats.l2_accesses as f64 * e.per_l2_access_nj
                        + stats.l2_misses as f64 * e.per_dram_access_nj,
                ),
            ),
        ];
        // Leakage per component, folded in.
        for comp in crate::area::component_areas(arch) {
            let leak = self.leakage_scale * LEAKAGE_W_PER_MM2 * comp.mm2;
            if let Some(entry) = dynamic.iter_mut().find(|(n, _)| *n == comp.name) {
                entry.1 += leak;
            } else {
                dynamic.push((comp.name, leak));
            }
        }
        dynamic
    }

    /// Full PPA evaluation of a simulated design point.
    pub fn evaluate(&self, arch: &MicroArch, stats: &SimStats) -> PpaResult {
        let p = self.power(arch, stats);
        PpaResult {
            ipc: stats.ipc(),
            power_w: p.dynamic_w + p.leakage_w,
            area_mm2: self.area(arch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archx_sim::{trace_gen, OooCore};

    fn baseline_run() -> (MicroArch, SimStats) {
        let arch = MicroArch::baseline();
        let r = OooCore::new(arch)
            .run(&trace_gen::mixed_workload(20_000, 1))
            .expect("simulates");
        (arch, r.stats)
    }

    #[test]
    fn baseline_power_in_paper_ballpark() {
        let (arch, stats) = baseline_run();
        let ppa = PowerModel::default().evaluate(&arch, &stats);
        assert!(
            (0.05..1.0).contains(&ppa.power_w),
            "baseline power {} should be near the paper's 0.2 W",
            ppa.power_w
        );
        assert!(
            (3.0..9.0).contains(&ppa.area_mm2),
            "baseline area {} should be near the paper's 5.66 mm²",
            ppa.area_mm2
        );
    }

    #[test]
    fn tradeoff_metric() {
        let ppa = PpaResult {
            ipc: 2.0,
            power_w: 0.5,
            area_mm2: 4.0,
        };
        assert!((ppa.tradeoff() - 2.0).abs() < 1e-12);
        let degenerate = PpaResult {
            ipc: 1.0,
            power_w: 0.0,
            area_mm2: 1.0,
        };
        assert_eq!(degenerate.tradeoff(), 0.0);
    }

    #[test]
    fn doubling_fp_alu_raises_power_without_perf_on_int_code() {
        let arch = MicroArch::baseline();
        let trace = trace_gen::independent_int_ops(20_000);
        let r0 = OooCore::new(arch).run(&trace).expect("simulates");
        let mut fat = arch;
        fat.fp_alu = 2 * arch.fp_alu;
        let r1 = OooCore::new(fat).run(&trace).expect("simulates");
        let m = PowerModel::default();
        let p0 = m.evaluate(&arch, &r0.stats);
        let p1 = m.evaluate(&fat, &r1.stats);
        assert!(p1.area_mm2 > p0.area_mm2);
        assert!(p1.power_w >= p0.power_w);
        assert!(
            (p1.ipc - p0.ipc).abs() < 0.02,
            "FP units don't help int code"
        );
    }

    #[test]
    fn leakage_scales_with_area() {
        let m = PowerModel::default();
        let (arch, stats) = baseline_run();
        let mut big = arch;
        big.rob_entries = 256;
        big.int_rf = 304;
        big.fp_rf = 304;
        let pb = m.power(&arch, &stats);
        let pg = m.power(&big, &stats);
        assert!(pg.leakage_w > pb.leakage_w);
    }

    #[test]
    fn breakdown_components_are_positive_and_plausible() {
        let (arch, stats) = baseline_run();
        let m = PowerModel::default();
        let breakdown = m.power_breakdown(&arch, &stats);
        assert!(breakdown.len() >= 15);
        let total: f64 = breakdown.iter().map(|(_, w)| w).sum();
        assert!(breakdown.iter().all(|&(_, w)| w >= 0.0));
        // The breakdown should land in the same ballpark as the headline
        // number (it splits the same dynamic energy heuristically).
        let headline = m.evaluate(&arch, &stats).power_w;
        assert!(
            (total / headline - 1.0).abs() < 0.35,
            "breakdown total {total} vs headline {headline}"
        );
        // Caches should be among the larger consumers on a mixed workload.
        let dcache = breakdown
            .iter()
            .find(|(n, _)| *n == "dcache")
            .expect("dcache entry")
            .1;
        assert!(dcache > 0.001);
    }

    #[test]
    fn scales_apply() {
        let (arch, stats) = baseline_run();
        let base = PowerModel::default().power(&arch, &stats);
        let scaled = PowerModel::with_scale(2.0, 3.0).power(&arch, &stats);
        assert!((scaled.dynamic_w / base.dynamic_w - 2.0).abs() < 1e-9);
        assert!((scaled.leakage_w / base.leakage_w - 3.0).abs() < 1e-9);
    }
}
