//! DSE shootout: all six methods on the same suite and budget, reporting
//! hypervolume-versus-simulations — a miniature of the paper's Figure 12.
//!
//! ```sh
//! cargo run -p archx-examples --release --bin dse_shootout [SIM_BUDGET]
//! ```

use archexplorer::dse::campaign::Campaign;
use archexplorer::dse::prelude::*;
use archexplorer::workloads::spec06_suite;

fn main() {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(160);
    let suite: Vec<_> = spec06_suite().into_iter().take(4).collect();
    let space = DesignSpace::table4();
    let cfg = CampaignConfig {
        sim_budget: budget,
        instrs_per_workload: 8_000,
        seed: 7,
        ..Default::default()
    };

    println!(
        "running {} methods, {budget} simulations each...",
        Method::ALL.len()
    );
    let campaign = Campaign::run(&Method::ALL, &space, &suite, &cfg);

    let r = RefPoint::default();
    let step = (budget / 10).max(1);
    println!("\nhypervolume vs simulations (step {step}):");
    print!("{:>6}", "sims");
    for log in &campaign.logs {
        print!("{:>15}", log.method);
    }
    println!();
    let curves = campaign.curves(&r, step);
    let len = curves.iter().map(|(_, c)| c.len()).max().unwrap_or(0);
    for i in 0..len {
        let sims = (i as u64 + 1) * step;
        print!("{sims:>6}");
        for (_, curve) in &curves {
            match curve.get(i) {
                Some((_, hv)) => print!("{hv:>15.4}"),
                None => print!("{:>15}", "-"),
            }
        }
        println!();
    }

    println!("\nfinal Pareto frontiers and best trade-offs:");
    for log in &campaign.logs {
        let best = log.best_tradeoff().expect("non-empty log");
        println!(
            "  {:>14}: frontier {:>3} designs, best Perf²/(P×A) = {:.4}",
            log.method,
            log.frontier().len(),
            best.ppa.tradeoff()
        );
    }
}
