//! Doubling study (the paper's Figure 2 motivation): double one parameter
//! of the baseline at a time and report the PPA deltas — which resources
//! pay their way, and which only burn power and area.
//!
//! ```sh
//! cargo run -p archx-examples --release --bin doubling_study
//! ```

use archexplorer::dse::space::ParamId;
use archexplorer::prelude::*;

fn main() {
    let session = Session::builder()
        .suite(Suite::Spec17)
        .workload_limit(5)
        .instrs_per_workload(10_000)
        .build();
    let baseline = MicroArch::baseline();
    let base = session.evaluate(&baseline).expect("evaluates").ppa;
    println!(
        "baseline: IPC {:.4}, power {:.4} W, area {:.4} mm², trade-off {:.4}\n",
        base.ipc,
        base.power_w,
        base.area_mm2,
        base.tradeoff()
    );
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8}",
        "doubled", "perf%", "power%", "area%", "PPA%"
    );

    let doubled = [
        (ParamId::Rob, "ROB"),
        (ParamId::IntRf, "IntRF"),
        (ParamId::FpRf, "FpRF"),
        (ParamId::Iq, "IQ"),
        (ParamId::Lq, "LQ"),
        (ParamId::Sq, "SQ"),
        (ParamId::FpAlu, "FpALU"),
        (ParamId::IntMultDiv, "IntMultDiv"),
        (ParamId::FetchQueue, "FetchQueue"),
        (ParamId::DCacheKb, "D-cache"),
        (ParamId::ICacheKb, "I-cache"),
    ];
    for (param, label) in doubled {
        let mut arch = baseline;
        param.set(&mut arch, param.get(&baseline) * 2);
        if arch.validate().is_err() {
            continue;
        }
        let ppa = session.evaluate(&arch).expect("evaluates").ppa;
        println!(
            "{label:<16} {:>+7.2}% {:>+7.2}% {:>+7.2}% {:>+7.2}%",
            100.0 * (ppa.ipc / base.ipc - 1.0),
            100.0 * (ppa.power_w / base.power_w - 1.0),
            100.0 * (ppa.area_mm2 / base.area_mm2 - 1.0),
            100.0 * (ppa.tradeoff() / base.tradeoff() - 1.0),
        );
    }
    println!("\nreading: resources whose perf% ≈ 0 but power/area% > 0 are over-provisioned;");
    println!("the paper's Figure 2 highlights IntRF (helps) vs FpALU (pure cost).");
}
