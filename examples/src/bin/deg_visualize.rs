//! Render a small microexecution's induced DEG (with its critical path
//! highlighted) to Graphviz DOT on stdout — pipe into `dot -Tsvg` to see
//! the paper's Figure 7/9 style picture for any workload.
//!
//! ```sh
//! cargo run -p archx-examples --release --bin deg_visualize [instrs] > deg.dot
//! dot -Tsvg deg.dot -o deg.svg   # optional, needs graphviz
//! ```

use archexplorer::deg::export::{to_dot, DotOptions};
use archexplorer::deg::prelude::*;
use archexplorer::prelude::*;
use archexplorer::sim::trace_gen;

fn main() {
    let instrs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);
    let result = OooCore::new(MicroArch::tiny())
        .run(&trace_gen::mixed_workload(instrs, 7))
        .expect("simulates");
    let mut deg = induce(build_deg(&result));
    let path = archexplorer::deg::critical::critical_path(&mut deg);
    eprintln!(
        "{} instructions, {} cycles; DEG {} vertices / {} edges; path cost {}",
        instrs,
        result.trace.cycles,
        deg.node_count(),
        deg.edge_count(),
        path.cost
    );
    print!(
        "{}",
        to_dot(
            &deg,
            Some(&path),
            &DotOptions {
                max_instrs: instrs,
                ..DotOptions::default()
            }
        )
    );
}
