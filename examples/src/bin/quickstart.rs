//! Quickstart: simulate the Table 1 baseline, print its PPA, run a
//! bottleneck analysis, and let ArchExplorer improve the design.
//!
//! ```sh
//! cargo run -p archx-examples --release --bin quickstart
//! ```

use archexplorer::prelude::*;

fn main() {
    // A small, fast session: 4 SPEC06-like workloads, 10 K instructions
    // each (the paper analyses the first 100 K of each Simpoint; scale up
    // with `instrs_per_workload` if you have the time).
    let session = Session::builder()
        .suite(Suite::Spec06)
        .workload_limit(4)
        .instrs_per_workload(10_000)
        .build();

    // 1. Evaluate the paper's Table 1 baseline.
    let baseline = MicroArch::baseline();
    let eval = session.evaluate(&baseline).expect("baseline evaluates");
    println!("baseline: {baseline}");
    println!(
        "  IPC {:.4}  power {:.4} W  area {:.4} mm²  PPA trade-off {:.4}\n",
        eval.ppa.ipc,
        eval.ppa.power_w,
        eval.ppa.area_mm2,
        eval.ppa.tradeoff()
    );

    // 2. Where do the cycles go? (critical-path bottleneck report)
    let report = session.analyze(&baseline).expect("analysis");
    println!("{}", report.render());

    // 3. Let ArchExplorer reassign hardware for 120 simulations.
    let log = session
        .explore(Method::ArchExplorer, 120)
        .expect("exploration");
    let best = log.best_tradeoff().expect("explored at least one design");
    println!(
        "after {} designs ({} simulations):",
        log.records.len(),
        log.records.last().map_or(0, |r| r.sims_after)
    );
    println!("  best design: {}", best.arch);
    println!(
        "  IPC {:.4}  power {:.4} W  area {:.4} mm²  PPA trade-off {:.4}",
        best.ppa.ipc,
        best.ppa.power_w,
        best.ppa.area_mm2,
        best.ppa.tradeoff()
    );
    println!(
        "  improvement over baseline: {:+.1}%",
        100.0 * (best.ppa.tradeoff() / eval.ppa.tradeoff() - 1.0)
    );
    println!("  Pareto frontier size: {}", log.frontier().len());
}
