//! Workload atlas: characterise every bundled SPEC-like workload on the
//! Table 1 baseline — IPC, branch misprediction rate, cache behaviour —
//! the quickest way to see what each synthetic workload stresses.
//!
//! ```sh
//! cargo run -p archx-examples --release --bin workload_atlas [instrs]
//! ```

use archexplorer::prelude::*;

fn main() {
    let instrs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);
    let core = OooCore::new(MicroArch::baseline());
    for (name, suite) in [("SPEC06", spec06_suite()), ("SPEC17", spec17_suite())] {
        println!("== {name}-like suite, {instrs} instructions each ==");
        println!(
            "{:<18} {:>6} {:>9} {:>9} {:>9} {:>9}",
            "workload", "IPC", "bp-miss%", "d$-miss%", "i$-miss%", "mem/Kinst"
        );
        let mut sum = 0.0;
        for w in &suite {
            let r = core.run(&w.generate(instrs, 1)).expect("simulates");
            sum += r.stats.ipc();
            println!(
                "{:<18} {:>6.3} {:>9.2} {:>9.2} {:>9.2} {:>9.1}",
                w.id.0,
                r.stats.ipc(),
                100.0 * r.stats.mispredict_rate(),
                100.0 * r.stats.dcache_miss_rate(),
                100.0 * r.stats.icache_misses as f64 / r.stats.icache_accesses.max(1) as f64,
                1000.0 * r.stats.l2_misses as f64 / r.stats.committed.max(1) as f64,
            );
        }
        println!(
            "{:<18} {:>6.4}\n",
            "suite average IPC",
            sum / suite.len() as f64
        );
    }
    println!("(paper Table 1 reports baseline IPC 0.9418 on its SPEC17 Simpoints)");
}
