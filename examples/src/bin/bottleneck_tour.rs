//! Bottleneck tour: build the new DEG by hand for three contrasting
//! workloads and show how the critical path pins the blame — the paper's
//! Section 4 walkthrough as a runnable program.
//!
//! ```sh
//! cargo run -p archx-examples --release --bin bottleneck_tour
//! ```

use archexplorer::deg::prelude::*;
use archexplorer::deg::{bottleneck, CalipersModel};
use archexplorer::sim::{trace_gen, MicroArch, OooCore};

fn analyze(label: &str, arch: MicroArch, trace: &[archexplorer::sim::Instruction]) {
    let result = OooCore::new(arch).run(trace).expect("simulates");
    let mut deg = induce(build_deg(&result));
    let path = archexplorer::deg::critical::critical_path(&mut deg);
    let report = bottleneck::analyze(&deg, &path);

    println!("=== {label} ===");
    println!(
        "simulated {} instructions in {} cycles (IPC {:.3})",
        result.stats.committed,
        result.trace.cycles,
        result.stats.ipc()
    );
    println!(
        "induced DEG: {} vertices, {} edges; critical path: {} edges, cost {}, length {}",
        deg.node_count(),
        deg.edge_count(),
        path.len(),
        path.cost,
        path.total_delay
    );
    assert_eq!(
        path.total_delay, result.trace.cycles,
        "the new formulation is exact"
    );
    println!("{}", report.render());

    // Contrast with the prior static formulation.
    let (estimate, _) = CalipersModel::from_arch(&arch).analyze(&result);
    println!(
        "prior (static) formulation estimates {estimate} cycles ({:+.1}% vs actual)\n",
        100.0 * (estimate as f64 / result.trace.cycles as f64 - 1.0)
    );
}

fn main() {
    let arch = MicroArch::baseline();

    // 1. Branch-hostile code: the squash edges expose the predictor.
    analyze(
        "hard-to-predict branches",
        arch,
        &trace_gen::random_branches(20_000, 11),
    );

    // 2. Cache-hostile pointer chasing: D-cache and queue pressure.
    let mut small = MicroArch::tiny();
    small.rob_entries = 32;
    analyze(
        "pointer chase on a tiny core",
        small,
        &trace_gen::pointer_chase(20_000, 32 << 20, 7),
    );

    // 3. Divide-heavy code through a single divider.
    analyze("divider pressure", arch, &trace_gen::divide_heavy(5_000));
}
